//! Offline stand-in for the `rand` crate, implementing the rand 0.9 API
//! subset this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::random_range`] / [`Rng::random_bool`].
//!
//! This workspace builds with no network access, so the real crates.io
//! package cannot be fetched; this crate shadows it via a workspace path
//! dependency. The generator is xoshiro256++ seeded through SplitMix64 —
//! not cryptographic, but statistically solid and fully deterministic for a
//! given seed, which is all the workload generators and tests require.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be deterministically constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (via SplitMix64
    /// expansion, matching the real crate's behavior in spirit).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Scalars with a uniform range-sampling rule. The single blanket
/// [`SampleRange`] impl per range shape goes through this trait so type
/// inference can unify the range's element type with the result type (the
/// real crate is structured the same way).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). The range is known non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges a `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` by Lemire's multiply-shift with rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_below(rng, span + 1) as $t
                } else {
                    lo + uniform_below(rng, span) as $t
                }
            }
        }
    )*};
}

impl_uint_uniform!(u16, u32, u64, usize);

macro_rules! impl_int_uniform {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                let offset = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    uniform_below(rng, span + 1)
                } else {
                    uniform_below(rng, span)
                };
                (lo as $unsigned).wrapping_add(offset as $unsigned) as $t
            }
        }
    )*};
}

impl_int_uniform!(i32 => u32, i64 => u64);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                // Guard against round-up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
