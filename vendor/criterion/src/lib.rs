//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! This workspace builds with no network access, so the real crates.io
//! package cannot be fetched; this crate shadows it via a workspace path
//! dependency. It implements the API subset our one criterion target uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Throughput`], [`BenchmarkId`], [`criterion_group!`],
//! [`criterion_main!`] — with a simple mean-of-samples timer instead of
//! criterion's statistical machinery. Good enough to smoke the benches and
//! print comparable numbers; not a replacement for real criterion runs.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }
}

/// Units processed per iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A `function-name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id rendered as just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing throughput units and sample counts.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` and prints mean per-iteration time (plus throughput).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let rate = match (self.throughput, mean.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / s)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 / s)
            }
            _ => String::new(),
        };
        println!(
            "  {}/{}: {:?}/iter over {} iters{rate}",
            self.name, id, mean, b.iters
        );
        self
    }

    /// Ends the group (printing only; kept for API parity).
    pub fn finish(self) {}
}

/// Hands the benchmark body to the timing loop.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Elements(10));
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("noop", "x"), |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("algo", "eps=0.5").to_string(),
            "algo/eps=0.5"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
