//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds with no network access, so the real crates.io
//! package cannot be fetched; this crate shadows it via a workspace path
//! dependency and implements the subset of the proptest 1.x API the test
//! suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `pattern in strategy` arguments,
//! * [`Strategy`] implementations for integer/float ranges, tuples,
//!   [`Just`], weighted [`prop_oneof!`] unions, and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning [`TestCaseError`].
//!
//! Compared to the real crate there is **no shrinking**: a failing case
//! reports its case index and deterministic seed instead of a minimized
//! input. Generation is fully deterministic per (test name, case index), so
//! failures reproduce exactly across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a counterexample.
    Fail(String),
    /// The case was rejected as invalid input (not used by our suites, kept
    /// for API parity).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator handed to strategies.
///
/// SplitMix64 over a state derived from the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one (test, case) pair.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, span)`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample empty range");
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            let low = m as u64;
            if low < span {
                let threshold = span.wrapping_neg() % span;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case inputs.
///
/// Unlike the real crate, strategies generate values directly (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Weighted choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|&(w, _)| w > 0), "all weights are zero");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|&(w, _)| w as u64).sum();
        let mut pick = rng.below(total);
        for (w, strat) in &self.arms {
            let w = *w as u64;
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Drives one `#[test]` inside a [`proptest!`] block.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the block's config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `f` for each case with a deterministic per-case rng; panics on
    /// the first failing case.
    pub fn run_named<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // FNV-1a over the test name keeps seeds stable across runs/builds.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..self.config.cases {
            let seed = h ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case {case}/{} (seed {seed:#x}): {msg}",
                    self.config.cases
                ),
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr)) => {};
    (@run($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Build the strategies once (as one tuple strategy); each case
            // only generates from them.
            let __strategies = ($($strat,)+);
            $crate::TestRunner::new(config).run_named(stringify!($name), |__rng| {
                let ($($arg,)+) = $crate::Strategy::generate(&__strategies, __rng);
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// the formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Weighted (or unweighted) choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let strat = prop_oneof![3 => 1u64..=10, 1 => Just(0u64)];
        let mut zeros = 0;
        for _ in 0..2_000 {
            let v = strat.generate(&mut rng);
            assert!(v <= 10);
            if v == 0 {
                zeros += 1;
            }
        }
        // Weight 1 of 4 → about 500 zeros; just check both arms fire.
        assert!(zeros > 100, "union never picked the light arm ({zeros})");
        assert!(zeros < 1_000, "union over-picked the light arm ({zeros})");
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec(0u64..5, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 1u64..=100, (a, b) in (0u64..10, 0.0f64..1.0)) {
            prop_assert!((1..=100).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_eq!(x + a, a + x);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_compiles(v in prop::collection::vec(1u64..=4, 1..10)) {
            prop_assert!(!v.is_empty());
            prop_assert_ne!(v.len(), 0usize);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::TestRunner::new(ProptestConfig::with_cases(8)).run_named("doomed", |rng| {
            let v = (0u64..100).generate(rng);
            crate::prop_assert!(v > 1_000, "v={v} too small");
            Ok(())
        });
    }
}
