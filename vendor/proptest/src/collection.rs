//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    /// Sizes from `min` through `max`, inclusive.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min <= max, "empty size range {min}..={max}");
        SizeRange { min, max }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::new(n, n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange::new(r.start, r.end - 1)
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange::new(*r.start(), *r.end())
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose lengths
/// are uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
