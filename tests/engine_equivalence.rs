//! Observational equivalence of the sharded engine.
//!
//! Because requests for one object always hash to the same shard, a
//! sharded run is — by construction — the same computation as replaying
//! each shard's sub-sequence on a standalone reallocator. These tests
//! check that the construction actually holds for every paper variant in
//! the [`VARIANTS`] registry: same extents per shard, same space telemetry,
//! the same *physical bytes* (each shard runs a byte-carrying substrate,
//! compared against an unsharded `DataStore` replay of its sub-sequence),
//! no object lost or duplicated after `quiesce`, and bitwise-identical
//! `EngineStats` across repeat runs.

use proptest::prelude::*;
use storage_realloc::engine::shard_of;
use storage_realloc::prelude::*;
use storage_realloc::workloads::shard::split_with;

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    build_variant(variant, eps).unwrap_or_else(|| panic!("unknown variant {variant}"))
}

/// Compact request-sequence encoding shared with `prop_invariants`:
/// positive numbers insert an object of that size, zero deletes the oldest
/// live object.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,
            1 => Just(0u64),
        ],
        1..200,
    )
}

fn materialize(ops: &[u64]) -> Workload {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    Workload::new("prop sequence", requests)
}

/// Replays `part` on a standalone reallocator — with every physical op
/// mirrored into an unsharded byte-carrying `DataStore`, the reference a
/// substrate-backed shard must match byte for byte — quiesces, and returns
/// the live-object placements (sorted by id), the reallocator, and the
/// byte store.
fn standalone_replay(
    variant: &str,
    eps: f64,
    part: &Workload,
) -> (
    Vec<(ObjectId, Extent)>,
    Box<dyn Reallocator + Send>,
    DataStore,
) {
    let mut r = build(variant, eps);
    let mut data = DataStore::new(Mode::Relaxed);
    let mut live = std::collections::BTreeSet::new();
    for req in &part.requests {
        let outcome = match *req {
            Request::Insert { id, size } => {
                let out = r.insert(id, size).expect("valid workload insert");
                live.insert(id);
                out
            }
            Request::Delete { id } => {
                let out = r.delete(id).expect("valid workload delete");
                live.remove(&id);
                out
            }
        };
        data.apply_all(&outcome.ops).expect("reference replay");
    }
    data.apply_all(&r.quiesce().ops).expect("reference drain");
    let extents = live
        .into_iter()
        .filter_map(|id| r.extent_of(id).map(|e| (id, e)))
        .collect();
    (extents, r, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A sharded engine is observationally equivalent to replaying each
    /// shard's sub-sequence standalone: identical placements, identical
    /// space telemetry, every object on exactly one shard.
    #[test]
    fn engine_equals_standalone_per_shard(
        ops in op_sequence(),
        eps in 0.1f64..=0.5,
        shards in 1usize..=4,
    ) {
        let workload = materialize(&ops);
        let parts = split_with(&workload, shards, |id| shard_of(id, shards));

        for variant in VARIANTS {
            let mut engine = Engine::new(
                EngineConfig {
                    batch: 32,
                    queue_depth: 2,
                    ..EngineConfig::with_shards(shards)
                }
                .with_substrate(SubstrateConfig::default()),
                |_| build(variant, eps),
            );
            engine.drive(&workload).expect("drive");
            // The quiesce barrier also runs each shard's substrate scan
            // (extents against the reallocator, bytes against checksums).
            let stats = engine.quiesce().expect("quiesce");
            let engine_extents = engine.extents().expect("extents");
            let engine_bytes = engine.substrate_contents().expect("contents");

            let mut total_objects = 0usize;
            for (s, part) in parts.iter().enumerate() {
                let (expected_extents, standalone, reference_bytes) =
                    standalone_replay(variant, eps, part);
                prop_assert_eq!(
                    &engine_extents[s], &expected_extents,
                    "{}: shard {} placements diverge", variant, s
                );
                // Same *bytes*, not just the same extents: the shard's
                // substrate holds exactly what the unsharded DataStore
                // replay of its sub-sequence holds.
                prop_assert_eq!(
                    engine_bytes[s].len(), expected_extents.len(),
                    "{}: shard {} byte population diverges", variant, s
                );
                for (id, bytes) in &engine_bytes[s] {
                    prop_assert_eq!(
                        Some(&bytes[..]), reference_bytes.bytes_of(*id),
                        "{}: {} bytes diverge on shard {}", variant, id, s
                    );
                }
                total_objects += expected_extents.len();

                let row = &stats.per_shard[s];
                prop_assert_eq!(row.requests as usize, part.len(), "{} shard {}", variant, s);
                prop_assert_eq!(row.live_count, standalone.live_count(), "{} shard {}", variant, s);
                prop_assert_eq!(row.live_volume, standalone.live_volume(), "{} shard {}", variant, s);
                prop_assert_eq!(row.footprint, standalone.footprint(), "{} shard {}", variant, s);
                prop_assert_eq!(
                    row.structure_size, standalone.structure_size(),
                    "{} shard {}", variant, s
                );
                prop_assert_eq!(
                    row.max_object_size, standalone.max_object_size(),
                    "{} shard {}", variant, s
                );
            }

            // No lost or duplicated objects: the union of per-shard
            // populations is exactly the reference live set.
            let mut reference = std::collections::BTreeMap::new();
            for req in &workload.requests {
                match *req {
                    Request::Insert { id, size } => { reference.insert(id, size); }
                    Request::Delete { id } => { reference.remove(&id); }
                }
            }
            prop_assert_eq!(total_objects, reference.len(), "{}: object count", variant);
            let mut seen = std::collections::BTreeSet::new();
            for (s, list) in engine_extents.iter().enumerate() {
                for &(id, extent) in list {
                    prop_assert!(seen.insert(id), "{}: {} on two shards", variant, id);
                    prop_assert_eq!(
                        Some(extent.len), reference.get(&id).copied(),
                        "{}: {} wrong size on shard {}", variant, id, s
                    );
                }
            }
        }
    }
}

/// Same seed + same shard count ⇒ bitwise-identical `EngineStats`,
/// whether the workload arrives via `drive` or request-by-request through
/// the handle API.
#[test]
fn engine_stats_are_deterministic() {
    let workload = realloc_bench::standard_churn(20_000, 5_000, 7);

    let run_drive = || {
        let mut engine = Engine::new(EngineConfig::with_shards(4), |_| {
            Box::new(CostObliviousReallocator::new(0.3)) as Box<dyn Reallocator + Send>
        });
        engine.drive(&workload).expect("drive");
        engine.quiesce().expect("quiesce")
    };
    let first = run_drive();
    let second = run_drive();
    assert_eq!(
        first, second,
        "same seed + shard count must give identical stats"
    );

    // The handle path batches differently (request arrival order instead of
    // round-robin over pre-split streams), so batch counts may differ — but
    // every per-shard serving outcome must match.
    let mut engine = Engine::new(EngineConfig::with_shards(4), |_| {
        Box::new(CostObliviousReallocator::new(0.3)) as Box<dyn Reallocator + Send>
    });
    for req in &workload.requests {
        match *req {
            Request::Insert { id, size } => engine.insert(id, size).expect("insert"),
            Request::Delete { id } => engine.delete(id).expect("delete"),
        }
    }
    let third = engine.quiesce().expect("quiesce");
    for (a, b) in first.per_shard.iter().zip(&third.per_shard) {
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.live_count, b.live_count);
        assert_eq!(a.live_volume, b.live_volume);
        assert_eq!(a.footprint, b.footprint);
        assert_eq!(a.structure_size, b.structure_size);
        assert_eq!(a.max_object_size, b.max_object_size);
        assert_eq!(a.total_moves, b.total_moves);
        assert_eq!(a.total_moved_volume, b.total_moved_volume);
    }
}

/// The engine serves a mixed fleet: different algorithms on different
/// shards (e.g. migrating a service variant by variant) still satisfy
/// per-shard guarantees and exact liveness.
#[test]
fn mixed_variant_fleet_serves_correctly() {
    let workload = realloc_bench::standard_churn(10_000, 2_000, 11);
    let mut engine = Engine::new(EngineConfig::with_shards(VARIANTS.len()), |shard| {
        build(VARIANTS[shard % VARIANTS.len()], 0.25)
    });
    engine.drive(&workload).expect("drive");
    let stats = engine.quiesce().expect("quiesce");

    let mut reference_volume = 0u64;
    let mut reference_count = 0usize;
    {
        let mut sizes = std::collections::HashMap::new();
        for req in &workload.requests {
            match *req {
                Request::Insert { id, size } => {
                    sizes.insert(id, size);
                }
                Request::Delete { id } => {
                    sizes.remove(&id);
                }
            }
        }
        for &size in sizes.values() {
            reference_volume += size;
            reference_count += 1;
        }
    }
    assert_eq!(stats.live_volume(), reference_volume);
    assert_eq!(stats.live_count(), reference_count);
    let names: Vec<&str> = stats.per_shard.iter().map(|s| s.algorithm).collect();
    assert_eq!(
        names,
        vec![
            "cost-oblivious",
            "cost-oblivious-ckpt",
            "cost-oblivious-deamortized",
            "nearly-quadratic"
        ]
    );
    for row in &stats.per_shard {
        assert!(
            row.structure_size as f64 <= 1.25 * row.live_volume as f64 + row.max_object_size as f64,
            "shard {} ({}): structure {} vs volume {}",
            row.shard,
            row.algorithm,
            row.structure_size,
            row.live_volume
        );
    }
}
