//! The batch planner changes *how* a batch executes, never *what* it
//! computes: a coalescing engine must be observationally equivalent to the
//! same engine replaying the raw request stream.
//!
//! Three proofs:
//!
//! * a property test drives randomized coalescible traffic (same-id
//!   delete+reinsert touches, insert-then-delete transients, plain churn)
//!   through a coalescing and an uncoalesced engine for every paper
//!   variant in the [`VARIANTS`] registry (same-id touches enabled for the
//!   nearly-quadratic variant, whose hole recycling serves them without
//!   deferral), and demands the same object population, the same per-object
//!   substrate bytes, the same space telemetry, and the same ack count at
//!   *every* quiesce barrier — not just at the end;
//! * predicted errors: the planner simulates batch liveness to report
//!   request errors at their raw stream offsets, so an invalid stream
//!   must fail the barrier under coalescing exactly as it does without;
//! * a crash-matrix-style cut *inside* the WAL group of a heavily
//!   coalesced batch: the WAL logs the planned ops (elided requests never
//!   reach it), group commit is atomic, and recovery from a cut at the
//!   previous boundary and a torn cut mid-group land in the identical
//!   pre-batch state.
//!
//! Placements within a shard may legitimately differ between the two
//! engines (elision changes the physical op sequence), so equivalence is
//! the object population and its bytes, not extent addresses.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use storage_realloc::prelude::*;
use storage_realloc::sim::read_wal;
use storage_realloc::sim::wal::wal_path;
use storage_realloc::sim::WalRecord;
use storage_realloc::workloads::churn::{coalescible_churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    build_variant(variant, eps).unwrap_or_else(|| panic!("unknown variant {variant}"))
}

/// Op encoding for the property strategy: `(kind, size)` where kind 0
/// inserts fresh, 1 deletes the oldest live object, 2 *touches* the oldest
/// live object (delete + reinsert of the same id at `size`), 3 inserts a
/// transient object and deletes it on the very next request.
fn op_sequence() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..4, 1u64..=400), 1..150)
}

/// Materializes the op encoding. `touches` gates the same-id reinserts:
/// the deamortized variant defers mid-flush deletes (the id stays in its
/// layout until the flush completes), so an *uncoalesced* replay of a
/// touch can spuriously reject the reinsert depending on flush phase —
/// coalescing removes that hazard rather than introducing it, but it makes
/// raw-vs-planned equivalence unattainable for that variant. Without
/// `touches`, kind 2 degrades to delete-oldest + insert-fresh, which every
/// variant accepts identically.
fn materialize(ops: &[(u8, u64)], touches: bool) -> Workload {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    let fresh = |requests: &mut Vec<Request>,
                 live: &mut std::collections::VecDeque<ObjectId>,
                 next: &mut u64,
                 size: u64| {
        let id = ObjectId(*next);
        *next += 1;
        live.push_back(id);
        requests.push(Request::Insert { id, size });
    };
    for &(kind, size) in ops {
        match kind {
            0 => fresh(&mut requests, &mut live, &mut next, size),
            1 => {
                if let Some(id) = live.pop_front() {
                    requests.push(Request::Delete { id });
                }
            }
            2 => {
                if let Some(id) = live.pop_front() {
                    requests.push(Request::Delete { id });
                    if touches {
                        requests.push(Request::Insert { id, size });
                        live.push_back(id);
                    } else {
                        fresh(&mut requests, &mut live, &mut next, size);
                    }
                } else {
                    fresh(&mut requests, &mut live, &mut next, size);
                }
            }
            _ => {
                let id = ObjectId(next);
                next += 1;
                requests.push(Request::Insert { id, size });
                requests.push(Request::Delete { id });
            }
        }
    }
    Workload::new("coalescible prop sequence", requests)
}

fn engine_for(variant: &str, shards: usize, coalesce: bool) -> Engine {
    let mut config = EngineConfig {
        batch: 16,
        queue_depth: 2,
        ..EngineConfig::with_shards(shards)
    }
    .with_substrate(SubstrateConfig::default());
    if coalesce {
        config = config.coalescing();
    }
    Engine::new(config, |_| build(variant, 0.25))
}

/// The observable state both engines must agree on at a barrier: every
/// live object's size and bytes (union over shards — both engines route
/// identically, so shard-local populations agree iff the unions do).
fn observe(engine: &mut Engine) -> BTreeMap<ObjectId, (u64, Vec<u8>)> {
    let extents = engine.extents().expect("extents");
    let contents = engine.substrate_contents().expect("contents");
    let mut state = BTreeMap::new();
    for (shard, list) in extents.into_iter().enumerate() {
        let bytes: BTreeMap<ObjectId, Vec<u8>> = contents[shard].iter().cloned().collect();
        for (id, extent) in list {
            let body = bytes.get(&id).expect("live object has bytes").clone();
            assert!(state.insert(id, (extent.len, body)).is_none());
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Coalescing engine ≡ uncoalesced replay, for every variant, at every
    /// quiesce: same object set, same sizes, same substrate bytes, same
    /// telemetry, every request acked.
    #[test]
    fn coalescing_is_observationally_equivalent(
        ops in op_sequence(),
        shards in 1usize..=3,
    ) {
        for variant in VARIANTS {
            let workload = materialize(&ops, variant != "deamortized");
            let mut raw = engine_for(variant, shards, false);
            let mut planned = engine_for(variant, shards, true);
            // Two segments, a barrier after each: equivalence must hold at
            // intermediate quiesces, not just after the full stream.
            let mid = workload.len() / 2;
            for segment in [&workload.requests[..mid], &workload.requests[mid..]] {
                let part = Workload::new("segment", segment.to_vec());
                raw.drive(&part).expect("raw drive");
                planned.drive(&part).expect("planned drive");
                let raw_stats = raw.quiesce().expect("raw quiesce");
                let planned_stats = planned.quiesce().expect("planned quiesce");
                prop_assert_eq!(
                    observe(&mut raw), observe(&mut planned),
                    "{}: object population diverges", variant
                );
                prop_assert_eq!(
                    raw_stats.live_volume(), planned_stats.live_volume(),
                    "{}: volume diverges", variant
                );
                prop_assert_eq!(
                    raw_stats.live_count(), planned_stats.live_count(),
                    "{}: count diverges", variant
                );
                // Ack semantics: every raw request is acked and counted,
                // coalesced or not.
                prop_assert_eq!(
                    raw_stats.requests(), planned_stats.requests(),
                    "{}: ack count diverges", variant
                );
            }
            raw.shutdown().expect("raw shutdown");
            planned.shutdown().expect("planned shutdown");
        }
    }
}

/// The planner predicts request errors by simulating batch liveness, so an
/// invalid stream fails the barrier under coalescing exactly like the raw
/// path — at the same request indices.
#[test]
fn predicted_errors_match_raw_errors() {
    for coalesce in [false, true] {
        let mut engine = engine_for("cost-oblivious", 1, coalesce);
        engine.insert(ObjectId(1), 8).unwrap();
        engine.insert(ObjectId(1), 8).unwrap(); // duplicate
        engine.delete(ObjectId(2)).unwrap(); // unknown
        engine.insert(ObjectId(3), 16).unwrap(); // fine
        let err = engine
            .quiesce()
            .expect_err("invalid stream must fail the barrier");
        match err {
            EngineError::Request { shard, index, .. } => {
                assert_eq!(shard, 0, "coalesce={coalesce}");
                assert_eq!(
                    index, 1,
                    "coalesce={coalesce}: first error at the wrong raw offset"
                );
            }
            other => panic!("coalesce={coalesce}: unexpected error {other}"),
        }
        // A metrics scrape observes the degraded fleet without failing:
        // both error counts, every request acked, the valid state intact.
        let scrape = engine.metrics().expect("scrape survives errors");
        assert_eq!(scrape.stats.errors(), 2, "coalesce={coalesce}");
        assert_eq!(
            scrape.stats.requests(),
            4,
            "coalesce={coalesce}: every request acked"
        );
        assert_eq!(scrape.stats.live_count(), 2, "coalesce={coalesce}");
        // Shutdown's own barrier re-surfaces the sticky error; the fleet
        // still tears down.
        let _ = engine.shutdown();
    }
}

const WAL_SHARDS: usize = 2;

fn wal_config() -> EngineConfig {
    let mut config = EngineConfig::with_shards(WAL_SHARDS)
        .with_substrate(SubstrateConfig::default())
        .coalescing();
    config.batch = 64;
    config
}

fn wal_factory(_: usize) -> BoxedReallocator {
    Box::new(CheckpointedReallocator::new(0.25))
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realloc-bpipe-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A WAL cut *inside* the group of a coalesced batch: the group logs the
/// planned ops (elided requests never reach it), commits atomically, and a
/// torn cut mid-group recovers to the identical state as a clean cut at
/// the previous boundary — the whole batch either survives or vanishes.
#[test]
fn wal_cut_inside_coalesced_group_recovers_identically() {
    let pristine = temp_dir("pristine");
    let mut engine = Engine::with_wal(
        wal_config(),
        Box::new(TableRouter::new(WAL_SHARDS)),
        wal_factory,
        &pristine,
    )
    .unwrap();

    // Ids that all route to shard 0, so the final flush is one batch (and
    // one WAL group) on one shard.
    let router = TableRouter::new(WAL_SHARDS);
    let mut on_zero = (0u64..)
        .map(ObjectId)
        .filter(|&id| storage_realloc::common::Router::route(&router, id) == 0);
    let x = on_zero.next().unwrap();
    let y = on_zero.next().unwrap();
    let t = on_zero.next().unwrap();

    // Durable pre-batch state: X live at size 10, checkpointed, logs
    // truncated — the final batch's group is the only thing in the log.
    engine.insert(x, 10).unwrap();
    engine.quiesce().unwrap();

    // One heavily coalescible batch: a resize chain on X (4 requests →
    // delete + insert), a transient T (2 requests → nothing), a fresh Y.
    engine.delete(x).unwrap();
    engine.insert(x, 20).unwrap();
    engine.delete(x).unwrap();
    engine.insert(x, 30).unwrap();
    engine.insert(t, 5).unwrap();
    engine.delete(t).unwrap();
    engine.insert(y, 7).unwrap();
    engine.flush().unwrap();
    engine.crash();

    // The group must hold the *planned* stream: one allocation of X (at
    // its final size), none of T.
    let groups = read_wal(&wal_path(&pristine, 0)).unwrap();
    let last = groups.last().expect("the batch committed a group");
    let mut x_allocs = 0;
    for record in &last.records {
        match *record {
            WalRecord::Allocate { id, len, .. } if id == x => {
                x_allocs += 1;
                assert_eq!(len, 30, "X must be logged at its coalesced size");
            }
            WalRecord::Allocate { id, .. } | WalRecord::Free { id, .. } => {
                assert_ne!(id, t, "cancelled transient reached the WAL");
            }
            _ => {}
        }
    }
    assert_eq!(x_allocs, 1, "resize chain must log exactly one allocation");
    let boundary = groups[..groups.len() - 1]
        .last()
        .map_or(0, |g| g.end_offset);
    assert!(last.end_offset > boundary + 1, "group too small to tear");

    // Cut A: the whole last group gone. Cut B: torn one byte into it —
    // the reader discards the partial frame. Same recovered state.
    let mut states = Vec::new();
    for (tag, cut) in [("boundary", boundary), ("torn", boundary + 1)] {
        let work = temp_dir(tag);
        copy_dir(&pristine, &work);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(wal_path(&work, 0))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);
        let (mut recovered, report) = Engine::recover(wal_config(), &work, wal_factory)
            .unwrap_or_else(|e| panic!("{tag} cut: {e}"));
        assert_eq!(report.objects, 1, "{tag}: only pre-batch X survives");
        let state = observe(&mut recovered);
        assert_eq!(
            state.get(&x).map(|(len, _)| *len),
            Some(10),
            "{tag}: X must recover at its pre-batch size"
        );
        assert!(!state.contains_key(&y), "{tag}: Y predates no checkpoint");
        assert!(!state.contains_key(&t), "{tag}: transient T must not exist");
        states.push(state);
        recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
    assert_eq!(states[0], states[1], "both cuts must land identically");

    // And recovery of the *uncut* directory replays the committed group:
    // the coalesced batch is durable as planned.
    let (mut recovered, _) = Engine::recover(wal_config(), &pristine, wal_factory).unwrap();
    let state = observe(&mut recovered);
    assert_eq!(state.get(&x).map(|(len, _)| *len), Some(30));
    assert_eq!(state.get(&y).map(|(len, _)| *len), Some(7));
    assert!(!state.contains_key(&t));
    recovered.shutdown().unwrap();
    std::fs::remove_dir_all(&pristine).unwrap();
}

/// The bench scenario in miniature: coalescible churn on the strict
/// substrate writes measurably fewer physical bytes than the raw replay of
/// the same stream, while landing the same state.
#[test]
fn coalescing_saves_substrate_writes_on_coalescible_churn() {
    let workload = coalescible_churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 4, hi: 64 },
        target_volume: 8_000,
        churn_ops: 6_000,
        seed: 13,
    });
    assert!(workload.validate_reuse().is_ok());

    let run = |coalesce: bool| {
        let mut config = EngineConfig::with_shards(2).with_substrate(SubstrateConfig {
            mode: Mode::Strict,
            ..SubstrateConfig::default()
        });
        if coalesce {
            config = config.coalescing();
        }
        let mut engine = Engine::new(config, |_| {
            Box::new(CheckpointedReallocator::new(0.25)) as Box<dyn Reallocator + Send>
        });
        engine.drive(&workload).expect("drive");
        let stats = engine.quiesce().expect("quiesce");
        let state = observe(&mut engine);
        engine.shutdown().expect("shutdown");
        (stats, state)
    };
    let (raw_stats, raw_state) = run(false);
    let (planned_stats, planned_state) = run(true);

    assert_eq!(raw_state, planned_state, "same observable state");
    assert_eq!(raw_stats.requests(), planned_stats.requests());
    assert!(
        planned_stats.requests_coalesced() > 0,
        "the workload must actually coalesce"
    );
    assert!(
        planned_stats.requests_cancelled() > 0,
        "the workload must actually cancel"
    );
    assert!(
        planned_stats.bytes_written() < raw_stats.bytes_written(),
        "coalescing must save physical writes: {} vs {}",
        planned_stats.bytes_written(),
        raw_stats.bytes_written()
    );
}
