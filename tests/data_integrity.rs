//! Byte-level end-to-end integrity: the reallocators' op streams replayed
//! against a device that carries *actual data* with per-object checksums.
//! Every object's bytes must survive arbitrary moves, and after a crash
//! every durably-mapped object's bytes must be intact at the mapped
//! address — the strongest form of the paper's §3 durability argument.

use storage_realloc::prelude::*;
use storage_realloc::sim::DataStore;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn drive_through(
    r: &mut dyn Reallocator,
    store: &mut DataStore,
    workload: &Workload,
    verify_every: usize,
) {
    for (i, req) in workload.requests.iter().enumerate() {
        let outcome = match *req {
            Request::Insert { id, size } => r.insert(id, size).unwrap(),
            Request::Delete { id } => r.delete(id).unwrap(),
        };
        store
            .apply_all(&outcome.ops)
            .unwrap_or_else(|v| panic!("{}: request {i}: {v}", r.name()));
        if i % verify_every == 0 {
            store
                .verify_all()
                .unwrap_or_else(|e| panic!("{}: request {i}: {e}", r.name()));
        }
    }
    store.verify_all().unwrap();
}

fn small_churn(seed: u64) -> Workload {
    churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 150 },
        target_volume: 6_000,
        churn_ops: 2_500,
        seed,
    })
}

/// The §2 algorithm's self-overlapping compaction moves are memmove-safe:
/// no byte of any object is ever lost under relaxed replay.
#[test]
fn amortized_preserves_bytes_through_overlapping_moves() {
    let w = small_churn(41);
    let mut r = CostObliviousReallocator::new(0.25);
    let mut store = DataStore::new(Mode::Relaxed);
    drive_through(&mut r, &mut store, &w, 100);
}

/// The §3.2 algorithm under the full database rules, with byte-level crash
/// verification after every request.
#[test]
fn checkpointed_bytes_survive_crashes() {
    let w = small_churn(42);
    let mut r = CheckpointedReallocator::new(0.25);
    let mut store = DataStore::new(Mode::Strict);
    for (i, req) in w.requests.iter().enumerate() {
        let outcome = match *req {
            Request::Insert { id, size } => r.insert(id, size).unwrap(),
            Request::Delete { id } => r.delete(id).unwrap(),
        };
        store.apply_all(&outcome.ops).unwrap();
        let report = store.crash_and_verify();
        assert!(
            report.is_durable(),
            "request {i}: crash would corrupt {} objects",
            report.corrupted.len()
        );
    }
    store.verify_all().unwrap();
}

/// The §3.3 structure: bytes stay correct through incremental flushes, log
/// placement, and drains.
#[test]
fn deamortized_bytes_survive_incremental_flushes() {
    let w = small_churn(43);
    let mut r = DeamortizedReallocator::new(0.25);
    let mut store = DataStore::new(Mode::Strict);
    drive_through(&mut r, &mut store, &w, 50);
    let out = r.drain();
    store.apply_all(&out.ops).unwrap();
    store.verify_all().unwrap();
    assert!(store.crash_and_verify().is_durable());
}

/// The defragmenter's schedule preserves every byte.
#[test]
fn defrag_preserves_bytes() {
    // Build a fragmented layout through the relaxed store.
    let mut store = DataStore::new(Mode::Relaxed);
    let mut objects = Vec::new();
    let mut at = 0u64;
    for i in 0..300u64 {
        let size = 1 + (i * 17) % 200;
        let e = Extent::new(at, size);
        store
            .apply(&StorageOp::Allocate {
                id: ObjectId(i),
                to: e,
            })
            .unwrap();
        objects.push((ObjectId(i), e));
        at += size + (i % 13);
    }
    let report = defragment(&objects, 0.25, |a, b| a.0.cmp(&b.0)).unwrap();
    store.apply_all(&report.ops).unwrap();
    store.verify_all().unwrap();
}
