//! Smoke coverage for the bench utilities (`realloc-bench`), so the table
//! formatter, standard workloads, and the workload splitter the engine
//! benches lean on are exercised by tier-1 `cargo test` instead of only by
//! `cargo bench`.

use realloc_bench::{banner, fmt2, fmt3, fmt_u64, standard_churn, verdict, Table};
use storage_realloc::engine::shard_of;
use storage_realloc::prelude::*;
use storage_realloc::workloads::shard::split_with;

/// `standard_churn` produces a well-formed workload that every variant can
/// serve end to end, with deterministic output per seed.
#[test]
fn standard_churn_drives_all_variants() {
    let w = standard_churn(5_000, 2_000, 42);
    assert!(!w.is_empty());
    w.validate().expect("workload must be well-formed");

    // Deterministic per seed, different across seeds.
    let w2 = standard_churn(5_000, 2_000, 42);
    assert_eq!(w.requests, w2.requests);
    let w3 = standard_churn(5_000, 2_000, 43);
    assert_ne!(w.requests, w3.requests);

    let mut algs: Vec<Box<dyn Reallocator + Send>> = VARIANTS
        .iter()
        .map(|name| build_variant(name, 0.5).expect("registry name"))
        .collect();
    for r in &mut algs {
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        assert_eq!(result.ledger.len(), w.len(), "{}", result.name);
        assert!(result.final_volume > 0, "{}", result.name);
    }
}

/// The table formatter renders every experiment's shape: title, aligned
/// columns, and the helper formatters' exact output.
#[test]
fn table_and_formatters_render() {
    let mut t = Table::new("smoke", &["algorithm", "ratio", "moves"]);
    t.row(vec![
        "cost-oblivious".into(),
        fmt2(1.004),
        fmt_u64(1_234_567),
    ]);
    t.row(vec!["first-fit".into(), fmt3(2.5), verdict(false)]);
    let s = t.render();
    assert!(s.contains("== smoke =="));
    assert!(s.contains("1.00"));
    assert!(s.contains("1,234,567"));
    assert!(s.contains("2.500"));
    assert!(s.contains("FAIL"));
    let data_lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
    assert_eq!(data_lines.len(), 4, "header + separator + 2 rows");
    // Header and rows align; the separator line (index 1) has its own shape.
    assert_eq!(data_lines[0].len(), data_lines[2].len(), "aligned");
    assert_eq!(data_lines[2].len(), data_lines[3].len(), "aligned");

    // The banner prints without panicking (output itself is cosmetic).
    banner("E0", "smoke test", "bench utilities are covered by tier-1");
}

/// The splitter behind `Engine::drive` (and the E13 engine bench): every
/// request lands on exactly one shard, each per-shard stream is the
/// original sequence filtered to that shard — which is precisely
/// per-object order preservation — and each stream is independently
/// well-formed (inserts before deletes, no duplicate ids).
#[test]
fn workload_splitter_preserves_per_object_order() {
    let w = standard_churn(5_000, 2_000, 42);
    for shards in [1usize, 3, 8] {
        let parts = split_with(&w, shards, |id| shard_of(id, shards));
        assert_eq!(parts.len(), shards);
        assert_eq!(parts.iter().map(Workload::len).sum::<usize>(), w.len());
        for (s, part) in parts.iter().enumerate() {
            part.validate()
                .unwrap_or_else(|i| panic!("shard {s}/{shards}: bad request at {i}"));
            let filtered: Vec<Request> = w
                .requests
                .iter()
                .copied()
                .filter(|r| shard_of(r.id(), shards) == s)
                .collect();
            assert_eq!(
                part.requests, filtered,
                "shard {s}/{shards} reordered requests"
            );
        }
    }
}
