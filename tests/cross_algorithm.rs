//! Cross-algorithm consistency: every allocator in the repository — the
//! paper-variant registry ([`VARIANTS`]) and all baselines — driven over
//! the same workloads through the same harness, with accounting sanity
//! checks and a pairwise-equivalence proptest matrix over the registry, so
//! any future fifth variant is covered by construction.

use proptest::prelude::*;
use storage_realloc::prelude::*;
use storage_realloc::workloads::adversarial::lemma_3_7;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn full_roster() -> Vec<Box<dyn Reallocator>> {
    let mut roster: Vec<Box<dyn Reallocator>> = VARIANTS
        .iter()
        .map(|name| -> Box<dyn Reallocator> {
            build_variant(name, 0.5).expect("registry names build")
        })
        .collect();
    roster.extend(storage_realloc::baselines::baseline_roster());
    roster
}

fn small_churn(seed: u64) -> Workload {
    churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 100 },
        target_volume: 5_000,
        churn_ops: 2_000,
        seed,
    })
}

/// Every algorithm ends the run with identical liveness.
#[test]
fn identical_final_liveness_across_all_algorithms() {
    let w = small_churn(31);
    let stats = w.stats();
    for mut r in full_roster() {
        let result = run_workload(r.as_mut(), &w, RunConfig::plain())
            .unwrap_or_else(|e| panic!("{}: {e}", r.name()));
        assert_eq!(result.final_volume, stats.final_volume, "{}", r.name());
        assert_eq!(
            r.live_count(),
            stats.inserts - stats.deletes,
            "{}",
            r.name()
        );
    }
}

/// No-move allocators never emit Move ops; reallocators do.
#[test]
fn move_emission_matches_algorithm_class() {
    let w = small_churn(32);
    for mut r in full_roster() {
        let name = r.name();
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let moves = result.ledger.total_moves();
        match name {
            "first-fit" | "best-fit" | "next-fit" | "buddy" => {
                assert_eq!(moves, 0, "{name} must never move objects");
            }
            _ => assert!(moves > 0, "{name} should have moved something"),
        }
    }
}

/// Ledger accounting: total allocation cost under linear f equals the sum
/// of inserted sizes, for every algorithm (it's workload-determined).
#[test]
fn allocation_cost_is_algorithm_independent() {
    let w = small_churn(33);
    let expected: u64 = w
        .requests
        .iter()
        .filter_map(|r| match r {
            Request::Insert { size, .. } => Some(*size),
            _ => None,
        })
        .sum();
    for mut r in full_roster() {
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let measured = result.ledger.total_alloc_cost(&|x| x as f64);
        assert!(
            (measured - expected as f64).abs() < 1e-6,
            "{}: alloc cost {measured} != {expected}",
            r.name()
        );
    }
}

/// The Lemma 3.7 dichotomy holds across the whole roster: every algorithm
/// either pays Ω(f(∆)) in one request or exceeds the (3/2)V footprint.
#[test]
fn lemma_3_7_dichotomy() {
    let delta = 512;
    let w = lemma_3_7(delta);
    for mut r in full_roster() {
        let name = r.name();
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let worst_linear = result.ledger.max_op_realloc_cost(&|x| x as f64);
        let worst_space = result.ledger.max_settled_space_ratio();
        let pays_moves = worst_linear >= delta as f64 / 2.0;
        let pays_space = worst_space > 1.5;
        assert!(
            pays_moves || pays_space,
            "{name}: dodged the lower bound (moves {worst_linear}, space {worst_space})"
        );
    }
}

/// A compact random request encoding (positive = insert of that size,
/// zero = delete the oldest live object), mirroring `prop_invariants.rs`.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,
            1 => Just(0u64),
        ],
        1..200,
    )
}

fn materialize(ops: &[u64]) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    requests
}

/// Observable state of a variant after serving a request stream and
/// quiescing: the live map plus the workload-determined cost totals.
fn observe(name: &str, requests: &[Request]) -> (Vec<(ObjectId, u64)>, u64, f64) {
    let mut r = build_variant(name, 0.4).expect("registry names build");
    let mut alloc_cost = 0.0;
    let mut live: Vec<ObjectId> = Vec::new();
    for req in requests {
        match *req {
            Request::Insert { id, size } => {
                r.insert(id, size).unwrap();
                alloc_cost += size as f64;
                live.push(id);
            }
            Request::Delete { id } => {
                r.delete(id).unwrap();
                live.retain(|&x| x != id);
            }
        }
    }
    // Deamortized semantics keep pending deletes active until drained.
    r.quiesce();
    let mut map: Vec<(ObjectId, u64)> = live
        .iter()
        .map(|&id| (id, r.extent_of(id).expect("live object indexed").len))
        .collect();
    map.sort();
    (map, r.live_volume(), alloc_cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Four-way pairwise equivalence over the [`VARIANTS`] registry: every
    /// pair of paper variants serves the same stream to the same observable
    /// state (live ids, sizes, volume) at the same allocation cost. Written
    /// over the registry, not hand-picked pairs, so a fifth variant joins
    /// the matrix by being added to [`VARIANTS`] alone.
    #[test]
    fn pairwise_equivalence_matrix(ops in op_sequence()) {
        let requests = materialize(&ops);
        let observed: Vec<_> = VARIANTS
            .iter()
            .map(|name| (name, observe(name, &requests)))
            .collect();
        for i in 0..observed.len() {
            for j in i + 1..observed.len() {
                let (a, (map_a, vol_a, cost_a)) = &observed[i];
                let (b, (map_b, vol_b, cost_b)) = &observed[j];
                prop_assert_eq!(map_a, map_b, "{} vs {}: live maps differ", a, b);
                prop_assert_eq!(vol_a, vol_b, "{} vs {}: volumes differ", a, b);
                prop_assert!(
                    (cost_a - cost_b).abs() < 1e-6,
                    "{} vs {}: alloc cost {} != {}", a, b, cost_a, cost_b
                );
            }
        }
    }
}

/// Rejecting malformed requests is uniform across the roster.
#[test]
fn uniform_error_behaviour() {
    for mut r in full_roster() {
        let name = r.name();
        r.insert(ObjectId(1), 10).unwrap();
        assert!(
            matches!(r.insert(ObjectId(1), 5), Err(ReallocError::DuplicateId(_))),
            "{name}"
        );
        assert!(
            matches!(r.delete(ObjectId(99)), Err(ReallocError::UnknownId(_))),
            "{name}"
        );
        assert!(
            matches!(r.insert(ObjectId(2), 0), Err(ReallocError::ZeroSize)),
            "{name}"
        );
        // The failed requests must not have corrupted anything.
        assert_eq!(r.live_count(), 1, "{name}");
        assert_eq!(r.live_volume(), 10, "{name}");
    }
}
