//! Cross-algorithm consistency: every allocator in the repository — the
//! paper's three variants and all baselines — driven over the same
//! workloads through the same harness, with accounting sanity checks.

use storage_realloc::prelude::*;
use storage_realloc::workloads::adversarial::lemma_3_7;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

fn full_roster() -> Vec<Box<dyn Reallocator>> {
    let mut roster: Vec<Box<dyn Reallocator>> = vec![
        Box::new(CostObliviousReallocator::new(0.5)),
        Box::new(CheckpointedReallocator::new(0.5)),
        Box::new(DeamortizedReallocator::new(0.5)),
    ];
    roster.extend(storage_realloc::baselines::baseline_roster());
    roster
}

fn small_churn(seed: u64) -> Workload {
    churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 100 },
        target_volume: 5_000,
        churn_ops: 2_000,
        seed,
    })
}

/// Every algorithm ends the run with identical liveness.
#[test]
fn identical_final_liveness_across_all_algorithms() {
    let w = small_churn(31);
    let stats = w.stats();
    for mut r in full_roster() {
        let result = run_workload(r.as_mut(), &w, RunConfig::plain())
            .unwrap_or_else(|e| panic!("{}: {e}", r.name()));
        assert_eq!(result.final_volume, stats.final_volume, "{}", r.name());
        assert_eq!(
            r.live_count(),
            stats.inserts - stats.deletes,
            "{}",
            r.name()
        );
    }
}

/// No-move allocators never emit Move ops; reallocators do.
#[test]
fn move_emission_matches_algorithm_class() {
    let w = small_churn(32);
    for mut r in full_roster() {
        let name = r.name();
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let moves = result.ledger.total_moves();
        match name {
            "first-fit" | "best-fit" | "next-fit" | "buddy" => {
                assert_eq!(moves, 0, "{name} must never move objects");
            }
            _ => assert!(moves > 0, "{name} should have moved something"),
        }
    }
}

/// Ledger accounting: total allocation cost under linear f equals the sum
/// of inserted sizes, for every algorithm (it's workload-determined).
#[test]
fn allocation_cost_is_algorithm_independent() {
    let w = small_churn(33);
    let expected: u64 = w
        .requests
        .iter()
        .filter_map(|r| match r {
            Request::Insert { size, .. } => Some(*size),
            _ => None,
        })
        .sum();
    for mut r in full_roster() {
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let measured = result.ledger.total_alloc_cost(&|x| x as f64);
        assert!(
            (measured - expected as f64).abs() < 1e-6,
            "{}: alloc cost {measured} != {expected}",
            r.name()
        );
    }
}

/// The Lemma 3.7 dichotomy holds across the whole roster: every algorithm
/// either pays Ω(f(∆)) in one request or exceeds the (3/2)V footprint.
#[test]
fn lemma_3_7_dichotomy() {
    let delta = 512;
    let w = lemma_3_7(delta);
    for mut r in full_roster() {
        let name = r.name();
        let result = run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        let worst_linear = result.ledger.max_op_realloc_cost(&|x| x as f64);
        let worst_space = result.ledger.max_settled_space_ratio();
        let pays_moves = worst_linear >= delta as f64 / 2.0;
        let pays_space = worst_space > 1.5;
        assert!(
            pays_moves || pays_space,
            "{name}: dodged the lower bound (moves {worst_linear}, space {worst_space})"
        );
    }
}

/// Rejecting malformed requests is uniform across the roster.
#[test]
fn uniform_error_behaviour() {
    for mut r in full_roster() {
        let name = r.name();
        r.insert(ObjectId(1), 10).unwrap();
        assert!(
            matches!(r.insert(ObjectId(1), 5), Err(ReallocError::DuplicateId(_))),
            "{name}"
        );
        assert!(
            matches!(r.delete(ObjectId(99)), Err(ReallocError::UnknownId(_))),
            "{name}"
        );
        assert!(
            matches!(r.insert(ObjectId(2), 0), Err(ReallocError::ZeroSize)),
            "{name}"
        );
        // The failed requests must not have corrupted anything.
        assert_eq!(r.live_count(), 1, "{name}");
        assert_eq!(r.live_volume(), 10, "{name}");
    }
}
