//! 1,000 tenants multiplexed over one small fleet.
//!
//! The scaling claim behind the async front-end (ARCHITECTURE.md §8) is
//! that tenants are *cheap*: a registered engine is a few heap
//! structures on a shared worker pool, not threads, so one process can
//! host thousands. This soak drives interleaved traffic against 1,000
//! tenants on 8 workers (stealing on) and then checks the three
//! fleet-level contracts at once:
//!
//! * **isolation** — every tenant quiesces clean with exactly its own
//!   live set and volume, even with all 1,000 quiesce futures
//!   outstanding simultaneously;
//! * **the paper's bound, per tenant** — each tenant's settled
//!   footprint obeys `(1+ε)·V + shards·∆` (Lemma 2.5 plus the per-shard
//!   slack), because sharing workers shares *time*, never structures;
//! * **accounting** — per-tenant metrics deltas sum to exactly the
//!   traffic driven, and the per-tenant steal observations rolled up
//!   with [`StealStats::absorb`] reproduce [`Fleet::steal_totals`] to
//!   the last observation.

use storage_realloc::prelude::*;

const TENANTS: usize = 1000;
const ROUNDS: u64 = 30;
const EXTRA: u64 = 5;
const EPS: f64 = 0.25;

fn config() -> EngineConfig {
    EngineConfig {
        batch: 8,
        queue_depth: 2,
        ..EngineConfig::with_shards(1)
    }
    .with_substrate(SubstrateConfig::default())
}

fn realloc(_shard: usize) -> BoxedReallocator {
    Box::new(CostObliviousReallocator::new(EPS))
}

#[test]
fn thousand_tenants_quiesce_clean_and_reconcile() {
    let fleet = Fleet::new(FleetConfig::with_workers(8).stealing(true));
    let mut tenants: Vec<AsyncEngine> = (0..TENANTS)
        .map(|_| fleet.register(config(), Box::new(HashRouter::new(1)), realloc))
        .collect();

    // Interleaved traffic: round-robin across every tenant so the
    // worker queues always hold a mix of cores.
    let mut volume = vec![0u64; TENANTS];
    for round in 0..ROUNDS {
        for (t, tenant) in tenants.iter_mut().enumerate() {
            let size = 1 + (round * 31 + t as u64 * 7) % 64;
            drop(tenant.insert(ObjectId(round), size));
            volume[t] += size;
        }
    }

    // Every quiesce future in flight at once, then awaited.
    let waits: Vec<QuiesceFuture> = tenants.iter_mut().map(|t| t.quiesce()).collect();
    for (t, wait) in waits.into_iter().enumerate() {
        let stats = wait.wait().unwrap_or_else(|e| panic!("tenant {t}: {e}"));
        assert_eq!(stats.live_count() as u64, ROUNDS, "tenant {t}");
        assert_eq!(stats.live_volume(), volume[t], "tenant {t}");
        let bound = (1.0 + EPS) * stats.live_volume() as f64
            + (stats.shards() as u64 * stats.max_object_size()) as f64;
        assert!(
            stats.footprint() as f64 <= bound + 1e-9,
            "tenant {t}: footprint {} exceeds (1+ε)V + N·∆ = {bound}",
            stats.footprint()
        );
    }

    // A second wave between two scrapes pins the delta accounting.
    let first: Vec<MetricsSnapshot> = tenants
        .iter_mut()
        .map(|t| t.metrics().expect("first scrape"))
        .collect();
    for tenant in tenants.iter_mut() {
        for k in 0..EXTRA {
            drop(tenant.insert(ObjectId(ROUNDS + k), 4));
        }
    }
    let waits: Vec<QuiesceFuture> = tenants.iter_mut().map(|t| t.quiesce()).collect();
    for (t, wait) in waits.into_iter().enumerate() {
        wait.wait().unwrap_or_else(|e| panic!("tenant {t}: {e}"));
    }

    let mut delta_requests = 0u64;
    let mut rolled = StealStats::default();
    for (t, tenant) in tenants.iter_mut().enumerate() {
        let now = tenant.metrics().expect("second scrape");
        let delta = now.delta_since(&first[t]);
        assert_eq!(delta.stats.requests(), EXTRA, "tenant {t} delta");
        delta_requests += delta.stats.requests();
        rolled.absorb(&now.steal);
    }
    assert_eq!(delta_requests, TENANTS as u64 * EXTRA);

    // The roll-up reproduces the fleet totals to the last observation:
    // every steal is attributed to exactly one tenant, and it is
    // recorded in both ledgers before the stolen batch acks.
    let totals = fleet.steal_totals();
    assert_eq!(rolled.batches_stolen, totals.batches_stolen);
    assert_eq!(rolled.steal_conflicts, totals.steal_conflicts);
    assert_eq!(rolled.steal_wait_ns.count, totals.steal_wait_ns.count);
    assert_eq!(rolled.steal_wait_ns.sum, totals.steal_wait_ns.sum);

    for tenant in tenants {
        tenant.shutdown().expect("shutdown");
    }
    fleet.shutdown();
}
