//! Observational equivalence of the async facade.
//!
//! `AsyncEngine` replicates the sync handle's client-side batching law
//! and runs the *same* shard state machines on fleet workers, so for any
//! request sequence the two must agree on everything deterministic:
//! extents, physical substrate bytes, aggregated stats (batch counts
//! included), per-shard ledgers, and the metrics projection that
//! participates in `MetricsSnapshot`'s `==`. These tests pin that for
//! all four registry variants — with stealing both off and on (a steal
//! moves *where* a batch runs, never *what* it computes), with futures
//! dropped before they resolve, and with futures awaited out of order.

use proptest::prelude::*;
use storage_realloc::common::block_on;
use storage_realloc::prelude::*;

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    build_variant(variant, eps).unwrap_or_else(|| panic!("unknown variant {variant}"))
}

/// Compact request-sequence encoding shared with `engine_equivalence`:
/// positive numbers insert an object of that size, zero deletes the
/// oldest live object.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,
            1 => Just(0u64),
        ],
        1..150,
    )
}

fn materialize(ops: &[u64]) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    requests
}

/// Everything deterministic a run exposes, for side-by-side comparison.
struct Observed {
    stats: EngineStats,
    extents: Vec<Vec<(ObjectId, Extent)>>,
    bytes: Vec<Vec<(ObjectId, Vec<u8>)>>,
    metrics: MetricsSnapshot,
    ledgers: Vec<Vec<storage_realloc::common::OpRecord>>,
}

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        batch: 32,
        queue_depth: 2,
        ..EngineConfig::with_shards(shards)
    }
    .with_substrate(SubstrateConfig::default())
}

fn run_sync(variant: &str, eps: f64, shards: usize, requests: &[Request]) -> Observed {
    let mut engine = Engine::new(config(shards), |_| build(variant, eps));
    for req in requests {
        match *req {
            Request::Insert { id, size } => engine.insert(id, size).expect("insert"),
            Request::Delete { id } => engine.delete(id).expect("delete"),
        }
    }
    let stats = engine.quiesce().expect("quiesce");
    let extents = engine.extents().expect("extents");
    let bytes = engine.substrate_contents().expect("contents");
    let metrics = engine.metrics().expect("metrics");
    let finals = engine.shutdown().expect("shutdown");
    Observed {
        stats,
        extents,
        bytes,
        metrics,
        ledgers: finals
            .into_iter()
            .map(|f| f.ledger.records().to_vec())
            .collect(),
    }
}

/// Drives the same sequence through an async tenant. Two thirds of the
/// returned futures are dropped on the spot (dropped-before-resolved
/// must be a no-op); the rest are awaited *in reverse enqueue order*
/// after a `flush` has shipped the tail batch (an [`Ack`] resolves at
/// batch completion, and a partial batch only ships at a flush point).
fn run_async(
    fleet: &Fleet,
    variant: &str,
    eps: f64,
    shards: usize,
    requests: &[Request],
) -> Observed {
    let mut tenant = fleet.register(config(shards), Box::new(HashRouter::new(shards)), |_| {
        build(variant, eps)
    });
    let mut kept = Vec::new();
    for (i, req) in requests.iter().enumerate() {
        let ack = match *req {
            Request::Insert { id, size } => tenant.insert(id, size),
            Request::Delete { id } => tenant.delete(id),
        };
        if i % 3 == 0 {
            kept.push(ack);
        }
    }
    let flushed = tenant.flush();
    kept.reverse();
    for ack in kept {
        ack.wait();
    }
    flushed.wait();
    let stats = block_on(tenant.quiesce()).expect("quiesce");
    let extents = tenant.extents().expect("extents");
    let bytes = tenant.substrate_contents().expect("contents");
    let metrics = tenant.metrics().expect("metrics");
    let finals = tenant.shutdown().expect("shutdown");
    Observed {
        stats,
        extents,
        bytes,
        metrics,
        ledgers: finals
            .into_iter()
            .map(|f| f.ledger.records().to_vec())
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Async facade ≡ sync handle for every registry variant: same
    /// extents, same bytes, same stats (including batch counts), same
    /// ledgers, same deterministic metrics projection — stealing on or
    /// off, futures dropped or awaited out of order.
    #[test]
    fn async_facade_equals_sync_handle(
        ops in op_sequence(),
        eps in 0.1f64..=0.5,
        shards in 1usize..=4,
        steal in prop_oneof![1 => Just(false), 1 => Just(true)],
    ) {
        let requests = materialize(&ops);
        let fleet = Fleet::new(FleetConfig::with_workers(2).stealing(steal));
        for variant in VARIANTS {
            let sync = run_sync(variant, eps, shards, &requests);
            let asynced = run_async(&fleet, variant, eps, shards, &requests);

            prop_assert_eq!(&sync.stats, &asynced.stats, "{}: stats diverge", variant);
            prop_assert_eq!(
                &sync.extents, &asynced.extents,
                "{}: placements diverge", variant
            );
            prop_assert_eq!(&sync.bytes, &asynced.bytes, "{}: bytes diverge", variant);
            prop_assert_eq!(
                &sync.ledgers, &asynced.ledgers,
                "{}: ledgers diverge", variant
            );
            // MetricsSnapshot's == is exactly the deterministic
            // projection (stats + sim time + deterministic histograms);
            // wall-clock and steal blocks are excluded by design.
            prop_assert_eq!(
                &sync.metrics, &asynced.metrics,
                "{}: metrics projection diverges", variant
            );
        }
        fleet.shutdown();
    }
}

/// A dropped `QuiesceFuture` must not wedge its cores: the quiesce still
/// runs (its reply send becomes a no-op), and the next barrier sees the
/// drained state.
#[test]
fn dropped_quiesce_future_is_harmless() {
    let fleet = Fleet::new(FleetConfig::with_workers(2).stealing(true));
    let mut tenant = fleet.register(config(2), Box::new(HashRouter::new(2)), |_| {
        build("cost-oblivious", 0.25)
    });
    for i in 0..100u64 {
        drop(tenant.insert(ObjectId(i), 64));
    }
    drop(tenant.quiesce());
    let stats = tenant.snapshot().expect("snapshot after dropped quiesce");
    assert_eq!(stats.live_count(), 100);
    assert_eq!(stats.live_volume(), 6400);
    tenant.shutdown().expect("shutdown");
    fleet.shutdown();
}

/// Request-level errors surface at the async barriers exactly like the
/// sync ones: a duplicate insert is counted, reported by `quiesce`, and
/// the error is the lowest-shard first rejection.
#[test]
fn async_barriers_surface_request_errors() {
    let fleet = Fleet::new(FleetConfig::default());
    let mut tenant = fleet.register(config(1), Box::new(HashRouter::new(1)), |_| {
        build("cost-oblivious", 0.25)
    });
    let first = tenant.insert(ObjectId(7), 32);
    tenant.flush().wait(); // ships the partial batch so the ack can resolve
    first.wait();
    drop(tenant.insert(ObjectId(7), 32)); // duplicate: rejected at serve time
    let err = block_on(tenant.quiesce()).expect_err("duplicate must surface");
    match err {
        EngineError::Request { shard, .. } => assert_eq!(shard, 0),
        other => panic!("unexpected error {other:?}"),
    }
    fleet.shutdown();
}

/// Many tenants on one fleet stay isolated: interleaved traffic against
/// ten tenants gives each exactly its own objects, stats, and volumes.
#[test]
fn tenants_are_isolated() {
    let fleet = Fleet::new(FleetConfig::with_workers(3).stealing(true));
    let mut tenants: Vec<AsyncEngine> = (0..10)
        .map(|_| {
            fleet.register(config(2), Box::new(HashRouter::new(2)), |_| {
                build("cost-oblivious", 0.3)
            })
        })
        .collect();
    for round in 0..50u64 {
        for (t, tenant) in tenants.iter_mut().enumerate() {
            drop(tenant.insert(ObjectId(round), 10 + t as u64));
        }
    }
    let mut waits = Vec::new();
    for tenant in &mut tenants {
        waits.push(tenant.quiesce());
    }
    for (t, wait) in waits.into_iter().enumerate() {
        let stats = block_on(wait).expect("quiesce");
        assert_eq!(stats.live_count(), 50, "tenant {t}");
        assert_eq!(stats.live_volume(), 50 * (10 + t as u64), "tenant {t}");
    }
    for tenant in tenants {
        tenant.shutdown().expect("shutdown");
    }
    fleet.shutdown();
}
