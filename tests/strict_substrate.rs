//! The Section 3 algorithms against the database substrate: the strict
//! rules (nonoverlapping moves + the freed-space rule) must hold
//! mechanically, crash recovery must never lose a block, and the Section 2
//! algorithm must *fail* these rules — that failure is the reason §3
//! exists.

use storage_realloc::harness::RunError;
use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;
use storage_realloc::workloads::trace::{block_rewrites, sawtooth};

fn workloads() -> Vec<Workload> {
    let uniform = SizeDist::Uniform { lo: 1, hi: 200 };
    let bimodal = SizeDist::Bimodal {
        small_lo: 1,
        small_hi: 8,
        large_lo: 64,
        large_hi: 256,
        large_prob: 0.1,
    };
    vec![
        churn(&ChurnConfig {
            dist: uniform.clone(),
            target_volume: 10_000,
            churn_ops: 4_000,
            seed: 21,
        }),
        churn(&ChurnConfig {
            dist: bimodal,
            target_volume: 8_000,
            churn_ops: 4_000,
            seed: 22,
        }),
        block_rewrites(300, 2_000, &uniform, 23),
        sawtooth(2_000, 10_000, 3, &uniform, 24),
    ]
}

/// The checkpointed reallocator obeys both database rules on every
/// workload, with a crash simulated after every single request.
#[test]
fn checkpointed_survives_crash_after_every_request() {
    for w in workloads() {
        let mut r = CheckpointedReallocator::new(0.25);
        let result = run_workload(&mut r, &w, RunConfig::strict_with_crashes())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let sim = result.sim.unwrap();
        assert!(sim.checkpoints() > 0, "{}: no checkpoints happened", w.name);
        sim.verify_matches(|id| r.extent_of(id)).unwrap();
    }
}

/// The deamortized reallocator obeys the same rules mid-flush and all.
#[test]
fn deamortized_survives_crash_after_every_request() {
    for w in workloads() {
        let mut r = DeamortizedReallocator::new(0.25);
        let result = run_workload(&mut r, &w, RunConfig::strict_with_crashes())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        result
            .sim
            .unwrap()
            .verify_matches(|id| r.extent_of(id))
            .unwrap();
    }
}

/// Negative control: the §2 algorithm's compaction uses memmove-style
/// overlapping moves and immediate space reuse — the strict substrate
/// must reject it. (If this ever passes, the strict checker is broken.)
#[test]
fn amortized_violates_strict_rules() {
    let mut violated = false;
    for w in workloads() {
        let mut r = CostObliviousReallocator::new(0.25);
        if let Err(RunError::Substrate(..)) = run_workload(&mut r, &w, RunConfig::strict()) {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "§2 algorithm unexpectedly satisfied the database rules"
    );
}

/// The §2 algorithm replays cleanly under relaxed (memmove) semantics —
/// its moves never clobber *other* objects.
#[test]
fn amortized_replays_relaxed_everywhere() {
    for w in workloads() {
        let mut r = CostObliviousReallocator::new(0.25);
        let result = run_workload(&mut r, &w, RunConfig::relaxed())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        result
            .sim
            .unwrap()
            .verify_matches(|id| r.extent_of(id))
            .unwrap();
    }
}

/// Durable recovery content check: after a crash, every object the durable
/// map knows about is recovered at exactly the mapped extent.
#[test]
fn recovery_restores_the_checkpointed_view() {
    let w = workloads().remove(2); // block rewrites
    let mut r = CheckpointedReallocator::new(0.25);
    let mut sim = SimStore::new(Mode::Strict);
    for req in &w.requests {
        let outcome = match *req {
            Request::Insert { id, size } => r.insert(id, size).unwrap(),
            Request::Delete { id } => r.delete(id).unwrap(),
        };
        sim.apply_all(&outcome.ops).unwrap();
    }
    let report = sim.crash_and_recover();
    assert!(report.is_durable());
    // Every recovered id was mapped at the last checkpoint.
    for id in &report.recovered {
        assert!(sim.durable_btl().contains_key(id));
    }
}
