//! End-to-end verification of the paper's headline bounds on realistic
//! workloads, across every reallocator variant in the [`VARIANTS`]
//! registry and the ε range — the PODS'14 theorems plus the 2024
//! nearly-quadratic movement-cost bound.

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;
use storage_realloc::workloads::trace::{block_rewrites, sawtooth};

fn churn_workload(seed: u64) -> Workload {
    churn(&ChurnConfig {
        dist: SizeDist::ClassPowerLaw {
            classes: 9,
            decay: 0.7,
        },
        target_volume: 20_000,
        churn_ops: 8_000,
        seed,
    })
}

/// Lemma 2.5: the settled footprint is within (1+ε)·V after every request,
/// for every ε in the legal range.
#[test]
fn footprint_bound_over_eps_range() {
    let w = churn_workload(11);
    for eps in [0.5, 0.25, 0.125, 0.0625, 0.03125] {
        let mut r = CostObliviousReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let ratio = result.ledger.max_settled_space_ratio();
        assert!(
            ratio <= 1.0 + eps + 1e-9,
            "ε={eps}: settled ratio {ratio} exceeds bound"
        );
    }
}

/// Theorem 2.1: the cost ratio is within c·(1/ε′)ln(1/ε′) for every cost
/// function in the suite simultaneously — one run, priced post-hoc.
#[test]
fn cost_ratio_bounded_for_every_subadditive_f() {
    let w = churn_workload(12);
    for eps in [0.5, 0.125] {
        let mut r = CostObliviousReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let eps_p = eps / 3.0;
        let theory = (1.0 / eps_p) * (1.0 / eps_p).ln();
        for f in storage_realloc::cost::standard_suite() {
            let b = result.ledger.cost_ratio(&|x| f.cost(x));
            assert!(
                b <= 4.0 * theory,
                "ε={eps}, f={}: ratio {b} too far above theory {theory}",
                f.name()
            );
        }
    }
}

/// The same guarantees hold for the checkpointed variant (its move plan
/// differs but the move count per object does not).
#[test]
fn checkpointed_variant_keeps_both_bounds() {
    let w = churn_workload(13);
    let eps = 0.25;
    let mut r = CheckpointedReallocator::new(eps);
    let result = run_workload(&mut r, &w, RunConfig::strict()).unwrap();
    assert!(result.ledger.max_settled_space_ratio() <= 1.0 + eps + 1e-9);
    let eps_p = eps / 3.0;
    let theory = (1.0 / eps_p) * (1.0 / eps_p).ln();
    for f in storage_realloc::cost::standard_suite() {
        let b = result.ledger.cost_ratio(&|x| f.cost(x));
        assert!(b <= 6.0 * theory, "f={}: {b} vs theory {theory}", f.name());
    }
}

/// Lemma 3.6: the deamortized variant's per-request moved volume never
/// exceeds (4/ε′)·w + ∆, on churn and on database-shaped traces.
#[test]
fn deamortized_worst_case_bound_on_traces() {
    let eps = 0.5;
    let pump_rate = 4.0 / (eps / 3.0);
    let dist = SizeDist::Uniform { lo: 1, hi: 256 };
    for w in [
        churn_workload(14),
        block_rewrites(500, 3_000, &dist, 15),
        sawtooth(5_000, 20_000, 3, &dist, 16),
    ] {
        let mut r = DeamortizedReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let util = result.ledger.max_worst_case_utilization(pump_rate);
        assert!(util <= 1.0 + 1e-9, "{}: utilization {util} > 1", w.name);
    }
}

/// Lemma 3.5 (quiescent half): when no flush is in progress the deamortized
/// structure's space is (1+O(ε′))·V.
#[test]
fn deamortized_quiescent_footprint() {
    let w = churn_workload(17);
    let mut r = DeamortizedReallocator::new(0.5);
    run_workload(&mut r, &w, RunConfig::plain()).unwrap();
    r.drain();
    let ratio = r.structure_size() as f64 / r.live_volume() as f64;
    assert!(ratio <= 1.5 + 1e-9, "quiescent ratio {ratio}");
    r.validate().unwrap();
}

/// Lemma 3.3's shape: checkpoints per flush grow at most linearly in 1/ε.
#[test]
fn checkpoints_scale_linearly_in_inverse_eps() {
    let w = churn_workload(18);
    let max_cp = |eps: f64| -> f64 {
        let mut r = CheckpointedReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        result.ledger.max_op_checkpoints() as f64
    };
    let loose = max_cp(0.5);
    let tight = max_cp(0.0625);
    assert!(loose >= 1.0);
    // 8x tighter ε may use at most ~8x more checkpoints (3x slack).
    assert!(
        tight <= loose * 8.0 * 3.0,
        "checkpoints grew superlinearly: {loose} -> {tight}"
    );
}

/// Chained-flush stress: a stream of ever-larger new-largest-class inserts
/// arriving mid-flush forces the deamortized structure through repeated
/// chain-flushes (the documented §3.3 fallback). Every bound must survive.
#[test]
fn deamortized_survives_escalating_class_chains() {
    let eps = 0.25;
    let mut r = DeamortizedReallocator::new(eps);
    let mut next_id = 0u64;
    let mut insert = |r: &mut DeamortizedReallocator, size: u64| {
        let out = r.insert(ObjectId(next_id), size).unwrap();
        next_id += 1;
        out
    };
    // Base population of small objects.
    for n in 0..200u64 {
        insert(&mut r, 1 + (n % 16));
    }
    // Escalate through 10 brand-new largest classes, each arriving while
    // the previous flush may still be draining, interleaved with smalls.
    for k in 5..15u32 {
        let out = insert(&mut r, 1u64 << k);
        let bound = r.eps().pump_quota(1 << k) + r.max_object_size();
        assert!(
            out.moved_volume() <= bound,
            "class {k}: worst-case bound broken"
        );
        for _ in 0..5 {
            insert(&mut r, 3);
        }
        r.validate().unwrap();
    }
    r.drain();
    r.validate().unwrap();
    let ratio = r.structure_size() as f64 / r.live_volume() as f64;
    assert!(ratio <= 1.0 + eps + 1e-9, "post-drain ratio {ratio}");
    // All the big objects are addressable with exact sizes.
    let total = next_id;
    for k in 5..15u32 {
        let size = 1u64 << k;
        assert!(
            (0..total).any(|n| r.extent_of(ObjectId(n)).is_some_and(|e| e.len == size)),
            "lost the class-{k} object"
        );
    }
}

/// Every object remains addressable with its exact size through heavy
/// churn, for every registry variant.
#[test]
fn no_object_is_ever_lost() {
    let w = churn_workload(19);
    let mut live = std::collections::HashMap::new();
    for req in &w.requests {
        match *req {
            Request::Insert { id, size } => {
                live.insert(id, size);
            }
            Request::Delete { id } => {
                live.remove(&id);
            }
        }
    }
    for mut r in VARIANTS
        .iter()
        .map(|name| build_variant(name, 0.5).expect("registry names build"))
    {
        run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        // Pending deletes count as active until drained (paper semantics);
        // quiesce so liveness matches the reference model exactly.
        r.quiesce();
        for (&id, &size) in &live {
            let e = r
                .extent_of(id)
                .unwrap_or_else(|| panic!("{} lost {id}", r.name()));
            assert_eq!(e.len, size, "{}: {id} changed size", r.name());
        }
        assert_eq!(r.live_count(), live.len());
        assert_eq!(r.live_volume(), live.values().sum::<u64>());
    }
}

// ---------------------------------------------------------------------------
// The 2024 nearly-quadratic bounds (Farach-Colton & Sheffield).
// ---------------------------------------------------------------------------

/// Drives `r` through a cancelling-churn regime — a standing same-class
/// population, then `rounds` of delete-oldest + reinsert-same-size — and
/// returns `(moved, churned)`: total moved volume across the churn phase
/// (population warm-up excluded) and the volume the churn itself touched.
fn cancelling_churn_moved(
    r: &mut dyn Reallocator,
    objects: u64,
    rounds: u64,
    size: u64,
) -> (u64, u64) {
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for _ in 0..objects {
        let id = ObjectId(next);
        next += 1;
        r.insert(id, size).unwrap();
        live.push_back(id);
    }
    r.quiesce();
    let mut moved = 0u64;
    let mut churned = 0u64;
    for _ in 0..rounds {
        let victim = live.pop_front().unwrap();
        moved += r.delete(victim).unwrap().moved_volume();
        let id = ObjectId(next);
        next += 1;
        moved += r.insert(id, size).unwrap().moved_volume();
        live.push_back(id);
        churned += 2 * size;
    }
    moved += r.quiesce().moved_volume();
    (moved, churned)
}

/// The 2024 movement-cost bound on its target regime: under cancelling
/// churn the nearly-quadratic variant's amortized moved volume per churned
/// byte stays within C·√(1/ε′)·ln(1/ε′+e) — the Õ(ε^{-1/2}) shape — while
/// still being measured over the same driver the 2014 variants run.
#[test]
fn nearly_quadratic_movement_bound_on_cancelling_churn() {
    for eps in [0.5, 0.25, 0.125, 0.0625] {
        let mut r = NearlyQuadraticReallocator::new(eps);
        let (moved, churned) = cancelling_churn_moved(&mut r, 400, 2_000, 64);
        let ratio = moved as f64 / churned as f64;
        let eps_p = eps / 3.0;
        let bound = (1.0 / eps_p).sqrt() * (1.0 / eps_p + std::f64::consts::E).ln();
        assert!(
            ratio <= bound,
            "ε={eps}: churn movement ratio {ratio} above the 2024 shape {bound}"
        );
        r.validate().unwrap();
    }
}

/// Head-to-head on the same cancelling churn: hole recycling plus tombstone
/// cancellation stops the flush clock, so the 2024 variant moves an order
/// of magnitude less volume than every 2014 variant (measured: ~0–51 kB vs
/// 3.1–6.0 MB at ε=0.25).
#[test]
fn nearly_quadratic_beats_2014_variants_on_cancelling_churn() {
    let eps = 0.25;
    let mut nq = NearlyQuadraticReallocator::new(eps);
    let (moved_nq, _) = cancelling_churn_moved(&mut nq, 400, 2_000, 64);
    for name in ["cost-oblivious", "checkpointed", "deamortized"] {
        let mut r = build_variant(name, eps).unwrap();
        let (moved_2014, _) = cancelling_churn_moved(r.as_mut(), 400, 2_000, 64);
        assert!(
            (moved_nq as f64) <= 0.1 * moved_2014 as f64,
            "vs {name}: {moved_nq} not below 0.1 × {moved_2014}"
        );
    }
}

/// Outside its target regime the 2024 variant inherits the PODS'14
/// guarantees wholesale: the (1+ε) footprint bound and the Theorem 2.1
/// cost ratio, on the same strict substrate run the checkpointed variant
/// is held to.
#[test]
fn nearly_quadratic_keeps_the_2014_bounds() {
    let w = churn_workload(20);
    let eps = 0.25;
    let mut r = NearlyQuadraticReallocator::new(eps);
    let result = run_workload(&mut r, &w, RunConfig::strict()).unwrap();
    assert!(result.ledger.max_settled_space_ratio() <= 1.0 + eps + 1e-9);
    let eps_p = eps / 3.0;
    let theory = (1.0 / eps_p) * (1.0 / eps_p).ln();
    for f in storage_realloc::cost::standard_suite() {
        let b = result.ledger.cost_ratio(&|x| f.cost(x));
        assert!(b <= 6.0 * theory, "f={}: {b} vs theory {theory}", f.name());
    }
}
