//! End-to-end verification of the paper's headline bounds on realistic
//! workloads, across all three reallocator variants and the ε range.

use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;
use storage_realloc::workloads::trace::{block_rewrites, sawtooth};

fn churn_workload(seed: u64) -> Workload {
    churn(&ChurnConfig {
        dist: SizeDist::ClassPowerLaw {
            classes: 9,
            decay: 0.7,
        },
        target_volume: 20_000,
        churn_ops: 8_000,
        seed,
    })
}

/// Lemma 2.5: the settled footprint is within (1+ε)·V after every request,
/// for every ε in the legal range.
#[test]
fn footprint_bound_over_eps_range() {
    let w = churn_workload(11);
    for eps in [0.5, 0.25, 0.125, 0.0625, 0.03125] {
        let mut r = CostObliviousReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let ratio = result.ledger.max_settled_space_ratio();
        assert!(
            ratio <= 1.0 + eps + 1e-9,
            "ε={eps}: settled ratio {ratio} exceeds bound"
        );
    }
}

/// Theorem 2.1: the cost ratio is within c·(1/ε′)ln(1/ε′) for every cost
/// function in the suite simultaneously — one run, priced post-hoc.
#[test]
fn cost_ratio_bounded_for_every_subadditive_f() {
    let w = churn_workload(12);
    for eps in [0.5, 0.125] {
        let mut r = CostObliviousReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let eps_p = eps / 3.0;
        let theory = (1.0 / eps_p) * (1.0 / eps_p).ln();
        for f in storage_realloc::cost::standard_suite() {
            let b = result.ledger.cost_ratio(&|x| f.cost(x));
            assert!(
                b <= 4.0 * theory,
                "ε={eps}, f={}: ratio {b} too far above theory {theory}",
                f.name()
            );
        }
    }
}

/// The same guarantees hold for the checkpointed variant (its move plan
/// differs but the move count per object does not).
#[test]
fn checkpointed_variant_keeps_both_bounds() {
    let w = churn_workload(13);
    let eps = 0.25;
    let mut r = CheckpointedReallocator::new(eps);
    let result = run_workload(&mut r, &w, RunConfig::strict()).unwrap();
    assert!(result.ledger.max_settled_space_ratio() <= 1.0 + eps + 1e-9);
    let eps_p = eps / 3.0;
    let theory = (1.0 / eps_p) * (1.0 / eps_p).ln();
    for f in storage_realloc::cost::standard_suite() {
        let b = result.ledger.cost_ratio(&|x| f.cost(x));
        assert!(b <= 6.0 * theory, "f={}: {b} vs theory {theory}", f.name());
    }
}

/// Lemma 3.6: the deamortized variant's per-request moved volume never
/// exceeds (4/ε′)·w + ∆, on churn and on database-shaped traces.
#[test]
fn deamortized_worst_case_bound_on_traces() {
    let eps = 0.5;
    let pump_rate = 4.0 / (eps / 3.0);
    let dist = SizeDist::Uniform { lo: 1, hi: 256 };
    for w in [
        churn_workload(14),
        block_rewrites(500, 3_000, &dist, 15),
        sawtooth(5_000, 20_000, 3, &dist, 16),
    ] {
        let mut r = DeamortizedReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        let util = result.ledger.max_worst_case_utilization(pump_rate);
        assert!(util <= 1.0 + 1e-9, "{}: utilization {util} > 1", w.name);
    }
}

/// Lemma 3.5 (quiescent half): when no flush is in progress the deamortized
/// structure's space is (1+O(ε′))·V.
#[test]
fn deamortized_quiescent_footprint() {
    let w = churn_workload(17);
    let mut r = DeamortizedReallocator::new(0.5);
    run_workload(&mut r, &w, RunConfig::plain()).unwrap();
    r.drain();
    let ratio = r.structure_size() as f64 / r.live_volume() as f64;
    assert!(ratio <= 1.5 + 1e-9, "quiescent ratio {ratio}");
    r.validate().unwrap();
}

/// Lemma 3.3's shape: checkpoints per flush grow at most linearly in 1/ε.
#[test]
fn checkpoints_scale_linearly_in_inverse_eps() {
    let w = churn_workload(18);
    let max_cp = |eps: f64| -> f64 {
        let mut r = CheckpointedReallocator::new(eps);
        let result = run_workload(&mut r, &w, RunConfig::plain()).unwrap();
        result.ledger.max_op_checkpoints() as f64
    };
    let loose = max_cp(0.5);
    let tight = max_cp(0.0625);
    assert!(loose >= 1.0);
    // 8x tighter ε may use at most ~8x more checkpoints (3x slack).
    assert!(
        tight <= loose * 8.0 * 3.0,
        "checkpoints grew superlinearly: {loose} -> {tight}"
    );
}

/// Chained-flush stress: a stream of ever-larger new-largest-class inserts
/// arriving mid-flush forces the deamortized structure through repeated
/// chain-flushes (the documented §3.3 fallback). Every bound must survive.
#[test]
fn deamortized_survives_escalating_class_chains() {
    let eps = 0.25;
    let mut r = DeamortizedReallocator::new(eps);
    let mut next_id = 0u64;
    let mut insert = |r: &mut DeamortizedReallocator, size: u64| {
        let out = r.insert(ObjectId(next_id), size).unwrap();
        next_id += 1;
        out
    };
    // Base population of small objects.
    for n in 0..200u64 {
        insert(&mut r, 1 + (n % 16));
    }
    // Escalate through 10 brand-new largest classes, each arriving while
    // the previous flush may still be draining, interleaved with smalls.
    for k in 5..15u32 {
        let out = insert(&mut r, 1u64 << k);
        let bound = r.eps().pump_quota(1 << k) + r.max_object_size();
        assert!(
            out.moved_volume() <= bound,
            "class {k}: worst-case bound broken"
        );
        for _ in 0..5 {
            insert(&mut r, 3);
        }
        r.validate().unwrap();
    }
    r.drain();
    r.validate().unwrap();
    let ratio = r.structure_size() as f64 / r.live_volume() as f64;
    assert!(ratio <= 1.0 + eps + 1e-9, "post-drain ratio {ratio}");
    // All the big objects are addressable with exact sizes.
    let total = next_id;
    for k in 5..15u32 {
        let size = 1u64 << k;
        assert!(
            (0..total).any(|n| r.extent_of(ObjectId(n)).is_some_and(|e| e.len == size)),
            "lost the class-{k} object"
        );
    }
}

/// Every object remains addressable with its exact size through heavy
/// churn, for all three variants.
#[test]
fn no_object_is_ever_lost() {
    let w = churn_workload(19);
    let mut live = std::collections::HashMap::new();
    for req in &w.requests {
        match *req {
            Request::Insert { id, size } => {
                live.insert(id, size);
            }
            Request::Delete { id } => {
                live.remove(&id);
            }
        }
    }
    let algs: Vec<Box<dyn Reallocator>> = vec![
        Box::new(CostObliviousReallocator::new(0.5)),
        Box::new(CheckpointedReallocator::new(0.5)),
        Box::new(DeamortizedReallocator::new(0.5)),
    ];
    for mut r in algs {
        run_workload(r.as_mut(), &w, RunConfig::plain()).unwrap();
        // Pending deletes count as active until drained (paper semantics);
        // quiesce so liveness matches the reference model exactly.
        r.quiesce();
        for (&id, &size) in &live {
            let e = r
                .extent_of(id)
                .unwrap_or_else(|| panic!("{} lost {id}", r.name()));
            assert_eq!(e.len, size, "{}: {id} changed size", r.name());
        }
        assert_eq!(r.live_count(), live.len());
        assert_eq!(r.live_volume(), live.values().sum::<u64>());
    }
}
