//! Property-based tests: arbitrary request sequences against every
//! reallocator variant, checking the paper's invariants after each request.

use proptest::prelude::*;
use storage_realloc::prelude::*;

/// A compact encoding of a random request sequence: positive values insert
/// an object of that size; a zero deletes the oldest live object.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,  // insert of a size spanning ~10 classes
            1 => Just(0u64),  // delete-oldest marker
        ],
        1..250,
    )
}

/// Replays the encoded sequence, returning the requests actually issued.
fn materialize(ops: &[u64]) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// §2 algorithm: structural invariants (2.2–2.4) and the (1+ε) footprint
    /// bound hold after every request, and all placements stay disjoint.
    #[test]
    fn amortized_invariants_hold(ops in op_sequence(), eps in 0.05f64..=0.5) {
        let mut r = CostObliviousReallocator::new(eps);
        for req in materialize(&ops) {
            match req {
                Request::Insert { id, size } => { r.insert(id, size).unwrap(); }
                Request::Delete { id } => { r.delete(id).unwrap(); }
            }
            r.validate().unwrap();
            if r.live_volume() > 0 {
                let ratio = r.structure_size() as f64 / r.live_volume() as f64;
                prop_assert!(ratio <= 1.0 + eps + 1e-9, "ratio {ratio} > 1+ε");
            }
        }
    }

    /// §3.2 algorithm: same invariants, plus every emitted move is
    /// nonoverlapping (checked per op; the full rules are substrate tests).
    #[test]
    fn checkpointed_invariants_hold(ops in op_sequence(), eps in 0.05f64..=0.5) {
        let mut r = CheckpointedReallocator::new(eps);
        for req in materialize(&ops) {
            let outcome = match req {
                Request::Insert { id, size } => r.insert(id, size).unwrap(),
                Request::Delete { id } => r.delete(id).unwrap(),
            };
            for op in &outcome.ops {
                if let StorageOp::Move { from, to, .. } = op {
                    prop_assert!(!from.overlaps(to), "overlapping move {from} -> {to}");
                }
            }
            r.validate().unwrap();
            if r.live_volume() > 0 {
                let ratio = r.structure_size() as f64 / r.live_volume() as f64;
                prop_assert!(ratio <= 1.0 + eps + 1e-9, "ratio {ratio} > 1+ε");
            }
        }
    }

    /// §3.3 algorithm: the worst-case volume bound holds for every single
    /// request, and the mid-flush index stays disjoint throughout.
    #[test]
    fn deamortized_worst_case_holds(ops in op_sequence(), eps in 0.05f64..=0.5) {
        let mut r = DeamortizedReallocator::new(eps);
        for req in materialize(&ops) {
            let (w, outcome) = match req {
                Request::Insert { id, size } => (size, r.insert(id, size).unwrap()),
                Request::Delete { id } => {
                    let w = r.extent_of(id).map_or(1, |e| e.len);
                    (w, r.delete(id).unwrap())
                }
            };
            let bound = r.eps().pump_quota(w) + r.max_object_size();
            prop_assert!(
                outcome.moved_volume() <= bound,
                "moved {} > bound {bound}",
                outcome.moved_volume()
            );
            r.validate().unwrap();
        }
    }

    /// The 2024 nearly-quadratic variant: §2 structural invariants plus the
    /// hole book-keeping hold after every request, the (1+ε) footprint
    /// bound never breaks (hole recycling must not degrade it), and every
    /// emitted move is nonoverlapping (it shares the §3.2 flush machinery).
    #[test]
    fn nearly_quadratic_invariants_hold(ops in op_sequence(), eps in 0.05f64..=0.5) {
        let mut r = NearlyQuadraticReallocator::new(eps);
        for req in materialize(&ops) {
            let outcome = match req {
                Request::Insert { id, size } => r.insert(id, size).unwrap(),
                Request::Delete { id } => r.delete(id).unwrap(),
            };
            for op in &outcome.ops {
                if let StorageOp::Move { from, to, .. } = op {
                    prop_assert!(!from.overlaps(to), "overlapping move {from} -> {to}");
                }
            }
            r.validate().unwrap();
            if r.live_volume() > 0 {
                let ratio = r.structure_size() as f64 / r.live_volume() as f64;
                prop_assert!(ratio <= 1.0 + eps + 1e-9, "ratio {ratio} > 1+ε");
            }
        }
    }

    /// Every registry variant agrees with a trivial reference model on
    /// liveness: same live ids, same sizes, same total volume.
    #[test]
    fn variants_agree_with_reference_model(ops in op_sequence()) {
        let requests = materialize(&ops);
        let mut reference = std::collections::HashMap::new();
        for req in &requests {
            match *req {
                Request::Insert { id, size } => { reference.insert(id, size); }
                Request::Delete { id } => { reference.remove(&id); }
            }
        }
        for name in VARIANTS {
            let mut r = build_variant(name, 0.3).expect("registry names build");
            for req in &requests {
                match *req {
                    Request::Insert { id, size } => { r.insert(id, size).unwrap(); }
                    Request::Delete { id } => { r.delete(id).unwrap(); }
                }
            }
            // Pending deletes stay *active* until drained (deamortized
            // paper semantics); quiesce before comparing to the model.
            r.quiesce();
            prop_assert_eq!(r.live_count(), reference.len(), "{}", name);
            prop_assert_eq!(r.live_volume(), reference.values().sum::<u64>(), "{}", name);
            for (&id, &size) in &reference {
                let e = r.extent_of(id);
                prop_assert!(e.map(|e| e.len) == Some(size), "{}: {id} wrong", name);
            }
        }
    }

    /// Baselines also maintain exact liveness and disjoint placements.
    #[test]
    fn baselines_maintain_disjoint_placements(ops in op_sequence()) {
        let requests = materialize(&ops);
        for mut r in storage_realloc::baselines::baseline_roster() {
            let mut live = std::collections::HashSet::new();
            for req in &requests {
                match *req {
                    Request::Insert { id, size } => { r.insert(id, size).unwrap(); live.insert(id); }
                    Request::Delete { id } => { r.delete(id).unwrap(); live.remove(&id); }
                }
            }
            let mut extents: Vec<Extent> =
                live.iter().map(|&id| r.extent_of(id).unwrap()).collect();
            extents.sort_by_key(|e| e.offset);
            for pair in extents.windows(2) {
                prop_assert!(
                    !pair[0].overlaps(&pair[1]),
                    "{}: {} overlaps {}",
                    r.name(),
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}
