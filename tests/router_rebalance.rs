//! The routing layer's contract under rebalancing and resizing.
//!
//! Three levels of assurance:
//!
//! * Property tests: a `TableRouter` engine with *interleaved*
//!   `rebalance()` / `resize_shards()` calls between workload segments —
//!   and, separately, with an *online* rebalance session stepped between
//!   serving segments — is observationally equivalent to an unsharded
//!   standalone replay: no object lost or duplicated, every live id routed
//!   to the shard that actually owns it, identical final object set (ids
//!   and sizes), identical object *bytes* (every engine is substrate-backed,
//!   so each quiesce also byte-verifies every shard, and migrations are real
//!   checksummed cross-window copies), and the aggregate footprint within
//!   `(1+ε)·Σ V_i + N·∆` (checked at *every batch boundary* in the online
//!   test) — for all three paper variants.
//! * The acceptance scenarios: a skewed-delete workload drives hash-routed
//!   shard imbalance above 2×; the same pattern on a `TableRouter` engine
//!   is repaired to below 1.25× by one barrier `rebalance()` — and by an
//!   online session that migrates in bounded batches while serving
//!   continues.
//! * The driver loop: an auto-rebalance policy installed on the engine
//!   fires by itself once imbalance has breached τ for k observations and
//!   repairs the fleet without any explicit rebalance call.

use std::collections::BTreeMap;

use proptest::prelude::*;
use storage_realloc::engine::shard_of;
use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{skewed_churn, skewed_churn_release, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

const VARIANTS: [&str; 3] = ["cost-oblivious", "checkpointed", "deamortized"];

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    match variant {
        "cost-oblivious" => Box::new(CostObliviousReallocator::new(eps)),
        "checkpointed" => Box::new(CheckpointedReallocator::new(eps)),
        "deamortized" => Box::new(DeamortizedReallocator::new(eps)),
        other => panic!("unknown variant {other}"),
    }
}

/// Compact request-sequence encoding shared with the other proptest suites:
/// positive numbers insert an object of that size, zero deletes the oldest
/// live object.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,
            1 => Just(0u64),
        ],
        1..200,
    )
}

fn materialize(ops: &[u64]) -> Workload {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    Workload::new("prop sequence", requests)
}

/// The unsharded truth: the final live object set of a request sequence.
fn reference_set(workload: &Workload) -> BTreeMap<ObjectId, u64> {
    let mut reference = BTreeMap::new();
    for req in &workload.requests {
        match *req {
            Request::Insert { id, size } => {
                reference.insert(id, size);
            }
            Request::Delete { id } => {
                reference.remove(&id);
            }
        }
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interleaving rebalances and resizes with serving must not change
    /// what the engine *is*: the same object set as an unsharded replay,
    /// correctly routed, within the aggregate footprint bound.
    #[test]
    fn interleaved_rebalance_resize_is_observationally_equivalent(
        ops in op_sequence(),
        eps in 0.1f64..=0.5,
        shards in 1usize..=3,
        actions in prop::collection::vec(0u8..4u8, 1..4),
    ) {
        let workload = materialize(&ops);
        let reference = reference_set(&workload);

        for variant in VARIANTS {
            let mut engine = Engine::with_router(
                EngineConfig {
                    batch: 16,
                    queue_depth: 2,
                    ..EngineConfig::with_shards(shards)
                }
                .with_substrate(SubstrateConfig::default()),
                Box::new(TableRouter::new(shards)),
                |_| build(variant, eps),
            );

            // Serve in segments with a rebalance or resize between each.
            let segments = actions.len() + 1;
            let chunk = workload.len().div_ceil(segments).max(1);
            let mut chunks = workload.requests.chunks(chunk);
            if let Some(first) = chunks.next() {
                engine.drive(&Workload::new("seg", first.to_vec())).expect("drive");
            }
            for (&action, seg) in actions.iter().zip(&mut chunks) {
                match action {
                    0 => {
                        engine.rebalance(RebalanceOptions::default()).expect("rebalance");
                    }
                    1 => {
                        engine.rebalance(RebalanceOptions::with_defrag(eps)).expect("rebalance+defrag");
                    }
                    2 => {
                        let to = engine.shards() + 1;
                        engine.resize_shards(to, |_| build(variant, eps)).expect("grow");
                    }
                    _ => {
                        let to = engine.shards().saturating_sub(1).max(1);
                        engine.resize_shards(to, |_| build(variant, eps)).expect("shrink");
                    }
                }
                engine.drive(&Workload::new("seg", seg.to_vec())).expect("drive");
            }
            // Any chunks left (when a drained iterator had fewer segments).
            for seg in chunks {
                engine.drive(&Workload::new("seg", seg.to_vec())).expect("drive");
            }

            let stats = engine.quiesce().expect("quiesce");
            let extents = engine.extents().expect("extents");

            // Same final object set as the unsharded replay: every id on
            // exactly one shard, with its original size, nothing extra.
            let mut seen = BTreeMap::new();
            for (shard, list) in extents.iter().enumerate() {
                for &(id, extent) in list {
                    prop_assert!(
                        seen.insert(id, extent.len).is_none(),
                        "{variant}: {id} lives on two shards"
                    );
                    prop_assert_eq!(
                        engine.shard_of(id), shard,
                        "{}: {} owned by shard {} but routed elsewhere", variant, id, shard
                    );
                }
            }
            prop_assert_eq!(&seen, &reference, "{}: object set diverged", variant);
            // Same bytes as an unsharded replay would hold: every object's
            // substrate cells are its deterministic pattern, even after
            // arbitrary interleavings of migrations and resizes.
            for list in &engine.substrate_contents().expect("contents") {
                for (id, bytes) in list {
                    prop_assert_eq!(
                        bytes, &pattern_for(*id, bytes.len() as u64),
                        "{}: {} holds foreign bytes", variant, id
                    );
                }
            }
            prop_assert_eq!(stats.live_count(), reference.len(), "{}", variant);
            prop_assert_eq!(
                stats.live_volume(),
                reference.values().sum::<u64>(),
                "{}", variant
            );

            // The aggregate footprint bound survives migration traffic.
            let n = stats.shards() as u64;
            let bound = (1.0 + eps) * stats.live_volume() as f64
                + (n * stats.max_object_size()) as f64;
            prop_assert!(
                stats.footprint() as f64 <= bound + 1e-9,
                "{}: footprint {} > (1+ε)·ΣV + N·∆ = {}", variant, stats.footprint(), bound
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Online rebalancing interleaved with serving must not change what
    /// the engine *is* either — and because the session advances in
    /// bounded batches, the aggregate footprint bound is checked at
    /// *every batch boundary*, not just at the end.
    #[test]
    fn interleaved_online_rebalance_is_observationally_equivalent(
        ops in op_sequence(),
        eps in 0.1f64..=0.5,
        shards in 2usize..=4,
        batch_objects in 1usize..=8,
    ) {
        // (The vendored proptest caps strategies at 4-tuples; vary the
        // trigger point with the batch bound instead of a 5th parameter.)
        let start_segment = batch_objects % 3;
        let workload = materialize(&ops);
        let reference = reference_set(&workload);

        for variant in VARIANTS {
            let mut engine = Engine::with_router(
                EngineConfig {
                    batch: 16,
                    queue_depth: 2,
                    ..EngineConfig::with_shards(shards)
                }
                .with_substrate(SubstrateConfig::default()),
                Box::new(TableRouter::new(shards)),
                |_| build(variant, eps),
            );

            let segments = 4;
            let chunk = workload.len().div_ceil(segments).max(1);
            let bound_holds = |engine: &mut Engine| -> Result<(), TestCaseError> {
                let stats = engine.quiesce().expect("quiesce");
                let n = stats.shards() as u64;
                let bound = (1.0 + eps) * stats.live_volume() as f64
                    + (n * stats.max_object_size()) as f64;
                prop_assert!(
                    stats.footprint() as f64 <= bound + 1e-9,
                    "footprint {} > (1+ε)·ΣV + N·∆ = {}", stats.footprint(), bound
                );
                Ok(())
            };

            let mut started = false;
            for (i, seg) in workload.requests.chunks(chunk).enumerate() {
                // While the session is active, drive() serves through the
                // route-at-enqueue path and advances the migration itself —
                // serving and migrating genuinely interleave here.
                engine.drive(&Workload::new("seg", seg.to_vec())).expect("drive");
                if i == start_segment {
                    let plan = engine
                        .rebalance_online(
                            RebalanceOptions::default().batched(batch_objects),
                        )
                        .expect("plan");
                    prop_assert_eq!(
                        plan.batches,
                        plan.objects.div_ceil(batch_objects as u64)
                    );
                    started = true;
                }
                // One explicit step per segment, with the footprint bound
                // checked at the batch boundary; the rest of the plan
                // drains inside the following segments' serving.
                if engine.rebalance_step().expect("step") {
                    bound_holds(&mut engine)?;
                }
            }
            // Drain whatever is left, still checking every batch boundary.
            while engine.rebalance_step().expect("step") {
                bound_holds(&mut engine)?;
            }
            if started {
                let report = engine.take_rebalance_report().expect("completed session");
                prop_assert_eq!(report.mode, RebalanceMode::Online, "{}", variant);
            }
            bound_holds(&mut engine)?;

            // Same final object set as the unsharded replay.
            let extents = engine.extents().expect("extents");
            let mut seen = BTreeMap::new();
            for (shard, list) in extents.iter().enumerate() {
                for &(id, extent) in list {
                    prop_assert!(
                        seen.insert(id, extent.len).is_none(),
                        "{variant}: {id} lives on two shards"
                    );
                    prop_assert_eq!(
                        engine.shard_of(id), shard,
                        "{}: {} owned by shard {} but routed elsewhere", variant, id, shard
                    );
                }
            }
            prop_assert_eq!(&seen, &reference, "{}: object set diverged", variant);
            for list in &engine.substrate_contents().expect("contents") {
                for (id, bytes) in list {
                    prop_assert_eq!(
                        bytes, &pattern_for(*id, bytes.len() as u64),
                        "{}: {} corrupted by an online migration", variant, id
                    );
                }
            }
        }
    }
}

/// The acceptance scenario from the issue: skewed deletes push hash-routed
/// imbalance past 2×; one table-routed rebalance pulls it under 1.25.
#[test]
fn skewed_deletes_hash_imbalance_repaired_by_table_rebalance() {
    const SHARDS: usize = 4;
    const EPS: f64 = 0.25;
    let config = ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 64 },
        target_volume: 6_000,
        churn_ops: 3_000,
        seed: 20_140_623,
    };

    for variant in VARIANTS {
        // Hash routing: the skew lands and nothing can fix it.
        let hash_workload = skewed_churn(&config, |id| shard_of(id, SHARDS) == 0);
        let mut hash_engine =
            Engine::new(EngineConfig::with_shards(SHARDS), |_| build(variant, EPS));
        hash_engine.drive(&hash_workload).expect("drive");
        let hash_stats = hash_engine.quiesce().expect("quiesce");
        assert!(
            hash_stats.imbalance_ratio() > 2.0,
            "{variant}: hash-routed skew too weak ({})",
            hash_stats.imbalance_ratio()
        );
        assert!(matches!(
            hash_engine.rebalance(RebalanceOptions::default()),
            Err(EngineError::FixedRouting { .. })
        ));

        // Table routing: same skew (keyed to the table router's own
        // fallback), then one rebalance.
        let probe = TableRouter::new(SHARDS);
        let table_workload = skewed_churn(&config, |id| probe.route(id) == 0);
        let mut engine = Engine::with_router(
            EngineConfig::with_shards(SHARDS),
            Box::new(TableRouter::new(SHARDS)),
            |_| build(variant, EPS),
        );
        engine.drive(&table_workload).expect("drive");
        let before = engine.quiesce().expect("quiesce");
        assert!(
            before.imbalance_ratio() > 2.0,
            "{variant}: table-routed skew too weak ({})",
            before.imbalance_ratio()
        );

        let report = engine
            .rebalance(RebalanceOptions::default())
            .expect("rebalance");
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "{variant}: imbalance {} after rebalance",
            report.after.imbalance_ratio()
        );
        assert!(report.migrated_objects > 0);
        assert_eq!(
            report.after.live_volume(),
            before.live_volume(),
            "{variant}: rebalance changed the live volume"
        );
        assert_eq!(report.after.live_count(), before.live_count());

        // The re-homed population is still fully servable: delete it all.
        let extents = engine.extents().expect("extents");
        for list in &extents {
            for &(id, _) in list {
                engine.delete(id).expect("delete");
            }
        }
        let empty = engine.quiesce().expect("final quiesce");
        assert_eq!(
            empty.errors(),
            0,
            "{variant}: stale routing after rebalance"
        );
        assert_eq!(empty.live_count(), 0);
    }
}

/// The online acceptance scenario: the same skew repaired to < 1.25× by a
/// rebalance that never quiesces the fleet — the migration drains in
/// bounded batches while a whole second phase of (released, neutral) churn
/// is being served, and nothing is lost.
#[test]
fn skewed_deletes_repaired_by_online_rebalance_while_serving() {
    const SHARDS: usize = 4;
    const EPS: f64 = 0.25;
    let config = ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 64 },
        target_volume: 6_000,
        churn_ops: 6_000,
        seed: 20_140_623,
    };
    // Skew for the first half of the churn, neutral traffic after — the
    // rebalance runs during the neutral phase.
    let probe = TableRouter::new(SHARDS);
    let workload = skewed_churn_release(&config, |id| probe.route(id) == 0, 3_000);
    let reference = reference_set(&workload);
    let skew_requests = workload.len() - 3_000;

    for variant in VARIANTS {
        let mut engine = Engine::with_router(
            EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default()),
            Box::new(TableRouter::new(SHARDS)),
            |_| build(variant, EPS),
        );
        engine
            .drive(&Workload::new(
                "skew",
                workload.requests[..skew_requests].to_vec(),
            ))
            .expect("drive skew phase");
        let before = engine.quiesce().expect("quiesce");
        assert!(
            before.imbalance_ratio() > 2.0,
            "{variant}: skew too weak ({})",
            before.imbalance_ratio()
        );

        let plan = engine
            .rebalance_online(RebalanceOptions::default().batched(16))
            .expect("plan");
        assert!(plan.objects > 16, "{variant}: trivial plan");
        // Serve the whole neutral phase while the session drains.
        engine
            .drive(&Workload::new(
                "neutral",
                workload.requests[skew_requests..].to_vec(),
            ))
            .expect("drive neutral phase");
        while engine.rebalance_step().expect("step") {}
        let report = engine.take_rebalance_report().expect("report");
        assert_eq!(report.mode, RebalanceMode::Online);
        assert!(report.batches > 1, "{variant}: not incremental");
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "{variant}: imbalance {} after online rebalance",
            report.after.imbalance_ratio()
        );

        // Observational equivalence with the unsharded replay, after a
        // rebalance raced an entire churn phase.
        let stats = engine.quiesce().expect("quiesce");
        assert_eq!(stats.errors(), 0, "{variant}: online migration errored");
        let extents = engine.extents().expect("extents");
        let mut seen = BTreeMap::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, extent) in list {
                assert!(seen.insert(id, extent.len).is_none(), "{id} on two shards");
                assert_eq!(engine.shard_of(id), shard, "{variant}: {id} misrouted");
            }
        }
        assert_eq!(seen, reference, "{variant}: object set diverged");
        // The migration physically moved the bytes: ledger volume equals
        // cells copied across address spaces, and everything verifies.
        assert_eq!(stats.bytes_migrated_out(), stats.bytes_migrated_in());
        assert!(stats.bytes_migrated_in() >= report.migrated_volume);
        for r in engine.verify_substrate().expect("verify") {
            assert!(r.error.is_none(), "{variant}: {:?}", r.error);
        }
    }
}

/// The driver loop closed: an installed policy notices the skew at barrier
/// observations, fires an online session on its own, and the fleet
/// converges — no explicit rebalance call anywhere.
#[test]
fn auto_rebalance_policy_repairs_skew_without_explicit_calls() {
    const SHARDS: usize = 4;
    const EPS: f64 = 0.25;
    const OBSERVE_EVERY: usize = 1_024;
    let config = ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 64 },
        target_volume: 6_000,
        churn_ops: 6_000,
        seed: 7,
    };
    let probe = TableRouter::new(SHARDS);
    let workload = skewed_churn_release(&config, |id| probe.route(id) == 0, 3_000);

    let mut engine = Engine::with_router(
        EngineConfig::with_shards(SHARDS),
        Box::new(TableRouter::new(SHARDS)),
        |_| build("cost-oblivious", EPS),
    );
    engine.set_auto_rebalance(
        RebalancePolicy::new(1.5, 2, 2),
        RebalanceOptions::default().batched(32),
    );

    let mut fired = 0u32;
    let mut completed = 0u32;
    for chunk in workload.requests.chunks(OBSERVE_EVERY) {
        engine
            .drive(&Workload::new("chunk", chunk.to_vec()))
            .expect("drive");
        let was_active = engine.rebalance_active();
        engine.snapshot().expect("snapshot");
        if !was_active && engine.rebalance_active() {
            fired += 1;
        }
        if let Some(report) = engine.take_rebalance_report() {
            assert_eq!(report.mode, RebalanceMode::Online);
            assert!(report.migrated_objects > 0, "policy fired a no-op");
            completed += 1;
        }
    }
    while engine.rebalance_step().expect("step") {}
    if engine.take_rebalance_report().is_some() {
        completed += 1;
    }
    assert!(fired >= 1, "the policy never fired on a >2x skew");
    assert_eq!(completed, fired, "every fired session must complete");

    let stats = engine.quiesce().expect("quiesce");
    assert!(
        stats.imbalance_ratio() < 1.5,
        "fleet still imbalanced ({}) after auto-rebalance",
        stats.imbalance_ratio()
    );
    assert_eq!(stats.errors(), 0);
}

/// Resizing reuses the migration machinery without the assignment table:
/// a hash-routed engine can grow and shrink too.
#[test]
fn hash_routed_engine_resizes_by_mass_migration() {
    let workload = realloc_bench::standard_churn(8_000, 2_000, 3);
    let reference = reference_set(&workload);
    let mut engine = Engine::new(EngineConfig::with_shards(2), |_| {
        build("cost-oblivious", 0.25)
    });
    engine.drive(&workload).expect("drive");
    engine
        .resize_shards(5, |_| build("cost-oblivious", 0.25))
        .expect("grow");
    engine
        .resize_shards(3, |_| build("cost-oblivious", 0.25))
        .expect("shrink");
    let stats = engine.quiesce().expect("quiesce");
    assert_eq!(stats.shards(), 3);
    assert_eq!(stats.live_count(), reference.len());
    let extents = engine.extents().expect("extents");
    for (shard, list) in extents.iter().enumerate() {
        for &(id, extent) in list {
            assert_eq!(shard_of(id, 3), shard, "{id} not on its hash shard");
            assert_eq!(reference.get(&id), Some(&extent.len));
        }
    }
    // Retired shards' request history survives to shutdown.
    let finals = engine.shutdown().expect("shutdown");
    assert_eq!(finals.len(), 3 + 2);
    let served: u64 = finals.iter().map(|f| f.stats.requests).sum();
    assert_eq!(served as usize, workload.len());
}
