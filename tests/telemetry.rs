//! The observability layer's contracts.
//!
//! Telemetry must be a pure *observer*: turning it on (or pricing against
//! a device) must not change what the engine computes, and the parts of a
//! scrape that join the determinism surface must be bitwise-identical
//! across repeat runs, while wall-clock observations are excluded from
//! every `==`. These tests pin all of that down, plus the delta-scrape
//! semantics and the agreement between sim-time and ledger pricing.

use proptest::prelude::*;
use storage_realloc::engine::SpanPhase;
use storage_realloc::prelude::*;

const VARIANTS: [&str; 3] = ["cost-oblivious", "checkpointed", "deamortized"];

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    match variant {
        "cost-oblivious" => Box::new(CostObliviousReallocator::new(eps)),
        "checkpointed" => Box::new(CheckpointedReallocator::new(eps)),
        "deamortized" => Box::new(DeamortizedReallocator::new(eps)),
        other => panic!("unknown variant {other}"),
    }
}

fn churn(volume: u64, ops: usize, seed: u64) -> Workload {
    storage_realloc::workloads::churn::churn(&storage_realloc::workloads::churn::ChurnConfig {
        dist: storage_realloc::workloads::dist::SizeDist::ClassPowerLaw {
            classes: 8,
            decay: 0.7,
        },
        target_volume: volume,
        churn_ops: ops,
        seed,
    })
}

fn run_with(config: EngineConfig, workload: &Workload) -> (MetricsSnapshot, Vec<ShardFinal>) {
    let mut engine = Engine::new(config, |_| build("cost-oblivious", 0.25));
    engine.drive(workload).unwrap();
    engine.quiesce().unwrap();
    let metrics = engine.metrics().unwrap();
    let finals = engine.shutdown().unwrap();
    (metrics, finals)
}

use storage_realloc::engine::ShardFinal;

/// The tentpole determinism regression: the same workload run twice must
/// produce equal `EngineStats` *and* equal `MetricsSnapshot`s under the
/// deterministic projection — even though the wall-clock histograms in
/// the two snapshots inevitably differ.
#[test]
fn repeat_runs_scrape_identically() {
    let workload = churn(30_000, 6_000, 7);
    for device in [None, Some(DeviceProfile::Disk)] {
        let mut config = EngineConfig::with_shards(3);
        config.device = device;
        let (a, fa) = run_with(config, &workload);
        let (b, fb) = run_with(config, &workload);
        assert_eq!(a, b, "metrics snapshots diverged (device {device:?})");
        assert_eq!(a.stats, b.stats);
        // The wall-clock side really did record something — the equality
        // above is a projection, not emptiness.
        assert!(a.per_shard.iter().any(|m| m.batch_service_ns.count > 0));
        let stats = |f: &[ShardFinal]| EngineStats {
            per_shard: f.iter().map(|s| s.stats.clone()).collect(),
        };
        assert_eq!(stats(&fa), stats(&fb));
    }
}

/// Telemetry off ≡ telemetry on, for every paper variant: identical
/// extents, identical stats (the sim-time fields are zero in both runs
/// without a device), identical ledger contents.
#[test]
fn telemetry_is_a_pure_observer() {
    let workload = churn(20_000, 4_000, 11);
    for variant in VARIANTS {
        let run = |telemetry: bool| {
            let mut config = EngineConfig::with_shards(2);
            config.telemetry = telemetry;
            let mut engine = Engine::new(config, |_| build(variant, 0.25));
            engine.drive(&workload).unwrap();
            engine.quiesce().unwrap();
            let extents = engine.extents().unwrap();
            let finals = engine.shutdown().unwrap();
            (extents, finals)
        };
        let (ext_on, fin_on) = run(true);
        let (ext_off, fin_off) = run(false);
        assert_eq!(ext_on, ext_off, "{variant}: extents diverged");
        for (a, b) in fin_on.iter().zip(&fin_off) {
            assert_eq!(a.stats, b.stats, "{variant}: stats diverged");
            assert_eq!(
                a.ledger.records(),
                b.ledger.records(),
                "{variant}: ledgers diverged"
            );
        }
    }
}

/// A device profile prices — it must not perturb the computation either.
#[test]
fn device_pricing_is_a_pure_observer() {
    let workload = churn(15_000, 3_000, 13);
    let run = |device: Option<DeviceProfile>| {
        let mut config = EngineConfig::with_shards(2);
        config.device = device;
        let mut engine = Engine::new(config, |_| build("deamortized", 0.25));
        engine.drive(&workload).unwrap();
        engine.quiesce().unwrap();
        let extents = engine.extents().unwrap();
        let stats = engine.snapshot().unwrap();
        (extents, stats)
    };
    let (ext_none, stats_none) = run(None);
    for profile in DeviceProfile::ALL {
        let (ext, stats) = run(Some(profile));
        assert_eq!(ext, ext_none, "{}: extents diverged", profile.name());
        // Sim-time fields differ by construction; everything else is equal.
        for (a, b) in stats.per_shard.iter().zip(&stats_none.per_shard) {
            let mut b = b.clone();
            b.serve_sim_time = a.serve_sim_time;
            b.migrate_sim_time = a.migrate_sim_time;
            b.wal_commit_sim_time = a.wal_commit_sim_time;
            assert_eq!(*a, b, "{}: stats diverged", profile.name());
        }
        assert!(stats.sim_time() > 0.0, "{}: nothing priced", profile.name());
    }
    assert_eq!(stats_none.sim_time(), 0.0);
}

/// Sim time must agree with pricing the shard ledgers through the same
/// cost function: serve+migrate lanes ≈ alloc cost + realloc cost +
/// checkpoint barriers × checkpoint latency. The §2 algorithm's quiesce
/// is a no-op (no unledgered drain ops), so the agreement is exact up to
/// float association order.
#[test]
fn sim_time_agrees_with_ledger_pricing() {
    let workload = churn(25_000, 5_000, 17);
    for profile in [DeviceProfile::Unit, DeviceProfile::Disk, DeviceProfile::Ssd] {
        let mut config = EngineConfig::with_shards(2);
        config.device = Some(profile);
        let mut engine = Engine::new(config, |_| build("cost-oblivious", 0.25));
        engine.drive(&workload).unwrap();
        let stats = engine.quiesce().unwrap();
        let finals = engine.shutdown().unwrap();

        let device = profile.build();
        let price = |w: u64| {
            device.time_of(&StorageOp::Allocate {
                id: ObjectId(0),
                to: Extent::new(0, w),
            })
        };
        let checkpoint_latency = device.time_of(&StorageOp::CheckpointBarrier);
        let mut ledger_time = 0.0;
        for f in &finals {
            ledger_time += f.ledger.total_alloc_cost(&price);
            ledger_time += f.ledger.total_realloc_cost(&price);
            ledger_time += f.ledger.total_checkpoints() as f64 * checkpoint_latency;
        }
        let sim = stats.serve_sim_time() + stats.migrate_sim_time();
        let rel = (sim - ledger_time).abs() / ledger_time.max(1.0);
        assert!(
            rel < 1e-9,
            "{}: sim {sim} vs ledger {ledger_time} (rel {rel})",
            profile.name()
        );
    }
}

/// Delta scrapes: counters and histograms subtract, gauges stay current.
#[test]
fn delta_scrape_subtracts_counters_and_keeps_gauges() {
    let mut config = EngineConfig::with_shards(2);
    config.device = Some(DeviceProfile::Unit);
    let mut engine = Engine::new(config, |_| build("cost-oblivious", 0.25));

    engine.drive(&churn(10_000, 2_000, 23)).unwrap();
    engine.quiesce().unwrap();
    let first = engine.metrics_delta().unwrap();
    // First scrape: no baseline, full values.
    assert_eq!(first.scrape, 1);
    assert!(first.stats.requests() > 0);

    // No traffic between scrapes: every counter delta must be zero, while
    // gauges keep reporting the current level.
    let idle = engine.metrics_delta().unwrap();
    assert_eq!(idle.scrape, 2);
    assert_eq!(idle.stats.requests(), 0);
    assert_eq!(idle.stats.wal_records(), 0);
    assert_eq!(idle.sim_time_us(), 0.0);
    assert_eq!(idle.stats.live_volume(), first.stats.live_volume());
    assert!(idle.per_shard.iter().all(|m| m.batch_sim_us.count == 0));

    // More traffic (fresh ids, disjoint from the churn run): the delta
    // counts only the new work, the cumulative scrape keeps growing.
    let more: Vec<Request> = (0..500)
        .map(|i| Request::Insert {
            id: ObjectId(1_000_000 + i),
            size: 64,
        })
        .collect();
    engine.drive(&Workload::new("more", more)).unwrap();
    engine.quiesce().unwrap();
    let delta = engine.metrics_delta().unwrap();
    let total = engine.metrics().unwrap();
    assert!(delta.stats.requests() > 0);
    assert!(total.stats.requests() > delta.stats.requests());
    engine.shutdown().unwrap();
}

/// The wall-clock exclusion holds end-to-end: a real scrape compared with
/// a doctored copy whose observation histograms are wiped is still equal.
#[test]
fn scrape_equality_ignores_wall_clock_observations() {
    let mut config = EngineConfig::with_shards(2);
    config.device = Some(DeviceProfile::Ssd);
    let mut engine = Engine::new(config, |_| build("cost-oblivious", 0.25));
    engine.drive(&churn(10_000, 2_000, 31)).unwrap();
    engine.quiesce().unwrap();
    let real = engine.metrics().unwrap();
    engine.shutdown().unwrap();

    let mut doctored = real.clone();
    for m in &mut doctored.per_shard {
        m.batch_service_ns = HistogramSnapshot::empty();
        m.commit_latency_ns = HistogramSnapshot::empty();
        m.intake_stall_ns = HistogramSnapshot::empty();
    }
    doctored.events.clear();
    assert_eq!(real, doctored);

    // Deterministic fields do participate.
    let mut perturbed = real.clone();
    perturbed.per_shard[0].serve_sim_us += 1.0;
    assert_ne!(real, perturbed);
}

/// Rebalance sessions journal one span per migration batch, and the JSON
/// export carries them.
#[test]
fn rebalance_batches_emit_spans() {
    let mut config = EngineConfig::with_shards(2);
    config.device = Some(DeviceProfile::Unit);
    let mut engine = Engine::with_router(config, Box::new(TableRouter::new(2)), |_| {
        build("cost-oblivious", 0.25)
    });
    // Skewed population: everything hashes wherever it lands, then a
    // rebalance moves some of it.
    for i in 0..200u64 {
        engine.insert(ObjectId(i), 64 + i % 32).unwrap();
    }
    engine.quiesce().unwrap();
    engine
        .rebalance_online(RebalanceOptions {
            batch_objects: 8,
            ..Default::default()
        })
        .unwrap();
    while engine.rebalance_step().unwrap() {}
    engine.take_rebalance_report().unwrap();

    let metrics = engine.metrics().unwrap();
    let begins = metrics
        .events
        .iter()
        .filter(|e| e.label == "rebalance.batch" && matches!(e.phase, SpanPhase::Begin))
        .count();
    let ends = metrics
        .events
        .iter()
        .filter(|e| e.label == "rebalance.batch" && matches!(e.phase, SpanPhase::End))
        .count();
    assert!(begins > 0, "no batch spans journaled");
    assert_eq!(begins, ends, "unmatched batch spans");
    assert!(metrics
        .events
        .iter()
        .any(|e| e.label == "rebalance.session"));

    let json = metrics.to_json().to_string();
    let parsed = Json::parse(&json).expect("export must round-trip");
    let events = parsed.get("events").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len(), metrics.events.len());
    engine.shutdown().unwrap();
}

/// Recovery installs one span per stage into the rebuilt engine.
#[test]
fn recovery_emits_stage_spans() {
    let dir = std::env::temp_dir().join(format!("realloc-telemetry-rec-{}", std::process::id()));
    let config = EngineConfig::with_shards(2);
    let mut engine = Engine::with_wal(
        config,
        Box::new(TableRouter::new(2)),
        |_| build("cost-oblivious", 0.25),
        &dir,
    )
    .unwrap();
    for i in 0..100u64 {
        engine.insert(ObjectId(i), 32 + i % 16).unwrap();
    }
    engine.quiesce().unwrap();
    engine.crash();

    let (mut rebuilt, report) =
        Engine::recover(config, &dir, |_| build("cost-oblivious", 0.25)).unwrap();
    assert_eq!(report.objects, 100);
    let metrics = rebuilt.metrics().unwrap();
    for stage in [
        "recover.fold",
        "recover.reconcile",
        "recover.routing",
        "recover.reseed",
    ] {
        let begin = metrics
            .events
            .iter()
            .any(|e| e.label == stage && matches!(e.phase, SpanPhase::Begin));
        let end = metrics
            .events
            .iter()
            .any(|e| e.label == stage && matches!(e.phase, SpanPhase::End));
        assert!(begin && end, "missing span pair for {stage}");
    }
    rebuilt.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// WAL commit sim time only exists with both a WAL and a device, and the
/// commit histograms record the group-commit coalescing.
#[test]
fn wal_commit_pricing_requires_wal_and_device() {
    let dir = std::env::temp_dir().join(format!("realloc-telemetry-wal-{}", std::process::id()));
    let mut config = EngineConfig::with_shards(2);
    config.device = Some(DeviceProfile::Disk);
    let mut engine = Engine::with_wal(
        config,
        Box::new(TableRouter::new(2)),
        |_| build("cost-oblivious", 0.25),
        &dir,
    )
    .unwrap();
    engine.drive(&churn(10_000, 2_000, 37)).unwrap();
    let stats = engine.quiesce().unwrap();
    let metrics = engine.metrics().unwrap();
    assert!(stats.wal_commit_sim_time() > 0.0);
    assert!(metrics.per_shard.iter().any(|m| m.commit_records.count > 0));
    // Coalescing: a group commit carries more than one record on average.
    let recs = metrics
        .per_shard
        .iter()
        .map(|m| m.commit_records.clone())
        .fold(HistogramSnapshot::empty(), |mut acc, h| {
            acc.merge(&h);
            acc
        });
    assert!(recs.mean() > 1.0, "group commits are not coalescing");
    engine.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Without a WAL the lane stays zero even with a device.
    let mut config = EngineConfig::with_shards(2);
    config.device = Some(DeviceProfile::Disk);
    let mut engine = Engine::new(config, |_| build("cost-oblivious", 0.25));
    engine.drive(&churn(5_000, 1_000, 41)).unwrap();
    let stats = engine.quiesce().unwrap();
    assert_eq!(stats.wal_commit_sim_time(), 0.0);
    assert!(stats.serve_sim_time() > 0.0);
    engine.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for random small workloads, metrics-on and metrics-off
    /// runs agree on extents, stats, and ledger contents for all three
    /// paper variants.
    #[test]
    fn prop_metrics_do_not_perturb(seed in 0u64..1_000, ops in 200usize..800) {
        let workload = churn(8_000, ops, seed);
        for variant in VARIANTS {
            let run = |telemetry: bool| {
                let mut config = EngineConfig::with_shards(2);
                config.telemetry = telemetry;
                config.device = telemetry.then_some(DeviceProfile::Unit);
                let mut engine = Engine::new(config, |_| build(variant, 0.25));
                engine.drive(&workload).unwrap();
                engine.quiesce().unwrap();
                let extents = engine.extents().unwrap();
                let finals = engine.shutdown().unwrap();
                (extents, finals)
            };
            let (ext_on, fin_on) = run(true);
            let (ext_off, fin_off) = run(false);
            prop_assert_eq!(ext_on, ext_off, "{}: extents diverged", variant);
            for (a, b) in fin_on.iter().zip(&fin_off) {
                prop_assert_eq!(a.stats.requests, b.stats.requests);
                prop_assert_eq!(a.stats.live_volume, b.stats.live_volume);
                prop_assert_eq!(a.stats.footprint, b.stats.footprint);
                prop_assert_eq!(a.stats.total_moves, b.stats.total_moves);
                prop_assert_eq!(a.ledger.records().len(), b.ledger.records().len());
            }
        }
    }
}
