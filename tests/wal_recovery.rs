//! Crash recovery of a WAL'd, substrate-backed fleet.
//!
//! The durability contract under test (see ARCHITECTURE.md §Durability):
//! every command a shard acked was group-committed to its write-ahead log
//! first, so a simulated `kill -9` ([`Engine::crash`]) followed by
//! [`Engine::recover`] rebuilds exactly the acked logical state — every
//! id live on exactly one shard, bytes regenerated and proven against the
//! journaled digests, and the routing table re-derived to match physical
//! ownership. Also covered: recovery from checkpoints alone after a clean
//! shutdown, the sticky substrate-error flag being legitimately cleared
//! by recovery (the bytes are rebuilt from scratch), and resurrection of
//! a transfer whose arrival never became durable.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use storage_realloc::prelude::*;
use storage_realloc::sim::wal::{wal_path, WalRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realloc-wal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn walled_engine(shards: usize, dir: &Path) -> Engine {
    Engine::with_wal(
        EngineConfig::with_shards(shards).with_substrate(SubstrateConfig::default()),
        Box::new(TableRouter::new(shards)),
        |_| Box::new(CostObliviousReallocator::new(0.25)) as _,
        dir,
    )
    .unwrap()
}

fn recover(shards: usize, dir: &Path) -> (Engine, RecoveryReport) {
    Engine::recover(
        EngineConfig::with_shards(shards).with_substrate(SubstrateConfig::default()),
        dir,
        |_| Box::new(CostObliviousReallocator::new(0.25)) as _,
    )
    .unwrap()
}

/// Size for test object `i` — varied so per-shard volumes are imbalanced
/// enough that rebalance plans are never empty.
fn size_of(i: u64) -> u64 {
    1 + (i * 7) % 48
}

/// Every live object appears on exactly one shard, routed to that shard,
/// and the fleet's live set is exactly `expected`.
fn assert_consistent(engine: &mut Engine, expected: &BTreeMap<ObjectId, u64>) {
    let extents = engine.extents().unwrap();
    let mut seen = BTreeMap::new();
    for (shard, list) in extents.iter().enumerate() {
        for &(id, e) in list {
            assert!(seen.insert(id, e.len).is_none(), "{id} live on two shards");
            assert_eq!(
                engine.shard_of(id),
                shard,
                "{id} routed away from its owner"
            );
        }
    }
    assert_eq!(&seen, expected, "recovered live set diverged");
}

#[test]
fn crash_mid_online_rebalance_recovers_byte_identical_state() {
    let dir = temp_dir("online");
    let mut engine = walled_engine(3, &dir);
    let mut expected = BTreeMap::new();
    for i in 0..48u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    engine.quiesce().unwrap();

    // Drain an online rebalance (its migrations journal but — unlike the
    // barrier mode — nothing checkpoints afterwards), then keep serving
    // so the logs carry a post-migration tail too.
    let plan = engine
        .rebalance_online(RebalanceOptions::default().batched(4))
        .unwrap();
    assert!(plan.objects > 0, "scenario must actually migrate");
    while engine.rebalance_step().unwrap() {}
    for i in 48..60u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    for i in 0..6u64 {
        engine.delete(ObjectId(i)).unwrap();
        expected.remove(&ObjectId(i));
    }
    engine.flush().unwrap();
    engine.crash();

    let (mut recovered, report) = recover(3, &dir);
    assert_eq!(report.shards, 3);
    assert_eq!(report.objects as usize, expected.len());
    assert_eq!(report.volume, expected.values().sum::<u64>());
    assert!(report.replayed_records > 0, "the log tail must replay");
    assert_eq!(report.substrate.len(), 3, "byte verification must run");
    assert_consistent(&mut recovered, &expected);
    let stats = recovered.quiesce().unwrap();
    assert_eq!(stats.recoveries(), 1);

    // The recovered fleet serves: more churn, then a clean shutdown.
    for i in 100..110u64 {
        recovered.insert(ObjectId(i), size_of(i)).unwrap();
    }
    let finals = recovered.shutdown().unwrap();
    let live: usize = finals.iter().map(|f| f.stats.live_count).sum();
    assert_eq!(live, expected.len() + 10);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn clean_shutdown_recovers_from_checkpoints_alone() {
    let dir = temp_dir("clean");
    let mut engine = walled_engine(2, &dir);
    let mut expected = BTreeMap::new();
    for i in 0..30u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    engine.shutdown().unwrap();

    let (mut recovered, report) = recover(2, &dir);
    // The final checkpoint subsumed (and truncated) the whole log.
    assert_eq!(report.replayed_groups, 0);
    assert_eq!(report.checkpoint_objects as usize, expected.len());
    assert!(report.resurrected.is_empty());
    assert!(report.dropped_duplicates.is_empty());
    assert_consistent(&mut recovered, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression: a sticky `EngineError::Substrate` must not
/// outlive the state that caused it. Corrupted substrate bytes keep every
/// barrier failing until shutdown — but recovery rebuilds the bytes from
/// scratch (and proves them against the journaled digests), so the
/// recovered fleet is clean.
#[test]
fn recovery_clears_the_sticky_substrate_error() {
    let dir = temp_dir("sticky");
    let mut engine = walled_engine(2, &dir);
    for i in 0..20u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
    }
    engine.quiesce().unwrap();
    let damaged = engine.inject_substrate_corruption(0).unwrap();
    assert!(damaged.is_some(), "shard 0 must have had a live object");
    let err = engine.verify_substrate().unwrap_err();
    assert!(matches!(err, EngineError::Substrate { shard: 0, .. }));
    // Sticky: the *next* barrier still fails.
    assert!(engine.quiesce().is_err());
    engine.crash();

    let (mut recovered, _) = recover(2, &dir);
    recovered.verify_substrate().unwrap();
    recovered.quiesce().unwrap();
    assert_eq!(recovered.quiesce().unwrap().recoveries(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression (abort-after-pin window): a crash after the
/// source durably gave an object up but before the target's arrival
/// became durable must replay to the id live on exactly one shard — the
/// unmatched `MigrateOut` resurrects it on its source. Simulated by
/// tearing the target's log below its `MigrateIn` frames after a real
/// crash.
#[test]
fn lost_arrival_resurrects_the_object_on_its_source() {
    let dir = temp_dir("resurrect");
    let mut engine = walled_engine(2, &dir);
    let mut expected = BTreeMap::new();
    for i in 0..24u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    engine.quiesce().unwrap();
    let plan = engine
        .rebalance_online(RebalanceOptions::default().batched(4))
        .unwrap();
    assert!(plan.objects > 0, "scenario must actually migrate");
    while engine.rebalance_step().unwrap() {}
    engine.crash();

    // Tear one shard's log at the start of its first group holding a
    // MigrateIn: every arrival from that group on never happened, as if
    // the target crashed before its ordered commit.
    let mut torn = None;
    for shard in 0..2 {
        let path = wal_path(&dir, shard);
        let groups = storage_realloc::sim::read_wal(&path).unwrap();
        let hit = groups.iter().position(|g| {
            g.records
                .iter()
                .any(|r| matches!(r, WalRecord::MigrateIn { .. }))
        });
        if let Some(idx) = hit {
            let cut = if idx == 0 {
                0
            } else {
                groups[idx - 1].end_offset
            };
            let lost: Vec<ObjectId> = groups[idx..]
                .iter()
                .flat_map(|g| &g.records)
                .filter_map(|r| match *r {
                    WalRecord::MigrateIn { id, .. } => Some(id),
                    _ => None,
                })
                .collect();
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(cut).unwrap();
            torn = Some(lost);
            break;
        }
    }
    let lost = torn.expect("some shard must have adopted transfers");
    assert!(!lost.is_empty());

    let (mut recovered, report) = recover(2, &dir);
    for id in &lost {
        assert!(
            report.resurrected.contains(id),
            "{id} lost its arrival and must resurrect"
        );
    }
    // Nothing is missing and nothing is doubled — the full pre-crash live
    // set survives, bytes proven.
    assert_consistent(&mut recovered, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recovery is variant-agnostic: one boundary-kill scenario — a durable
/// checkpoint, churn with same-id touches (the nearly-quadratic variant's
/// hole recycling and the deamortized log both see their characteristic
/// traffic), a group-committed flush, `kill -9` — runs for every variant
/// in the [`VARIANTS`] registry, twice: recovery of the full log must land
/// the exact acked state, and recovery after cutting shard 0's log back to
/// its previous group boundary must land a consistent prefix (every id on
/// exactly one shard at an acked size, the checkpointed set intact).
#[test]
fn boundary_kill_recovers_for_every_variant() {
    for variant in VARIANTS {
        let factory = move |_: usize| build_variant(variant, 0.25).expect("registry name");
        let config = || EngineConfig::with_shards(2).with_substrate(SubstrateConfig::default());
        let dir = temp_dir(&format!("boundary-{variant}"));
        let mut engine =
            Engine::with_wal(config(), Box::new(TableRouter::new(2)), factory, &dir).unwrap();

        // Acceptable sizes per id: any size this id was acked at since the
        // checkpoint (a boundary cut legitimately rolls a touch back).
        let mut acceptable: BTreeMap<ObjectId, Vec<u64>> = BTreeMap::new();
        let mut expected = BTreeMap::new();
        for i in 0..40u64 {
            engine.insert(ObjectId(i), size_of(i)).unwrap();
            expected.insert(ObjectId(i), size_of(i));
            acceptable.insert(ObjectId(i), vec![size_of(i)]);
        }
        engine.quiesce().unwrap();
        for i in 0..12u64 {
            engine.delete(ObjectId(i)).unwrap();
            engine.insert(ObjectId(i), size_of(i) + 8).unwrap();
            expected.insert(ObjectId(i), size_of(i) + 8);
            acceptable
                .get_mut(&ObjectId(i))
                .unwrap()
                .push(size_of(i) + 8);
        }
        for i in 40..52u64 {
            engine.insert(ObjectId(i), size_of(i)).unwrap();
            expected.insert(ObjectId(i), size_of(i));
            acceptable.insert(ObjectId(i), vec![size_of(i)]);
        }
        engine.flush().unwrap();
        engine.crash();

        // Work on a copy for the boundary cut: recovery may rewrite logs.
        let work = temp_dir(&format!("boundary-cut-{variant}"));
        std::fs::create_dir_all(&work).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), work.join(entry.file_name())).unwrap();
        }

        let (mut recovered, report) =
            Engine::recover(config(), &dir, factory).unwrap_or_else(|e| panic!("{variant}: {e}"));
        assert!(report.replayed_records > 0, "{variant}: tail must replay");
        assert_consistent(&mut recovered, &expected);
        // The recovered fleet still serves under the same variant.
        recovered.insert(ObjectId(1000), 17).unwrap();
        recovered.quiesce().unwrap();
        recovered.shutdown().unwrap();

        // Boundary cut: the last group on shard 0 vanishes wholesale.
        let path = wal_path(&work, 0);
        let groups = storage_realloc::sim::read_wal(&path).unwrap();
        assert!(!groups.is_empty(), "{variant}: shard 0 logged nothing");
        let cut = if groups.len() >= 2 {
            groups[groups.len() - 2].end_offset
        } else {
            0
        };
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let (mut reduced, _) = Engine::recover(config(), &work, factory)
            .unwrap_or_else(|e| panic!("{variant} boundary cut: {e}"));
        let extents = reduced.extents().unwrap();
        let mut seen = BTreeMap::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, e) in list {
                assert!(
                    seen.insert(id, e.len).is_none(),
                    "{variant}: {id} live on two shards after the cut"
                );
                assert_eq!(reduced.shard_of(id), shard, "{variant}: {id} misrouted");
                assert!(
                    acceptable.get(&id).is_some_and(|s| s.contains(&e.len)),
                    "{variant}: {id} recovered at unacked size {}",
                    e.len
                );
            }
        }
        // The checkpoint survives any log cut: every untouched checkpointed
        // id must still be live. (Touched ids 0..12 may legitimately be
        // absent — the boundary can fall between a durable delete and its
        // lost reinsert.)
        for i in 12..40u64 {
            assert!(
                seen.contains_key(&ObjectId(i)),
                "{variant}: checkpointed {} lost",
                ObjectId(i)
            );
        }
        reduced.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
}

/// Recovery is itself crash-safe: recover, crash the recovered fleet
/// without any further checkpoint, recover again — same state.
#[test]
fn recovery_is_idempotent_under_a_second_crash() {
    let dir = temp_dir("twice");
    let mut engine = walled_engine(2, &dir);
    let mut expected = BTreeMap::new();
    for i in 0..16u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        expected.insert(ObjectId(i), size_of(i));
    }
    engine.flush().unwrap();
    engine.crash(); // no checkpoint at all: replay is log-only

    let (first, report) = recover(2, &dir);
    assert_eq!(report.checkpoint_objects, 0);
    assert_eq!(report.objects as usize, expected.len());
    first.crash();

    let (mut second, report) = recover(2, &dir);
    assert_eq!(report.objects as usize, expected.len());
    assert_consistent(&mut second, &expected);
    std::fs::remove_dir_all(&dir).unwrap();
}
