//! Property-based end-to-end tests of the Theorem 2.7 defragmenter:
//! arbitrary fragmented inputs, arbitrary sort keys, always sorted, always
//! within the space budget, always replayable.

use proptest::prelude::*;
use std::collections::HashMap;
use storage_realloc::core::defrag::DefragError;
use storage_realloc::prelude::*;

/// Random fragmented input: (size, gap-after) pairs.
fn fragmented_input() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((1u64..=128, 0u64..=40), 1..80)
}

fn build(input: &[(u64, u64)]) -> Vec<(ObjectId, Extent)> {
    let mut at = 0;
    input
        .iter()
        .enumerate()
        .map(|(i, &(size, gap))| {
            let e = Extent::new(at, size);
            at += size + gap;
            (ObjectId(i as u64), e)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn defrag_sorts_within_budget(
        input in fragmented_input(),
        eps in 0.1f64..=0.5,
        key_seed in 0u64..1_000,
    ) {
        let objects = build(&input);
        let volume: u64 = objects.iter().map(|(_, e)| e.len).sum();
        let delta: u64 = objects.iter().map(|(_, e)| e.len).max().unwrap();
        // A pseudo-random but deterministic total order on ids.
        let key = |id: ObjectId| id.0.wrapping_mul(6364136223846793005).wrapping_add(key_seed);

        let report = defragment(&objects, eps, |a, b| key(a).cmp(&key(b))).unwrap();

        // Budget: never beyond (1+ε)V + ∆ (input sparsity may set a larger
        // budget; the report's own budget accounts for that).
        prop_assert!(report.peak_space <= report.budget + delta);
        prop_assert!(!report.prefix_suffix_collision);

        // Sorted by the key and contiguous against the right end.
        let mut expected_offset = report.budget - volume;
        let mut prev_key = None;
        for (id, ext) in &report.sorted {
            if let Some(p) = prev_key {
                prop_assert!(key(*id) >= p, "not sorted");
            }
            prev_key = Some(key(*id));
            prop_assert_eq!(ext.offset, expected_offset, "not contiguous");
            expected_offset = ext.end();
        }
        prop_assert_eq!(expected_offset, report.budget);

        // The schedule replays cleanly on the relaxed substrate and ends in
        // exactly the reported layout.
        let mut sim = SimStore::new(Mode::Relaxed);
        for &(id, e) in &objects {
            sim.apply(&StorageOp::Allocate { id, to: e }).unwrap();
        }
        sim.apply_all(&report.ops).unwrap();
        for (id, ext) in &report.sorted {
            prop_assert_eq!(sim.extent_of(*id), Some(*ext));
        }
    }

    /// Defragmenting an already sorted, already compact layout emits no
    /// spurious long-distance churn for the identity key beyond the crunch.
    #[test]
    fn defrag_is_idempotent_on_sorted_input(sizes in prop::collection::vec(1u64..=64, 1..40)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let mut at = 0;
        let objects: Vec<(ObjectId, Extent)> = sorted
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let e = Extent::new(at, s);
                at += s;
                (ObjectId(i as u64), e)
            })
            .collect();
        let szmap: HashMap<ObjectId, u64> = objects.iter().map(|&(i, e)| (i, e.len)).collect();
        let report =
            defragment(&objects, 0.5, |a, b| szmap[&a].cmp(&szmap[&b]).then(a.0.cmp(&b.0)))
                .unwrap();
        // Still sorted afterwards; order of equal-size objects preserved by
        // the id tiebreak.
        for pair in report.sorted.windows(2) {
            prop_assert!(szmap[&pair[0].0] <= szmap[&pair[1].0]);
        }
    }
}

#[test]
fn defrag_rejects_malformed_inputs() {
    let overlap = vec![
        (ObjectId(0), Extent::new(0, 10)),
        (ObjectId(1), Extent::new(9, 10)),
    ];
    assert!(matches!(
        defragment(&overlap, 0.5, |a, b| a.0.cmp(&b.0)),
        Err(DefragError::OverlappingInput(..))
    ));
}
