//! The kill-point matrix: crash a WAL'd fleet at *every* record boundary
//! of an online-rebalance run and prove recovery holds its invariants at
//! each one.
//!
//! One scenario — churn, checkpoint, a batched online rebalance, more
//! churn, crash — produces a pristine set of per-shard logs. The matrix
//! then truncates each shard's log at every group-commit boundary (and at
//! torn mid-frame points just past each boundary) in its own copy of the
//! directory and recovers. Whatever the cut:
//!
//! * recovery succeeds, and its built-in byte verification passes (every
//!   recovered object's bytes prove against the journaled digest);
//! * every live id is on exactly one shard, and the routing table sends
//!   it there — including the two migration failure edges: a lost arrival
//!   (source's `MigrateOut` unmatched → resurrected at the source) and a
//!   lost departure (id doubled → the later claim wins, the stale copy is
//!   dropped);
//! * the live set is a subset of what was ever inserted, at the exact
//!   sizes inserted, and the physical extents agree with the stats.
//!
//! The matrix must hit both failure edges at least once, or the scenario
//! is not exercising the window it exists for.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use storage_realloc::prelude::*;
use storage_realloc::sim::read_wal;
use storage_realloc::sim::wal::{checkpoint_path, read_checkpoint, wal_path};

const SHARDS: usize = 3;

fn factory(_: usize) -> BoxedReallocator {
    Box::new(CostObliviousReallocator::new(0.25))
}

fn config() -> EngineConfig {
    let mut config = EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default());
    // Small serving batches → many group commits → a dense kill-point
    // grid.
    config.batch = 8;
    config
}

fn size_of(i: u64) -> u64 {
    1 + (i * 11) % 40
}

/// Builds the pristine crash scenario under `dir`: checkpointed churn, a
/// fully drained online rebalance (journaled, never checkpointed), a
/// post-migration tail, then a hard crash. Returns every id ever
/// inserted, with its size.
fn build_scenario(dir: &Path) -> BTreeMap<ObjectId, u64> {
    let mut engine =
        Engine::with_wal(config(), Box::new(TableRouter::new(SHARDS)), factory, dir).unwrap();
    let mut inserted = BTreeMap::new();
    for i in 0..48u64 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        inserted.insert(ObjectId(i), size_of(i));
    }
    engine.quiesce().unwrap();
    let plan = engine
        .rebalance_online(RebalanceOptions::default().batched(2))
        .unwrap();
    assert!(plan.objects > 0, "scenario must migrate to test the window");
    // Interleave serving with the draining session, like production
    // traffic would, so migration frames and serving frames alternate in
    // the logs.
    let mut next = 48u64;
    while engine.rebalance_step().unwrap() {
        engine.insert(ObjectId(next), size_of(next)).unwrap();
        inserted.insert(ObjectId(next), size_of(next));
        next += 1;
        engine.flush().unwrap();
    }
    for i in next..next + 12 {
        engine.insert(ObjectId(i), size_of(i)).unwrap();
        inserted.insert(ObjectId(i), size_of(i));
    }
    for i in [1u64, 4, 9, 16, 25] {
        engine.delete(ObjectId(i)).unwrap();
    }
    engine.flush().unwrap();
    engine.crash();
    inserted
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realloc-matrix-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_kill_point_recovers_to_one_owner_per_object() {
    let pristine = temp_dir("pristine");
    let inserted = build_scenario(&pristine);

    // Every cut length for every shard: each group boundary, plus torn
    // points one byte and half a frame header into the next frame (the
    // reader must discard the torn tail silently).
    let mut cuts: Vec<(usize, u64)> = Vec::new();
    for shard in 0..SHARDS {
        let groups = read_wal(&wal_path(&pristine, shard)).unwrap();
        let mut prev = 0u64;
        for group in &groups {
            for cut in [prev, prev + 1, prev + 10] {
                if cut <= group.end_offset {
                    cuts.push((shard, cut));
                }
            }
            prev = group.end_offset;
        }
    }
    assert!(cuts.len() > 20, "scenario produced too few kill points");

    let work = temp_dir("cut");
    let mut resurrections = 0u64;
    let mut duplicates_dropped = 0u64;
    for (shard, cut) in cuts {
        let _ = std::fs::remove_dir_all(&work);
        copy_dir(&pristine, &work);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(wal_path(&work, shard))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // Recovery runs byte verification itself — an Ok here already
        // proves every recovered object's bytes.
        let (mut engine, report) = Engine::recover(config(), &work, factory)
            .unwrap_or_else(|e| panic!("shard {shard} cut at {cut}: {e}"));
        resurrections += report.resurrected.len() as u64;
        duplicates_dropped += report.dropped_duplicates.len() as u64;

        // One owner per id, routing pointing at it, sizes as inserted.
        let extents = engine.extents().unwrap();
        let mut seen = BTreeMap::new();
        for (owner, list) in extents.iter().enumerate() {
            for &(id, e) in list {
                assert!(
                    seen.insert(id, e.len).is_none(),
                    "shard {shard} cut {cut}: {id} live twice"
                );
                assert_eq!(
                    engine.shard_of(id),
                    owner,
                    "shard {shard} cut {cut}: {id} routed off its owner"
                );
                assert_eq!(
                    inserted.get(&id),
                    Some(&e.len),
                    "shard {shard} cut {cut}: {id} at a never-inserted size"
                );
            }
        }
        // Ledger/physical agreement: the stats the barrier reports count
        // exactly the extents that exist.
        let stats = engine.quiesce().unwrap();
        assert_eq!(stats.live_count(), seen.len());
        assert_eq!(stats.live_volume(), seen.values().sum::<u64>());
        assert_eq!(stats.recoveries(), 1);
    }

    // The matrix must have exercised both failure edges of the migration
    // window: lost arrivals (resurrection at the source) and lost
    // departures (duplicate dropped by claim).
    assert!(resurrections > 0, "no cut lost an arrival");
    assert!(duplicates_dropped > 0, "no cut lost a departure");

    let _ = std::fs::remove_dir_all(&work);
    std::fs::remove_dir_all(&pristine).unwrap();
}

/// Pins the parallel Phase-1 fold (one thread per shard, merged in
/// shard index order): recovering the same pristine directory is
/// deterministic run to run — same owner map, same placements, same
/// report down to the duplicate/resurrection lists — and the replay
/// counters account for exactly the records the logs hold past each
/// shard's checkpoint epoch. Nothing dropped, nothing double-counted,
/// whatever order the fold threads finish in.
#[test]
fn parallel_suffix_fold_is_deterministic_and_complete() {
    let pristine = temp_dir("fold");
    build_scenario(&pristine);

    // The completeness target, computed straight from the files the way
    // a sequential reader would.
    let mut want_groups = 0u64;
    let mut want_records = 0u64;
    let mut want_ckpt_objects = 0u64;
    for shard in 0..SHARDS {
        let ckpt = read_checkpoint(&checkpoint_path(&pristine, shard)).unwrap();
        let epoch = ckpt.as_ref().map_or(0, |c| c.epoch);
        want_ckpt_objects += ckpt.map_or(0, |c| c.entries.len() as u64);
        for group in read_wal(&wal_path(&pristine, shard)).unwrap() {
            if group.epoch >= epoch {
                want_groups += 1;
                want_records += group.records.len() as u64;
            }
        }
    }
    assert!(want_records > 0, "scenario must leave a replayable suffix");

    let mut baseline = None;
    for run in 0..3 {
        let work = temp_dir("fold-run");
        copy_dir(&pristine, &work);
        let (mut engine, report) = Engine::recover(config(), &work, factory).unwrap();
        assert_eq!(report.replayed_groups, want_groups, "run {run}");
        assert_eq!(report.replayed_records, want_records, "run {run}");
        assert_eq!(report.checkpoint_objects, want_ckpt_objects, "run {run}");

        let fingerprint = (
            engine.extents().unwrap(),
            report.objects,
            report.volume,
            report.resurrected.clone(),
            report.dropped_duplicates.clone(),
            report.route_assignments,
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(first) => assert_eq!(first, &fingerprint, "run {run} diverged"),
        }
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&work).unwrap();
    }
    std::fs::remove_dir_all(&pristine).unwrap();
}
