//! The fleet's batch-stealing protocol, under adversarial conditions.
//!
//! Stealing moves whole *queued batches* between workers, never objects,
//! so two properties must survive any interleaving (ARCHITECTURE.md §8):
//!
//! 1. **Per-object request order.** A core's batches carry client-side
//!    sequence numbers; a worker (home or thief) may only apply the
//!    batch the core expects next, and either conflict edge — the core
//!    lock being held, or an earlier batch still unapplied — re-enqueues
//!    the batch at its owner. These tests hammer a single object with
//!    insert/delete cycles through a *paused* home worker (so every
//!    batch is a forced steal): one application out of order would
//!    surface as a duplicate-insert or unknown-id error at the barrier.
//! 2. **Exactly-once durability.** A stolen batch group-commits into the
//!    *owning shard's* WAL (the thief runs the owner's state machine, it
//!    does not adopt the work), so a crash after forced stealing must
//!    find every acked record in exactly one shard's log.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use storage_realloc::prelude::*;
use storage_realloc::sim::read_wal;
use storage_realloc::sim::wal::{wal_path, WalRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("realloc-steal-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One shard, one-request batches (every request ships immediately), a
/// shallow admission queue so the test also exercises intake back-off.
fn tiny_config() -> EngineConfig {
    EngineConfig {
        batch: 1,
        queue_depth: 4,
        ..EngineConfig::with_shards(1)
    }
    .with_substrate(SubstrateConfig::default())
}

fn realloc(_shard: usize) -> BoxedReallocator {
    Box::new(CostObliviousReallocator::new(0.25))
}

/// Per-object request order survives forced stealing. The tenant's only
/// core is pinned to a paused worker, so *every* batch is applied by one
/// of two competing thieves — exercising both the lock-conflict edge
/// (the other thief holds the core) and the seq-conflict edge (the
/// other thief holds an *earlier* batch) statistically, thousands of
/// times. The workload is maximally order-sensitive: the same id is
/// inserted and deleted in strict alternation, so a single swapped pair
/// of batches is a duplicate insert or an unknown-id delete, and both
/// are counted and surfaced at the quiesce barrier.
#[test]
fn per_object_order_survives_forced_stealing() {
    const CYCLES: u64 = 300;
    let fleet = Fleet::new(FleetConfig::with_workers(3).stealing(true));
    fleet.pause_worker(0);
    let mut tenant = fleet.register_pinned(tiny_config(), Box::new(HashRouter::new(1)), realloc, 0);

    let id = ObjectId(0);
    for _ in 0..CYCLES {
        drop(tenant.insert(id, 8));
        drop(tenant.delete(id));
    }
    drop(tenant.insert(id, 8)); // leave one live object behind

    let stats = tenant
        .quiesce()
        .wait()
        .expect("an out-of-order steal would error here");
    assert_eq!(stats.live_count(), 1);
    assert_eq!(stats.live_volume(), 8);
    assert_eq!(stats.errors(), 0);
    assert_eq!(stats.requests(), 2 * CYCLES + 1);

    // The home never ran: every request batch (plus the barrier commands
    // riding the same queue) was stolen.
    let metrics = tenant.metrics().expect("metrics");
    assert!(
        metrics.steal.batches_stolen > 2 * CYCLES,
        "expected every batch stolen, saw {}",
        metrics.steal.batches_stolen
    );
    assert_eq!(
        metrics.steal.steal_wait_ns.count, metrics.steal.batches_stolen,
        "one wait observation per successful steal"
    );

    fleet.resume_worker(0);
    tenant.shutdown().expect("shutdown");
    fleet.shutdown();
}

/// Pins the lock-conflict edge deterministically: a test hook holds the
/// core's state lock while a batch sits queued at a paused home, so the
/// only active worker's steal attempts must hit `WouldBlock`, count a
/// conflict, and re-enqueue the batch at its owner — and the batch must
/// still apply (exactly once) after the lock is released.
#[test]
fn lock_conflict_requeues_then_applies() {
    let fleet = Fleet::new(FleetConfig::with_workers(2).stealing(true));
    fleet.pause_worker(0);
    fleet.pause_worker(1); // nobody may grab the batch before the hold is in place
    let mut tenant = fleet.register_pinned(tiny_config(), Box::new(HashRouter::new(1)), realloc, 0);

    let ack = tenant.insert(ObjectId(9), 16);
    let hold = tenant.hold_core(0);
    fleet.resume_worker(1);

    let deadline = Instant::now() + Duration::from_secs(20);
    while fleet.steal_totals().steal_conflicts == 0 {
        assert!(
            Instant::now() < deadline,
            "thief never hit the held core lock"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // The batch must not have been applied through the held lock.
    assert_eq!(fleet.steal_totals().batches_stolen, 0);

    drop(hold);
    ack.wait(); // resolves only when the re-enqueued batch finally applies

    let totals = fleet.steal_totals();
    assert!(totals.steal_conflicts >= 1);
    assert_eq!(totals.batches_stolen, 1, "the batch applies exactly once");

    let stats = tenant.snapshot().expect("snapshot");
    assert_eq!(stats.live_count(), 1);
    assert_eq!(stats.live_volume(), 16);

    fleet.resume_worker(0);
    tenant.shutdown().expect("shutdown");
    fleet.shutdown();
}

/// A stolen-then-committed batch lands in exactly one shard's WAL: the
/// thief executes the owning core's state machine against the owning
/// core's log, so durability is oblivious to *where* a batch ran. One
/// shard's home worker stays paused (all of its batches steal), the
/// other serves natively; after a crash every acked allocation must
/// appear in exactly one log, and recovery — the ordinary sync-engine
/// recovery on the same directory — must rebuild the full live set.
#[test]
fn stolen_batches_commit_to_exactly_one_wal() {
    const OBJECTS: u64 = 40;
    let dir = temp_dir("xor");
    let fleet = Fleet::new(FleetConfig::with_workers(2).stealing(true));
    let config = EngineConfig {
        batch: 4,
        queue_depth: 4,
        ..EngineConfig::with_shards(2)
    }
    .with_substrate(SubstrateConfig::default());
    let mut tenant = fleet
        .register_with_wal(config, Box::new(HashRouter::new(2)), realloc, &dir)
        .expect("wal tenant");
    // Cores home round-robin, so shard 0 sits on worker 0: pausing it
    // forces every one of shard 0's batches through the thief.
    fleet.pause_worker(0);

    let mut expected = BTreeMap::new();
    for i in 0..OBJECTS {
        let size = 1 + (i * 7) % 48;
        drop(tenant.insert(ObjectId(i), size));
        expected.insert(ObjectId(i), size);
    }
    tenant.flush().wait(); // every batch applied ⇒ every record group-committed
    assert!(
        fleet.steal_totals().batches_stolen >= 1,
        "scenario must actually steal"
    );
    tenant.crash();

    // Exactly-once: each acked allocation is in precisely one log.
    let mut seen = BTreeMap::new();
    for shard in 0..2 {
        for group in read_wal(&wal_path(&dir, shard)).expect("read wal") {
            for record in group.records {
                if let WalRecord::Allocate { id, .. } = record {
                    assert!(
                        seen.insert(id, shard).is_none(),
                        "{id} journaled by two shards"
                    );
                }
            }
        }
    }
    assert_eq!(
        seen.keys().copied().collect::<Vec<_>>(),
        expected.keys().copied().collect::<Vec<_>>(),
        "every acked allocation must be journaled"
    );

    // The ordinary sync recovery rebuilds the stolen work.
    let (mut recovered, report) = Engine::recover(config, &dir, realloc).expect("recover");
    assert_eq!(report.objects, OBJECTS);
    assert_eq!(report.volume, expected.values().sum::<u64>());
    let live: BTreeMap<ObjectId, u64> = recovered
        .extents()
        .expect("extents")
        .iter()
        .flatten()
        .map(|&(id, e)| (id, e.len))
        .collect();
    assert_eq!(live, expected, "recovered live set diverged");
    recovered.shutdown().expect("shutdown");

    fleet.resume_worker(0);
    fleet.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
