//! Property-based durability tests: the §3 op streams replayed against the
//! strict substrate with crashes at arbitrary points, plus substrate
//! self-checks on randomly generated valid op streams.

use proptest::prelude::*;
use storage_realloc::prelude::*;

fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=400,
            1 => Just(0u64),
        ],
        1..180,
    )
}

fn materialize(ops: &[u64]) -> Vec<Request> {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The checkpointed reallocator's stream passes the strict rules and a
    /// crash after a random prefix of *ops* (not just requests) recovers
    /// every durably-mapped object.
    #[test]
    fn crash_at_any_op_boundary_is_recoverable(
        ops in op_sequence(),
        crash_at in 0usize..10_000,
    ) {
        let mut r = CheckpointedReallocator::new(0.25);
        let mut stream = Vec::new();
        for req in materialize(&ops) {
            let outcome = match req {
                Request::Insert { id, size } => r.insert(id, size).unwrap(),
                Request::Delete { id } => r.delete(id).unwrap(),
            };
            stream.extend(outcome.ops);
        }
        let cut = crash_at % (stream.len() + 1);
        let mut sim = SimStore::new(Mode::Strict);
        sim.apply_all(&stream[..cut]).unwrap();
        let report = sim.crash_and_recover();
        prop_assert!(
            report.is_durable(),
            "crash after op {cut}/{} lost {:?}",
            stream.len(),
            report.lost
        );
    }

    /// Same property for the deamortized structure, whose flushes span many
    /// requests.
    #[test]
    fn deamortized_crash_recovery(ops in op_sequence(), crash_at in 0usize..10_000) {
        let mut r = DeamortizedReallocator::new(0.25);
        let mut stream = Vec::new();
        for req in materialize(&ops) {
            let outcome = match req {
                Request::Insert { id, size } => r.insert(id, size).unwrap(),
                Request::Delete { id } => r.delete(id).unwrap(),
            };
            stream.extend(outcome.ops);
        }
        let cut = crash_at % (stream.len() + 1);
        let mut sim = SimStore::new(Mode::Strict);
        sim.apply_all(&stream[..cut]).unwrap();
        prop_assert!(sim.crash_and_recover().is_durable());
    }

    /// Substrate self-check: ghosts never overlap live spans, and the
    /// footprint never exceeds the peak physical end.
    #[test]
    fn substrate_span_accounting(ops in op_sequence()) {
        let mut r = CheckpointedReallocator::new(0.5);
        let mut sim = SimStore::new(Mode::Strict);
        for req in materialize(&ops) {
            let outcome = match req {
                Request::Insert { id, size } => r.insert(id, size).unwrap(),
                Request::Delete { id } => r.delete(id).unwrap(),
            };
            sim.apply_all(&outcome.ops).unwrap();
            let mut spans: Vec<Extent> = sim.live_spans().iter().map(|&(e, _)| e).collect();
            spans.extend(sim.ghost_spans().iter().map(|&(e, _, _)| e));
            spans.sort_by_key(|e| e.offset);
            for pair in spans.windows(2) {
                prop_assert!(!pair[0].overlaps(&pair[1]));
            }
            prop_assert!(sim.footprint() <= sim.peak_physical_end());
        }
        sim.verify_matches(|id| r.extent_of(id)).unwrap();
    }
}
