//! Byte integrity of the substrate-backed sharded engine.
//!
//! Since this PR each shard can own a real byte-carrying `DataStore` over
//! its own disjoint address window, so the strongest checks in the repo —
//! checksummed object bytes, non-overlapping placements, no lost writes —
//! run on the production-shaped path, not only in `run_workload`. Three
//! levels of assurance:
//!
//! * Property test: a substrate-backed table-routed engine under
//!   interleaved churn *while an online rebalance session drains* holds
//!   exactly the bytes an unsharded byte-carrying replay of the same
//!   request stream holds — object bytes (not just extents) compared at
//!   every quiesce, for all three paper variants.
//! * Fault injection: one flipped byte in one in-flight transfer payload
//!   must fail the receiving shard's ack
//!   (`ReallocError::CorruptTransfer`), abort the online session after
//!   pinning completed transfers, and leave every surviving object routed
//!   to the shard that physically owns it, bytes intact.
//! * The acceptance scenario: a skewed-churn storm repaired by an online
//!   rebalance under live traffic passes per-shard byte verification at
//!   every quiesce, and the ledgered migrate-out volume equals the cells
//!   the substrates actually copied across address spaces.

use proptest::prelude::*;
use storage_realloc::prelude::*;
use storage_realloc::workloads::churn::{skewed_churn_release, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

const VARIANTS: [&str; 3] = ["cost-oblivious", "checkpointed", "deamortized"];

fn build(variant: &str, eps: f64) -> Box<dyn Reallocator + Send> {
    match variant {
        "cost-oblivious" => Box::new(CostObliviousReallocator::new(eps)),
        "checkpointed" => Box::new(CheckpointedReallocator::new(eps)),
        "deamortized" => Box::new(DeamortizedReallocator::new(eps)),
        other => panic!("unknown variant {other}"),
    }
}

/// Compact request-sequence encoding shared with the other proptest
/// suites: positive numbers insert an object of that size, zero deletes
/// the oldest live object.
fn op_sequence() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 1u64..=600,
            1 => Just(0u64),
        ],
        1..200,
    )
}

fn materialize(ops: &[u64]) -> Workload {
    let mut requests = Vec::new();
    let mut live = std::collections::VecDeque::new();
    let mut next = 0u64;
    for &op in ops {
        if op == 0 {
            if let Some(id) = live.pop_front() {
                requests.push(Request::Delete { id });
            }
        } else {
            let id = ObjectId(next);
            next += 1;
            live.push_back(id);
            requests.push(Request::Insert { id, size: op });
        }
    }
    Workload::new("prop sequence", requests)
}

/// The unsharded truth, carried forward segment by segment: one
/// reallocator, one byte-carrying store, every outcome replayed.
struct Reference {
    realloc: Box<dyn Reallocator + Send>,
    data: DataStore,
}

impl Reference {
    fn new(variant: &str, eps: f64) -> Self {
        Reference {
            realloc: build(variant, eps),
            data: DataStore::new(Mode::Relaxed),
        }
    }

    fn serve(&mut self, requests: &[Request]) {
        for req in requests {
            let outcome = match *req {
                Request::Insert { id, size } => {
                    self.realloc.insert(id, size).expect("reference insert")
                }
                Request::Delete { id } => self.realloc.delete(id).expect("reference delete"),
            };
            self.data
                .apply_all(&outcome.ops)
                .expect("reference byte replay");
        }
    }

    fn quiesce(&mut self) {
        let outcome = self.realloc.quiesce();
        self.data
            .apply_all(&outcome.ops)
            .expect("reference drain replay");
    }
}

/// Compares the engine's full substrate contents against the unsharded
/// reference, byte for byte.
fn assert_same_bytes(
    engine: &mut Engine,
    reference: &Reference,
    context: &str,
) -> Result<(), TestCaseError> {
    let contents = engine.substrate_contents().expect("contents");
    let mut seen = 0usize;
    for list in &contents {
        for (id, bytes) in list {
            prop_assert_eq!(
                Some(&bytes[..]),
                reference.data.bytes_of(*id),
                "{}: {} bytes diverge from the unsharded replay",
                context,
                id
            );
            seen += 1;
        }
    }
    prop_assert_eq!(
        seen,
        reference.data.rules().live_count(),
        "{}: byte population diverges",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Churn interleaved with an online rebalance on a substrate-backed
    /// fleet keeps the engine byte-identical to an unsharded replay — the
    /// bytes are compared at *every* quiesce, each of which also runs the
    /// per-shard extent + checksum scan (the `Quiesce` cadence).
    #[test]
    fn substrate_engine_bytes_equal_unsharded_replay(
        ops in op_sequence(),
        eps in 0.1f64..=0.5,
        shards in 2usize..=4,
        batch_objects in 1usize..=8,
    ) {
        let start_segment = batch_objects % 3;
        let workload = materialize(&ops);

        for variant in VARIANTS {
            let mut engine = Engine::with_router(
                EngineConfig {
                    batch: 16,
                    queue_depth: 2,
                    ..EngineConfig::with_shards(shards)
                }
                .with_substrate(SubstrateConfig::default()),
                Box::new(TableRouter::new(shards)),
                |_| build(variant, eps),
            );
            let mut reference = Reference::new(variant, eps);

            let segments = 4;
            let chunk = workload.len().div_ceil(segments).max(1);
            for (i, seg) in workload.requests.chunks(chunk).enumerate() {
                engine.drive(&Workload::new("seg", seg.to_vec())).expect("drive");
                reference.serve(seg);
                if i == start_segment {
                    engine
                        .rebalance_online(RebalanceOptions::default().batched(batch_objects))
                        .expect("plan");
                }
                engine.rebalance_step().expect("step");
                // Every quiesce: per-shard extent + byte verification
                // (surfacing any substrate failure), then the cross-check
                // against the unsharded byte store.
                engine.quiesce().expect("quiesce");
                reference.quiesce();
                assert_same_bytes(&mut engine, &reference, variant)?;
            }
            while engine.rebalance_step().expect("step") {
                engine.quiesce().expect("quiesce");
                assert_same_bytes(&mut engine, &reference, variant)?;
            }
            engine.quiesce().expect("final quiesce");
            assert_same_bytes(&mut engine, &reference, variant)?;

            // Migration byte conservation: whatever left a window arrived
            // in another, verified.
            let stats = engine.snapshot().expect("snapshot");
            prop_assert_eq!(stats.bytes_migrated_out(), stats.bytes_migrated_in());
        }
    }
}

/// A single damaged transfer byte aborts the session with routing still
/// matching physical ownership — the fault-injection case.
#[test]
fn corrupted_transfer_byte_aborts_online_session_with_routing_consistent() {
    const SHARDS: usize = 4;
    for variant in VARIANTS {
        let mut engine = Engine::with_router(
            EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default()),
            Box::new(TableRouter::new(SHARDS)),
            |_| build(variant, 0.25),
        );
        // Skew everything onto shard 0 so the plan has real transfers.
        for i in 0..400u64 {
            engine.insert(ObjectId(i), 8).unwrap();
        }
        let doomed: Vec<ObjectId> = (0..400)
            .map(ObjectId)
            .filter(|&id| engine.shard_of(id) != 0)
            .collect();
        for id in doomed {
            engine.delete(id).unwrap();
        }
        let before = engine.quiesce().unwrap();
        assert!(before.imbalance_ratio() > 2.0, "{variant}: skew too weak");

        let plan = engine
            .rebalance_online(RebalanceOptions::default().batched(4))
            .unwrap();
        assert!(plan.batches > 2, "{variant}: trivial plan");

        // Let one batch land clean, then damage the next transfer.
        assert!(engine.rebalance_step().unwrap());
        engine.inject_transfer_corruption();
        let err = loop {
            match engine.rebalance_step() {
                Ok(true) => {}
                Ok(false) => panic!("{variant}: session survived a damaged transfer"),
                Err(err) => break err,
            }
        };
        assert!(
            matches!(
                err,
                EngineError::Request {
                    error: ReallocError::CorruptTransfer(_),
                    ..
                }
            ),
            "{variant}: expected a refused transfer, got {err:?}"
        );
        assert!(!engine.rebalance_active(), "{variant}: session must abort");
        assert!(engine.take_rebalance_report().is_none());

        // Exactly the damaged object is lost; everything else routes to
        // its physical owner with its bytes intact.
        let extents = engine.extents().unwrap();
        let mut survivors = 0usize;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(
                    engine.shard_of(id),
                    shard,
                    "{variant}: {id} routed to a stale shard"
                );
                survivors += 1;
            }
        }
        assert_eq!(survivors, before.live_count() - 1, "{variant}");
        for r in engine.verify_substrate().unwrap() {
            assert!(r.error.is_none(), "{variant}: {:?}", r.error);
        }
        // The refused transfer is a sticky request error, like any
        // rejection — and shutdown still reports it.
        assert!(matches!(
            engine.quiesce().unwrap_err(),
            EngineError::Request {
                error: ReallocError::CorruptTransfer(_),
                ..
            }
        ));
    }
}

/// The acceptance scenario: a skewed-churn storm + online rebalance on a
/// substrate-backed fleet passes per-shard byte verification at every
/// quiesce, and the ledgered migrate-out volume equals the cells the
/// substrates actually copied across address spaces.
#[test]
fn skewed_storm_online_rebalance_is_byte_verified_end_to_end() {
    const SHARDS: usize = 4;
    const EPS: f64 = 0.25;
    let config = ChurnConfig {
        dist: SizeDist::Uniform { lo: 1, hi: 64 },
        target_volume: 6_000,
        churn_ops: 6_000,
        seed: 20_140_623,
    };
    let probe = TableRouter::new(SHARDS);
    let workload = skewed_churn_release(&config, |id| probe.route(id) == 0, 3_000);
    let skew_requests = workload.len() - 3_000;

    for variant in VARIANTS {
        let mut engine = Engine::with_router(
            EngineConfig::with_shards(SHARDS).with_substrate(SubstrateConfig::default()),
            Box::new(TableRouter::new(SHARDS)),
            |_| build(variant, EPS),
        );
        engine
            .drive(&Workload::new(
                "skew",
                workload.requests[..skew_requests].to_vec(),
            ))
            .expect("drive skew phase");
        let before = engine.quiesce().expect("quiesce"); // byte-verified barrier
        assert!(before.imbalance_ratio() > 2.0, "{variant}: skew too weak");

        engine
            .rebalance_online(RebalanceOptions::default().batched(16))
            .expect("plan");
        // Serve the whole neutral phase while the session drains, with a
        // byte-verifying quiesce between chunks.
        for chunk in workload.requests[skew_requests..].chunks(1_024) {
            engine
                .drive(&Workload::new("neutral", chunk.to_vec()))
                .expect("drive neutral");
            engine.quiesce().expect("byte-verified quiesce");
        }
        while engine.rebalance_step().expect("step") {}
        let report = engine.take_rebalance_report().expect("report");
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "{variant}: imbalance {} after online rebalance",
            report.after.imbalance_ratio()
        );

        let stats = engine.quiesce().expect("quiesce");
        assert_eq!(stats.errors(), 0, "{variant}");

        // The ledger and the physical byte counters agree: every ledgered
        // MigrateOut cell was actually copied out of its source window,
        // and every copy arrived (checksummed) in another window.
        let finals = engine.shutdown().expect("shutdown");
        let ledger_out: u64 = finals
            .iter()
            .flat_map(|f| f.ledger.records())
            .filter(|r| r.kind == OpKind::MigrateOut)
            .map(|r| r.request_size)
            .sum();
        let ledger_in: u64 = finals
            .iter()
            .flat_map(|f| f.ledger.records())
            .filter(|r| r.kind == OpKind::MigrateIn)
            .map(|r| r.request_size)
            .sum();
        assert_eq!(
            ledger_out,
            stats.bytes_migrated_out(),
            "{variant}: ledgered migrate-out volume != cells physically copied out"
        );
        assert_eq!(
            ledger_in,
            stats.bytes_migrated_in(),
            "{variant}: ledgered migrate-in volume != cells physically adopted"
        );
        assert_eq!(ledger_out, ledger_in, "{variant}: a transfer went missing");
        assert!(ledger_out > 0, "{variant}: nothing migrated");
    }
}
