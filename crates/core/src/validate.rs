//! Runtime checks of the paper's structural invariants (Invariant 2.2 and
//! friends), used pervasively by tests and property tests.

use realloc_common::{Extent, ObjectId};

use crate::layout::{BufKind, Layout, Place};

/// A violated structural invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// Invariant 2.2(3): payload segment holds a foreign-class object.
    ForeignPayloadObject {
        /// The offending payload's region (= class) index.
        region: u32,
        /// The foreign object.
        id: ObjectId,
        /// The object's actual class.
        class: u32,
    },
    /// Invariant 2.2(4): buffer holds an object of a *larger* class.
    OversizedBufferObject {
        /// The offending buffer's region index.
        region: u32,
        /// The entry's (larger) class.
        class: u32,
    },
    /// An object lies (partly) outside its segment.
    OutOfSegment {
        /// The escaping object.
        id: ObjectId,
        /// Its placement.
        extent: Extent,
        /// The segment that should contain it.
        segment: Extent,
    },
    /// Two live extents overlap.
    Overlap {
        /// First object.
        a: ObjectId,
        /// Second object.
        b: ObjectId,
        /// The shared cells.
        at: Extent,
    },
    /// The index and the segments disagree about an object.
    IndexMismatch {
        /// The inconsistent object.
        id: ObjectId,
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// Cached volume/usage counters diverge from recomputed truth.
    BadAccounting {
        /// Human-readable description of the drift.
        detail: String,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::ForeignPayloadObject { region, id, class } => {
                write!(f, "payload {region} holds {id} of class {class}")
            }
            InvariantViolation::OversizedBufferObject { region, class } => {
                write!(f, "buffer {region} holds an entry of larger class {class}")
            }
            InvariantViolation::OutOfSegment {
                id,
                extent,
                segment,
            } => {
                write!(f, "{id} at {extent} escapes segment {segment}")
            }
            InvariantViolation::Overlap { a, b, at } => write!(f, "{a} overlaps {b} at {at}"),
            InvariantViolation::IndexMismatch { id, detail } => write!(f, "{id}: {detail}"),
            InvariantViolation::BadAccounting { detail } => write!(f, "accounting: {detail}"),
        }
    }
}

/// Checks every structural invariant of the layout:
///
/// * Invariant 2.2(3): payload segments only store their own size class;
/// * Invariant 2.2(4): buffer segments only store classes `<= theirs`;
/// * segment containment (objects inside their declared segments — callers
///   exempt variant-specific places like staging/log/tail, which have their
///   own geometry);
/// * global pairwise disjointness of live extents;
/// * index/segment agreement and cached-counter correctness.
pub fn check_invariants(layout: &Layout) -> Result<(), InvariantViolation> {
    let mut extents: Vec<(u64, u64, ObjectId)> = Vec::with_capacity(layout.index.len());

    // Segment-side walk.
    for (k, region) in layout.regions.iter().enumerate() {
        let k = k as u32;
        let start = layout.region_start(k);
        let payload_seg = Extent::new(start, region.payload_space);
        let buffer_seg = Extent::new(start + region.payload_space, region.buffer_space);

        let mut payload_live = 0;
        for (&offset, &(id, size)) in &region.payload {
            let ext = Extent::new(offset, size);
            let entry = layout
                .index
                .get(&id)
                .ok_or_else(|| InvariantViolation::IndexMismatch {
                    id,
                    detail: "in payload but not indexed".into(),
                })?;
            if entry.class != k {
                return Err(InvariantViolation::ForeignPayloadObject {
                    region: k,
                    id,
                    class: entry.class,
                });
            }
            if entry.place != Place::Payload || entry.offset != offset || entry.size != size {
                return Err(InvariantViolation::IndexMismatch {
                    id,
                    detail: format!("payload slot {ext} vs index {:?}", entry.place),
                });
            }
            if !payload_seg.contains(&ext) {
                return Err(InvariantViolation::OutOfSegment {
                    id,
                    extent: ext,
                    segment: payload_seg,
                });
            }
            payload_live += size;
            extents.push((offset, size, id));
        }
        if payload_live != region.payload_live {
            return Err(InvariantViolation::BadAccounting {
                detail: format!(
                    "region {k} payload_live {} != {payload_live}",
                    region.payload_live
                ),
            });
        }

        let mut buffer_used = 0;
        for entry in &region.buffer {
            if entry.class > k {
                return Err(InvariantViolation::OversizedBufferObject {
                    region: k,
                    class: entry.class,
                });
            }
            let ext = Extent::new(entry.offset, entry.size);
            if !buffer_seg.contains(&ext) {
                // The checkpointed trigger intentionally overflows the last
                // buffer momentarily, but never *between* requests — when
                // invariants are checked.
                return Err(InvariantViolation::OutOfSegment {
                    id: match entry.kind {
                        BufKind::Obj(id) => id,
                        BufKind::Tombstone => ObjectId(u64::MAX),
                    },
                    extent: ext,
                    segment: buffer_seg,
                });
            }
            buffer_used += entry.size;
            if let BufKind::Obj(id) = entry.kind {
                let idx =
                    layout
                        .index
                        .get(&id)
                        .ok_or_else(|| InvariantViolation::IndexMismatch {
                            id,
                            detail: "in buffer but not indexed".into(),
                        })?;
                if idx.place != Place::Buffer(k)
                    || idx.offset != entry.offset
                    || idx.size != entry.size
                {
                    return Err(InvariantViolation::IndexMismatch {
                        id,
                        detail: format!(
                            "buffer slot {ext} vs index {:?}@{}",
                            idx.place, idx.offset
                        ),
                    });
                }
                extents.push((entry.offset, entry.size, id));
            }
        }
        if buffer_used != region.buffer_used {
            return Err(InvariantViolation::BadAccounting {
                detail: format!(
                    "region {k} buffer_used {} != {buffer_used}",
                    region.buffer_used
                ),
            });
        }
    }

    // Index-side walk: objects in variant-specific places still need
    // disjointness; objects claiming payload/buffer must have been seen.
    let mut seen_in_segments = extents.len();
    for (&id, entry) in &layout.index {
        match entry.place {
            Place::Payload | Place::Buffer(_) => {}
            Place::Tail | Place::Staging | Place::Log => {
                extents.push((entry.offset, entry.size, id));
            }
        }
    }
    let segment_indexed = layout
        .index
        .values()
        .filter(|e| matches!(e.place, Place::Payload | Place::Buffer(_)))
        .count();
    if segment_indexed != std::mem::replace(&mut seen_in_segments, 0) {
        return Err(InvariantViolation::BadAccounting {
            detail: "index has payload/buffer objects the segments lack".into(),
        });
    }

    // Volume accounting: class_volume over non-pending objects.
    let mut recomputed = vec![0u64; layout.class_volume.len()];
    for entry in layout.index.values() {
        if !entry.pending_delete {
            recomputed[entry.class as usize] += entry.size;
        }
    }
    if recomputed != layout.class_volume {
        return Err(InvariantViolation::BadAccounting {
            detail: format!(
                "class_volume {:?} != recomputed {recomputed:?}",
                layout.class_volume
            ),
        });
    }
    if layout.volume != recomputed.iter().sum::<u64>() {
        return Err(InvariantViolation::BadAccounting {
            detail: "total volume drifted".into(),
        });
    }
    let pending_recomputed: u64 = layout
        .index
        .values()
        .filter(|e| e.pending_delete)
        .map(|e| e.size)
        .sum();
    if layout.pending_volume != pending_recomputed {
        return Err(InvariantViolation::BadAccounting {
            detail: format!(
                "pending_volume {} != recomputed {pending_recomputed}",
                layout.pending_volume
            ),
        });
    }

    // The incrementally tracked footprint cache must agree with a full
    // scan over the index (the cache may be pending a rescan, but what it
    // surfaces must be the true maximum).
    let scanned_footprint = layout
        .index
        .values()
        .map(|e| e.extent().end())
        .max()
        .unwrap_or(0);
    if layout.last_object_end() != scanned_footprint {
        return Err(InvariantViolation::BadAccounting {
            detail: format!(
                "footprint index drifted: cached {} vs scanned {scanned_footprint}",
                layout.last_object_end()
            ),
        });
    }

    // Pairwise disjointness via sort-and-adjacent-check.
    extents.sort_unstable();
    for pair in extents.windows(2) {
        let (ao, al, aid) = pair[0];
        let (bo, _bl, bid) = pair[1];
        if ao + al > bo {
            return Err(InvariantViolation::Overlap {
                a: aid,
                b: bid,
                at: Extent::new(bo, ao + al - bo),
            });
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Eps, Layout};

    fn base_layout() -> Layout {
        let mut l = Layout::new(Eps::new(0.3));
        l.ensure_class(2);
        l.regions[2].payload_space = 12;
        l.regions[2].buffer_space = 1;
        l
    }

    #[test]
    fn empty_layout_is_valid() {
        let l = Layout::new(Eps::new(0.3));
        assert!(check_invariants(&l).is_ok());
    }

    #[test]
    fn wellformed_layout_passes() {
        let mut l = base_layout();
        let k = l.account_insert(5);
        assert_eq!(k, 2);
        l.attach_payload(ObjectId(1), 5, 2, 0);
        let k2 = l.account_insert(6);
        l.attach_payload(ObjectId(2), 6, k2, 5);
        assert!(check_invariants(&l).is_ok());
    }

    #[test]
    fn detects_overlap() {
        let mut l = base_layout();
        l.account_insert(5);
        l.attach_payload(ObjectId(1), 5, 2, 0);
        l.account_insert(5);
        l.attach_payload(ObjectId(2), 5, 2, 3);
        assert!(matches!(
            check_invariants(&l),
            Err(InvariantViolation::Overlap { .. })
        ));
    }

    #[test]
    fn detects_foreign_payload_object() {
        let mut l = base_layout();
        l.account_insert(2); // class 1
                             // Wrongly stuffed into payload 2.
        l.regions[2].payload.insert(0, (ObjectId(1), 2));
        l.regions[2].payload_live = 2;
        l.index.insert(
            ObjectId(1),
            crate::layout::Entry {
                size: 2,
                class: 1,
                offset: 0,
                place: Place::Payload,
                pending_delete: false,
            },
        );
        assert!(matches!(
            check_invariants(&l),
            Err(InvariantViolation::ForeignPayloadObject { .. })
        ));
    }

    #[test]
    fn detects_escape_from_segment() {
        let mut l = base_layout();
        l.account_insert(5);
        // Payload space is 12 at [0,12); placing at 10 escapes.
        l.attach_payload(ObjectId(1), 5, 2, 10);
        assert!(matches!(
            check_invariants(&l),
            Err(InvariantViolation::OutOfSegment { .. })
        ));
    }

    #[test]
    fn detects_volume_drift() {
        let mut l = base_layout();
        l.account_insert(5);
        l.attach_payload(ObjectId(1), 5, 2, 0);
        l.class_volume[2] = 99;
        assert!(matches!(
            check_invariants(&l),
            Err(InvariantViolation::BadAccounting { .. })
        ));
    }

    #[test]
    fn detects_oversized_buffer_entry() {
        let mut l = base_layout();
        l.regions[1].buffer_space = 16;
        // Class-2 entry in buffer 1 violates Invariant 2.2(4).
        l.account_insert(5);
        let off = l.push_buffer_entry(1, 5, 2, crate::layout::BufKind::Obj(ObjectId(1)));
        l.attach_buffered(ObjectId(1), 5, 2, 1, off);
        assert!(matches!(
            check_invariants(&l),
            Err(InvariantViolation::OversizedBufferObject { .. })
        ));
    }

    #[test]
    fn buffered_object_wellformed() {
        let mut l = base_layout();
        let k = l.account_insert(2);
        assert_eq!(k, 1);
        l.regions[2].buffer_space = 4;
        let off = l.push_buffer_entry(2, 2, 1, crate::layout::BufKind::Obj(ObjectId(3)));
        l.attach_buffered(ObjectId(3), 2, 1, 2, off);
        assert!(check_invariants(&l).is_ok());
    }
}
