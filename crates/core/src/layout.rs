//! The size-class region layout shared by all three reallocator variants
//! (paper Figure 2 and Invariant 2.2).
//!
//! The address space is a sequence of *regions*, one per size class in
//! increasing class order, each comprising a *payload segment* followed by a
//! *buffer segment*. Regions for classes that have never held an object have
//! zero space. All offsets stored here are absolute addresses.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

use realloc_common::{size_class, Extent, ObjectId};

/// The tunable `ε` of Theorem 2.1, with the paper's internal `ε′ = Θ(ε)`
/// fixed to `ε/3`.
///
/// `ε′ = ε/3` makes the steady-state bound exact: the structure holds at
/// most `(1+ε′)·Σ V_{f_i}(i)` space over at least `(1−ε′)·Σ V_{f_i}(i)`
/// live volume (Lemma 2.5), and `(1+ε/3)/(1−ε/3) ≤ 1+ε` for all `ε ≤ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eps {
    eps: f64,
    prime: f64,
    pump_factor: f64,
}

impl Eps {
    /// Creates the parameter; the paper requires `0 < ε ≤ 1/2`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps > 0.0 && eps <= 0.5,
            "the paper requires 0 < ε ≤ 1/2, got {eps}"
        );
        Eps {
            eps,
            prime: eps / 3.0,
            pump_factor: 4.0,
        }
    }

    /// Ablation constructor: overrides the internal buffer fraction `ε′`
    /// (default `ε/3`) and the deamortized pump factor (default 4). Values
    /// of `ε′` above `ε/3` trade footprint for fewer/cheaper flushes; the
    /// `(1+ε)` footprint guarantee only holds for `ε′ ≤ ε/(2+ε)`.
    pub fn custom(eps: f64, prime: f64, pump_factor: f64) -> Self {
        assert!(
            eps > 0.0 && eps <= 0.5,
            "the paper requires 0 < ε ≤ 1/2, got {eps}"
        );
        assert!(prime > 0.0 && prime < 1.0, "ε′ must be in (0, 1)");
        assert!(pump_factor >= 1.0, "pump factor must be ≥ 1");
        Eps {
            eps,
            prime,
            pump_factor,
        }
    }

    /// The footprint slack `ε`.
    pub fn value(&self) -> f64 {
        self.eps
    }

    /// The internal `ε′` (default `ε/3`).
    pub fn prime(&self) -> f64 {
        self.prime
    }

    /// Buffer segment size for a payload of volume `v`: `⌊ε′·v⌋`
    /// (Invariant 2.4).
    pub fn buffer_quota(&self, v: u64) -> u64 {
        (self.prime * v as f64).floor() as u64
    }

    /// The deamortized structure's per-update work quota: `⌈(4/ε′)·w⌉`
    /// cells of flush progress per size-`w` update (Section 3.3).
    pub fn pump_quota(&self, w: u64) -> u64 {
        ((self.pump_factor / self.prime) * w as f64).ceil() as u64
    }
}

/// What occupies a slice of a buffer segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufKind {
    /// A live object.
    Obj(ObjectId),
    /// A dummy delete record: space charged for a recent delete
    /// (Section 2, "allocating and deallocating").
    Tombstone,
}

/// One entry in a buffer segment. Entries are kept in offset order and are
/// never reordered between flushes.
#[derive(Debug, Clone, Copy)]
pub struct BufEntry {
    /// Absolute address of the entry's space.
    pub offset: u64,
    /// Cells consumed (object size, or deleted object's size for a
    /// tombstone).
    pub size: u64,
    /// Size class of the (possibly deleted) object — what the boundary-class
    /// scan inspects.
    pub class: u32,
    /// Live object or dummy delete record.
    pub kind: BufKind,
}

/// One region: the payload + buffer pair dedicated to a size class.
#[derive(Debug, Clone, Default)]
pub struct Region {
    /// Reserved payload space. Equals `V_t(class)` as of this region's last
    /// flush (Invariant 2.4).
    pub payload_space: u64,
    /// Reserved buffer space, `⌊ε′·payload_space⌋` as of the last flush.
    pub buffer_space: u64,
    /// Live payload objects keyed by absolute offset.
    pub payload: BTreeMap<u64, (ObjectId, u64)>,
    /// Live volume currently in the payload (holes excluded).
    pub payload_live: u64,
    /// Buffer entries in offset order (objects and tombstones).
    pub buffer: Vec<BufEntry>,
    /// Space consumed in the buffer, tombstones included.
    pub buffer_used: u64,
}

impl Region {
    /// Total region width.
    pub fn space(&self) -> u64 {
        self.payload_space + self.buffer_space
    }

    /// Free space remaining in the buffer segment.
    pub fn buffer_free(&self) -> u64 {
        self.buffer_space - self.buffer_used
    }
}

/// Where an object currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Place {
    /// In its class's payload segment.
    Payload,
    /// In the buffer segment of region `.0` (≥ the object's class).
    Buffer(u32),
    /// In the deamortized structure's tail buffer.
    Tail,
    /// Parked in the overflow/staging segment mid-flush.
    Staging,
    /// Written into the deamortized structure's log.
    Log,
}

/// Index entry for a live object.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Object length in cells.
    pub size: u64,
    /// The object's size class.
    pub class: u32,
    /// Absolute address of its first cell.
    pub offset: u64,
    /// Which segment currently holds it.
    pub place: Place,
    /// Deamortized structure only: delete requested but not yet drained
    /// from the log; the object is still *active* (occupies space).
    pub pending_delete: bool,
}

impl Entry {
    /// The object's current placement as an extent.
    pub fn extent(&self) -> Extent {
        Extent::new(self.offset, self.size)
    }
}

/// Read-only view of one region, for rendering and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionView {
    /// The region's size class.
    pub class: u32,
    /// Absolute start address.
    pub start: u64,
    /// Reserved payload space.
    pub payload_space: u64,
    /// Reserved buffer space.
    pub buffer_space: u64,
    /// Live volume in the payload (holes excluded).
    pub payload_live: u64,
    /// Space consumed in the buffer (tombstones included).
    pub buffer_used: u64,
    /// Number of live payload objects.
    pub payload_objects: usize,
    /// Number of buffer entries (objects + tombstones).
    pub buffer_entries: usize,
}

/// One-call snapshot of a layout's volume accounting — the quantities every
/// space lemma speaks in, each read from incrementally maintained state
/// (no scans). The serving layer's rebalancer and per-shard replay tooling
/// read this instead of poking at individual accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeSummary {
    /// Live volume `V` (active objects, pending deletes included).
    pub live: u64,
    /// Volume excluding pending deletes (drives flush sizing).
    pub settled: u64,
    /// Volume of objects whose delete is logged but not yet drained.
    pub pending: u64,
    /// Number of active objects.
    pub objects: usize,
    /// `∆`: the largest object size ever inserted.
    pub delta: u64,
    /// One past the last object — the paper's footprint.
    pub footprint: u64,
}

/// The region layout plus the object index — everything Invariant 2.2
/// constrains.
#[derive(Debug, Clone)]
pub struct Layout {
    pub(crate) eps: Eps,
    pub(crate) regions: Vec<Region>,
    pub(crate) index: HashMap<ObjectId, Entry>,
    /// `V_t(class)`: live volume per class (pending deletes excluded —
    /// this drives flush sizing, which drops deleted objects).
    pub(crate) class_volume: Vec<u64>,
    /// Σ class_volume.
    pub(crate) volume: u64,
    /// Σ size over pending-delete entries, maintained incrementally so
    /// `live_volume` is O(1) — the serving layer and every ledgered driver
    /// query it once per request, and a scan over the index there turns
    /// each request into O(live objects).
    pub(crate) pending_volume: u64,
    /// `∆`: largest object size ever inserted.
    pub(crate) delta: u64,
    /// Cached `max over the index of extent end` — the paper's footprint —
    /// maintained incrementally (like `pending_volume` is for
    /// `live_volume`) so `last_object_end` reads are O(1) instead of a
    /// scan over live objects. Writes that can only *raise* the max update
    /// the cache in place; a write that removes or lowers the
    /// frontier-defining entry flips `footprint_dirty` instead, and the
    /// next read rescans once. Eager ordered structures (a `BTreeSet` of
    /// ends, then a lazy max-heap) were tried first and measurably
    /// throttled the serve path — every flush reindexes its whole suffix,
    /// so per-write cost is what matters. Cross-checked by `validate`.
    pub(crate) footprint_cache: Cell<u64>,
    /// Whether `footprint_cache` may overstate the footprint (the entry
    /// that defined it was removed or moved down) and the next read must
    /// rescan.
    pub(crate) footprint_dirty: Cell<bool>,
}

impl Layout {
    /// An empty layout with the given parameter.
    pub fn new(eps: Eps) -> Self {
        Layout {
            eps,
            regions: Vec::new(),
            index: HashMap::new(),
            class_volume: Vec::new(),
            volume: 0,
            pending_volume: 0,
            delta: 0,
            footprint_cache: Cell::new(0),
            footprint_dirty: Cell::new(false),
        }
    }

    /// The footprint parameter.
    pub fn eps(&self) -> Eps {
        self.eps
    }

    /// Number of size classes with allocated regions (some may be empty).
    pub fn class_count(&self) -> usize {
        self.regions.len()
    }

    /// Absolute start of region `k` (prefix sum of earlier regions).
    pub fn region_start(&self, k: u32) -> u64 {
        self.regions[..k as usize].iter().map(Region::space).sum()
    }

    /// Absolute start of region `k`'s buffer segment.
    pub fn buffer_start(&self, k: u32) -> u64 {
        self.region_start(k) + self.regions[k as usize].payload_space
    }

    /// End of the last region — the structure size of the §2 algorithm.
    pub fn regions_end(&self) -> u64 {
        self.regions.iter().map(Region::space).sum()
    }

    /// End of the last *object* (the paper's footprint; `<= regions_end()`
    /// except for transient mid-flush placements). O(1) on the vast
    /// majority of calls: the max is tracked incrementally by every index
    /// write (see `footprint_cache`); only a call following the removal —
    /// or downward move — of the frontier-defining object rescans, so
    /// per-request callers no longer pay O(live objects) per query.
    pub fn last_object_end(&self) -> u64 {
        if self.footprint_dirty.get() {
            let max = self
                .index
                .values()
                .map(|e| e.extent().end())
                .max()
                .unwrap_or(0);
            self.footprint_cache.set(max);
            self.footprint_dirty.set(false);
        }
        self.footprint_cache.get()
    }

    /// Folds one index write into the footprint cache: `old_end` is the
    /// entry's previous extent end (`None` for a fresh entry). O(1).
    fn note_end_write(&self, old_end: Option<u64>, new_end: u64) {
        if let Some(old) = old_end {
            // Shrinking the frontier entry invalidates the cached max
            // (>= rather than ==: transient mid-flush placements may alias
            // the frontier address, and a stale `dirty` only costs a scan).
            if old > new_end && old >= self.footprint_cache.get() {
                self.footprint_dirty.set(true);
                return;
            }
        }
        if new_end > self.footprint_cache.get() {
            self.footprint_cache.set(new_end);
        }
    }

    /// Folds one index removal into the footprint cache. O(1).
    fn note_end_removal(&self, end: u64) {
        if end >= self.footprint_cache.get() {
            self.footprint_dirty.set(true);
        }
    }

    /// Live volume (active objects, pending deletes included). O(1): the
    /// pending share is tracked incrementally, not recomputed by scanning.
    pub fn live_volume(&self) -> u64 {
        self.volume + self.pending_volume
    }

    /// Volume excluding pending deletes (drives flush sizing).
    pub fn settled_volume(&self) -> u64 {
        self.volume
    }

    /// `∆`: the largest object size ever inserted.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Number of active objects.
    pub fn live_count(&self) -> usize {
        self.index.len()
    }

    /// Current placement of an active object.
    pub fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.index.get(&id).map(Entry::extent)
    }

    /// Snapshot of the volume accounting (see [`VolumeSummary`]).
    pub fn volume_summary(&self) -> VolumeSummary {
        VolumeSummary {
            live: self.live_volume(),
            settled: self.settled_volume(),
            pending: self.pending_volume,
            objects: self.live_count(),
            delta: self.delta(),
            footprint: self.last_object_end(),
        }
    }

    /// Read-only region views in class order.
    pub fn region_views(&self) -> Vec<RegionView> {
        let mut start = 0;
        self.regions
            .iter()
            .enumerate()
            .map(|(k, r)| {
                let view = RegionView {
                    class: k as u32,
                    start,
                    payload_space: r.payload_space,
                    buffer_space: r.buffer_space,
                    payload_live: r.payload_live,
                    buffer_used: r.buffer_used,
                    payload_objects: r.payload.len(),
                    buffer_entries: r.buffer.len(),
                };
                start += r.space();
                view
            })
            .collect()
    }

    /// Ensures regions `0..=k` exist (new ones zero-sized).
    pub(crate) fn ensure_class(&mut self, k: u32) {
        let need = k as usize + 1;
        if self.regions.len() < need {
            self.regions.resize_with(need, Region::default);
            self.class_volume.resize(need, 0);
        }
    }

    /// Registers a new object's volume (call before placement decisions so
    /// flush sizing sees it, per §2: "Vt(i) immediately increases to count
    /// the new object").
    pub(crate) fn account_insert(&mut self, size: u64) -> u32 {
        let k = size_class(size);
        self.ensure_class(k);
        self.class_volume[k as usize] += size;
        self.volume += size;
        self.delta = self.delta.max(size);
        k
    }

    /// Unregisters a (non-pending) object's volume.
    pub(crate) fn account_delete(&mut self, size: u64, class: u32) {
        self.class_volume[class as usize] -= size;
        self.volume -= size;
    }

    /// Earliest region `j >= class` whose buffer can absorb `size` more
    /// cells (insert/dummy placement rule of §2).
    pub(crate) fn find_buffer(&self, class: u32, size: u64) -> Option<u32> {
        (class..self.regions.len() as u32).find(|&j| self.regions[j as usize].buffer_free() >= size)
    }

    /// Appends an entry to region `j`'s buffer, returning its offset.
    /// Callers must have verified the space via [`Self::find_buffer`], except
    /// for the checkpointed trigger placement which intentionally overflows.
    pub(crate) fn push_buffer_entry(
        &mut self,
        j: u32,
        size: u64,
        class: u32,
        kind: BufKind,
    ) -> u64 {
        let offset = self.buffer_start(j) + self.regions[j as usize].buffer_used;
        let region = &mut self.regions[j as usize];
        region.buffer.push(BufEntry {
            offset,
            size,
            class,
            kind,
        });
        region.buffer_used += size;
        offset
    }

    /// The boundary size class `b` for a flush triggered by an object of
    /// class `trigger_class` (§2): the largest `b` such that every object
    /// (and tombstone) in buffers `>= b`, plus the trigger, has class
    /// `>= b`. Scans regions from largest to smallest.
    pub(crate) fn boundary_class(&self, trigger_class: u32) -> u32 {
        let mut min_seen = trigger_class;
        for j in (0..self.regions.len() as u32).rev() {
            for entry in &self.regions[j as usize].buffer {
                min_seen = min_seen.min(entry.class);
            }
            if j <= min_seen {
                return j;
            }
        }
        0
    }

    /// Live buffered objects in buffers of regions `>= b`, in (region,
    /// offset) order: the inputs to a flush's step 1.
    pub(crate) fn buffered_objects_with_offsets(&self, b: u32) -> Vec<crate::plan::FlushObj> {
        let mut out = Vec::new();
        for j in b..self.regions.len() as u32 {
            for entry in &self.regions[j as usize].buffer {
                if let BufKind::Obj(id) = entry.kind {
                    out.push(crate::plan::FlushObj {
                        id,
                        size: entry.size,
                        class: entry.class,
                        offset: entry.offset,
                    });
                }
            }
        }
        out
    }

    /// Payload survivors of classes `>= b` in (class, offset) order: the
    /// inputs to a flush's compaction steps.
    pub(crate) fn survivors_from(&self, b: u32) -> Vec<(ObjectId, u64, u32, u64)> {
        let mut out = Vec::new();
        for k in b..self.regions.len() as u32 {
            for (&offset, &(id, size)) in &self.regions[k as usize].payload {
                out.push((id, size, k, offset));
            }
        }
        out
    }

    /// Removes an object from whichever segment holds it, leaving a hole
    /// (payload) or a tombstone (buffer/tail). Returns its former entry.
    /// Does not touch volume accounting.
    pub(crate) fn detach_object(&mut self, id: ObjectId) -> Option<Entry> {
        let entry = self.remove_entry(id)?;
        match entry.place {
            Place::Payload => {
                let region = &mut self.regions[entry.class as usize];
                let removed = region.payload.remove(&entry.offset);
                debug_assert!(matches!(removed, Some((rid, _)) if rid == id));
                region.payload_live -= entry.size;
            }
            Place::Buffer(j) => {
                let region = &mut self.regions[j as usize];
                let slot = region
                    .buffer
                    .iter_mut()
                    .find(|e| e.offset == entry.offset)
                    .expect("buffer entry present for indexed object");
                debug_assert_eq!(slot.kind, BufKind::Obj(id));
                // The object's own space becomes its dummy delete record.
                slot.kind = BufKind::Tombstone;
            }
            Place::Tail | Place::Staging | Place::Log => {
                // Variant-specific segments are managed by their owners.
            }
        }
        Some(entry)
    }

    /// Inserts (or replaces) an index entry, keeping `pending_volume` and
    /// the footprint cache exact: counts the new entry if marked pending
    /// and uncounts any replaced one. Every index write goes through here
    /// or [`Self::remove_entry`] / [`Self::relocate_entry`] /
    /// [`Self::mark_pending_delete`].
    pub(crate) fn insert_entry(&mut self, id: ObjectId, entry: Entry) {
        if entry.pending_delete {
            self.pending_volume += entry.size;
        }
        let end = entry.extent().end();
        let old_end = self.index.insert(id, entry).map(|old| {
            if old.pending_delete {
                self.pending_volume -= old.size;
            }
            old.extent().end()
        });
        self.note_end_write(old_end, end);
    }

    /// Removes an object from the index only (no segment bookkeeping —
    /// callers managing variant-specific segments use this; everything else
    /// goes through [`Self::detach_object`]). Keeps `pending_volume` and
    /// the footprint cache exact. Returns the former entry.
    pub(crate) fn remove_entry(&mut self, id: ObjectId) -> Option<Entry> {
        let entry = self.index.remove(&id)?;
        if entry.pending_delete {
            self.pending_volume -= entry.size;
        }
        self.note_end_removal(entry.extent().end());
        Some(entry)
    }

    /// Moves an indexed object to `offset` in segment `place` without
    /// touching volume accounting (the incremental mid-flush executor's
    /// per-move index update).
    ///
    /// # Panics
    /// Panics if `id` is not indexed.
    pub(crate) fn relocate_entry(&mut self, id: ObjectId, offset: u64, place: Place) {
        let entry = self.index.get_mut(&id).expect("relocated object is active");
        let old_end = entry.extent().end();
        entry.offset = offset;
        entry.place = place;
        let new_end = entry.extent().end();
        self.note_end_write(Some(old_end), new_end);
    }

    /// Marks an active object pending-delete (deamortized log semantics:
    /// it keeps occupying space and counting as live until drained).
    /// Idempotent; a no-op for unknown ids.
    pub(crate) fn mark_pending_delete(&mut self, id: ObjectId) {
        if let Some(entry) = self.index.get_mut(&id) {
            if !entry.pending_delete {
                entry.pending_delete = true;
                self.pending_volume += entry.size;
            }
        }
    }

    /// Places an object into its class's payload at `offset` and indexes it.
    pub(crate) fn attach_payload(&mut self, id: ObjectId, size: u64, class: u32, offset: u64) {
        let region = &mut self.regions[class as usize];
        region.payload.insert(offset, (id, size));
        region.payload_live += size;
        self.insert_entry(
            id,
            Entry {
                size,
                class,
                offset,
                place: Place::Payload,
                pending_delete: false,
            },
        );
    }

    /// Indexes an object sitting in region `j`'s buffer at `offset` (the
    /// buffer entry itself must already exist via `push_buffer_entry`).
    pub(crate) fn attach_buffered(
        &mut self,
        id: ObjectId,
        size: u64,
        class: u32,
        j: u32,
        offset: u64,
    ) {
        self.insert_entry(
            id,
            Entry {
                size,
                class,
                offset,
                place: Place::Buffer(j),
                pending_delete: false,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps() -> Eps {
        Eps::new(0.3)
    }

    #[test]
    fn eps_prime_is_a_third() {
        let e = Eps::new(0.3);
        assert!((e.prime() - 0.1).abs() < 1e-12);
        assert_eq!(e.buffer_quota(100), 10);
        assert_eq!(e.buffer_quota(9), 0); // floor
    }

    #[test]
    fn eps_steady_state_bound_holds_for_all_valid_eps() {
        // (1+ε′)/(1−ε′) ≤ 1+ε for ε′=ε/3 — the Lemma 2.5 constant.
        for i in 1..=50 {
            let eps = i as f64 / 100.0;
            let e = Eps::new(eps);
            let p = e.prime();
            assert!((1.0 + p) / (1.0 - p) <= 1.0 + eps + 1e-12, "ε={eps}");
        }
    }

    #[test]
    #[should_panic(expected = "0 < ε ≤ 1/2")]
    fn eps_rejects_out_of_range() {
        Eps::new(0.6);
    }

    #[test]
    fn pump_quota_matches_four_over_eps_prime() {
        let e = Eps::new(0.3); // ε′ = 0.1 → 40 cells per unit
        assert_eq!(e.pump_quota(1), 40);
        assert_eq!(e.pump_quota(10), 400);
    }

    #[test]
    fn eps_custom_overrides_prime_and_pump() {
        let e = Eps::custom(0.5, 0.25, 8.0);
        assert_eq!(e.value(), 0.5);
        assert_eq!(e.prime(), 0.25);
        assert_eq!(e.buffer_quota(100), 25);
        assert_eq!(e.pump_quota(10), 320); // (8/0.25)·10
    }

    #[test]
    #[should_panic(expected = "ε′ must be in (0, 1)")]
    fn eps_custom_rejects_bad_prime() {
        Eps::custom(0.5, 1.5, 4.0);
    }

    #[test]
    #[should_panic(expected = "pump factor")]
    fn eps_custom_rejects_bad_pump() {
        Eps::custom(0.5, 0.1, 0.5);
    }

    #[test]
    fn ensure_class_grows_regions() {
        let mut l = Layout::new(eps());
        l.ensure_class(3);
        assert_eq!(l.class_count(), 4);
        assert_eq!(l.regions_end(), 0); // all zero-sized
    }

    #[test]
    fn region_geometry_prefix_sums() {
        let mut l = Layout::new(eps());
        l.ensure_class(2);
        l.regions[0].payload_space = 10;
        l.regions[0].buffer_space = 1;
        l.regions[1].payload_space = 20;
        l.regions[1].buffer_space = 2;
        l.regions[2].payload_space = 40;
        l.regions[2].buffer_space = 4;
        assert_eq!(l.region_start(0), 0);
        assert_eq!(l.region_start(1), 11);
        assert_eq!(l.region_start(2), 33);
        assert_eq!(l.buffer_start(2), 73);
        assert_eq!(l.regions_end(), 77);
    }

    #[test]
    fn account_insert_tracks_class_volume_and_delta() {
        let mut l = Layout::new(eps());
        assert_eq!(l.account_insert(5), 2);
        assert_eq!(l.account_insert(1), 0);
        assert_eq!(l.class_volume[2], 5);
        assert_eq!(l.class_volume[0], 1);
        assert_eq!(l.settled_volume(), 6);
        assert_eq!(l.delta(), 5);
        l.account_delete(5, 2);
        assert_eq!(l.settled_volume(), 1);
        assert_eq!(l.delta(), 5, "∆ never decreases");
    }

    #[test]
    fn find_buffer_picks_earliest_feasible() {
        let mut l = Layout::new(eps());
        l.ensure_class(3);
        l.regions[1].buffer_space = 4;
        l.regions[2].buffer_space = 10;
        l.regions[3].buffer_space = 10;
        // Object of class 1 and size 6: buffer 1 too small, buffer 2 fits.
        assert_eq!(l.find_buffer(1, 6), Some(2));
        // Class 3 object may only use buffer 3.
        assert_eq!(l.find_buffer(3, 6), Some(3));
        // Nothing fits a size-11 request.
        assert_eq!(l.find_buffer(0, 11), None);
    }

    #[test]
    fn boundary_class_scan() {
        let mut l = Layout::new(eps());
        l.ensure_class(4);
        for k in 0..=4u32 {
            l.regions[k as usize].payload_space = 16 << k;
            l.regions[k as usize].buffer_space = 8;
        }
        // Empty buffers: boundary is the trigger's class.
        assert_eq!(l.boundary_class(3), 3);
        // A class-1 object parked in buffer 3 drags the boundary for a
        // class-3 trigger down to 1 — but a class-4 trigger stops at 4,
        // because buffer 4 is clean and b is chosen *maximal*.
        l.push_buffer_entry(3, 2, 1, BufKind::Obj(ObjectId(9)));
        assert_eq!(l.boundary_class(4), 4);
        assert_eq!(l.boundary_class(3), 1);
        // ...but a class-2 trigger cannot stop above it either: b must
        // satisfy "all buffered objects in buffers >= b have class >= b".
        assert_eq!(l.boundary_class(2), 1);
        // A trigger of class 0 pins the boundary to 0.
        assert_eq!(l.boundary_class(0), 0);
    }

    #[test]
    fn boundary_class_ignores_buffers_below_stop() {
        let mut l = Layout::new(eps());
        l.ensure_class(4);
        for k in 0..=4u32 {
            l.regions[k as usize].buffer_space = 8;
        }
        // A class-0 object in buffer 1 does not affect a flush whose suffix
        // starts above it: boundary for a class-3 trigger is 3 because
        // buffers 3 and 4 are clean.
        l.push_buffer_entry(1, 1, 0, BufKind::Obj(ObjectId(5)));
        assert_eq!(l.boundary_class(3), 3);
    }

    #[test]
    fn tombstones_participate_in_boundary() {
        let mut l = Layout::new(eps());
        l.ensure_class(3);
        for k in 0..=3u32 {
            l.regions[k as usize].buffer_space = 8;
        }
        // A tombstone for a deleted class-0 object in buffer 2: a class-3
        // trigger stops at 3 (buffer 3 clean), but a class-2 trigger must
        // include the tombstone's class.
        l.push_buffer_entry(2, 1, 0, BufKind::Tombstone);
        assert_eq!(l.boundary_class(3), 3);
        assert_eq!(l.boundary_class(2), 0);
    }

    #[test]
    fn detach_payload_leaves_hole() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(6);
        l.ensure_class(k);
        l.regions[k as usize].payload_space = 6;
        l.attach_payload(ObjectId(1), 6, k, 0);
        assert_eq!(l.extent_of(ObjectId(1)), Some(Extent::new(0, 6)));
        let entry = l.detach_object(ObjectId(1)).unwrap();
        assert_eq!(entry.size, 6);
        assert_eq!(l.regions[k as usize].payload_live, 0);
        assert_eq!(
            l.regions[k as usize].payload_space, 6,
            "hole: space unchanged"
        );
        assert_eq!(l.extent_of(ObjectId(1)), None);
    }

    #[test]
    fn detach_buffered_becomes_tombstone() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(3);
        l.regions[k as usize].buffer_space = 8;
        let off = l.push_buffer_entry(k, 3, k, BufKind::Obj(ObjectId(7)));
        l.attach_buffered(ObjectId(7), 3, k, k, off);
        l.detach_object(ObjectId(7)).unwrap();
        let region = &l.regions[k as usize];
        assert_eq!(region.buffer.len(), 1);
        assert_eq!(region.buffer[0].kind, BufKind::Tombstone);
        assert_eq!(region.buffer_used, 3, "tombstone still consumes space");
    }

    /// Recomputes the footprint the old O(n) way — the oracle for the
    /// incrementally tracked cache.
    fn scanned_footprint(l: &Layout) -> u64 {
        l.index
            .values()
            .map(|e| e.extent().end())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn last_object_end_tracks_index_writes_incrementally() {
        let mut l = Layout::new(eps());
        assert_eq!(l.last_object_end(), 0);
        let k = l.account_insert(6);
        l.regions[k as usize].payload_space = 40;
        l.attach_payload(ObjectId(1), 6, k, 0);
        let k2 = l.account_insert(4);
        assert_eq!(k2, k);
        l.attach_payload(ObjectId(2), 4, k, 20);
        assert_eq!(l.last_object_end(), 24);
        assert_eq!(l.last_object_end(), scanned_footprint(&l));

        // Relocation moves the max.
        l.relocate_entry(ObjectId(1), 30, Place::Payload);
        assert_eq!(l.last_object_end(), 36);
        assert_eq!(l.last_object_end(), scanned_footprint(&l));

        // Removing the last object reveals the runner-up (removal dirties
        // the cache; the next read rescans).
        l.remove_entry(ObjectId(1)).unwrap();
        assert_eq!(l.last_object_end(), 24);
        assert_eq!(l.last_object_end(), scanned_footprint(&l));
        l.remove_entry(ObjectId(2)).unwrap();
        assert_eq!(l.last_object_end(), 0);
    }

    #[test]
    fn replacement_and_reuse_keep_the_footprint_exact() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(5);
        l.regions[k as usize].payload_space = 30;
        l.attach_payload(ObjectId(1), 5, k, 0);
        // Reattach the same object elsewhere (what a flush finalize does).
        l.attach_payload(ObjectId(1), 5, k, 10);
        assert_eq!(l.last_object_end(), 15);
        // Move it back down: the cached 15 must be invalidated.
        l.attach_payload(ObjectId(1), 5, k, 0);
        assert_eq!(l.last_object_end(), 5);
        assert_eq!(l.last_object_end(), scanned_footprint(&l));
    }

    #[test]
    fn footprint_reads_are_cached_between_frontier_changes() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(4);
        l.regions[k as usize].payload_space = 40;
        l.attach_payload(ObjectId(1), 4, k, 0);
        let k2 = l.account_insert(4);
        l.attach_payload(ObjectId(2), 4, k2, 20);
        assert_eq!(l.last_object_end(), 24);
        // Non-frontier churn keeps the cache clean (no rescan pending).
        l.relocate_entry(ObjectId(1), 4, Place::Payload);
        assert!(!l.footprint_dirty.get(), "non-frontier move dirtied cache");
        assert_eq!(l.last_object_end(), 24);
        // Moving the frontier *down* invalidates; the next read rescans.
        l.relocate_entry(ObjectId(2), 10, Place::Payload);
        assert!(l.footprint_dirty.get(), "frontier shrink must invalidate");
        assert_eq!(l.last_object_end(), 14);
        assert!(!l.footprint_dirty.get(), "read settles the cache");
        assert_eq!(l.last_object_end(), scanned_footprint(&l));
    }

    #[test]
    fn remove_entry_releases_pending_volume() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(6);
        l.regions[k as usize].payload_space = 6;
        l.attach_payload(ObjectId(1), 6, k, 0);
        l.mark_pending_delete(ObjectId(1));
        assert_eq!(l.live_volume(), l.settled_volume() + 6);
        l.remove_entry(ObjectId(1)).unwrap();
        assert_eq!(l.pending_volume, 0, "pending share must not leak");
        assert_eq!(l.last_object_end(), 0);
    }

    #[test]
    fn volume_summary_reflects_accounting() {
        let mut l = Layout::new(eps());
        let k = l.account_insert(6);
        l.regions[k as usize].payload_space = 20;
        l.attach_payload(ObjectId(1), 6, k, 0);
        let k2 = l.account_insert(4);
        l.attach_payload(ObjectId(2), 4, k2, 6);
        l.account_delete(4, k2);
        l.mark_pending_delete(ObjectId(2));
        let s = l.volume_summary();
        assert_eq!(s.settled, 6);
        assert_eq!(s.pending, 4);
        assert_eq!(s.live, 10);
        assert_eq!(s.objects, 2);
        assert_eq!(s.delta, 6);
        assert_eq!(s.footprint, 10);
    }

    #[test]
    fn region_views_expose_geometry() {
        let mut l = Layout::new(eps());
        l.ensure_class(1);
        l.regions[0].payload_space = 4;
        l.regions[0].buffer_space = 1;
        l.regions[1].payload_space = 8;
        let views = l.region_views();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].start, 0);
        assert_eq!(views[1].start, 5);
        assert_eq!(views[1].payload_space, 8);
    }
}
