//! The Section 3.2 reallocator: footprint minimization in a database
//! context, under the durability rules of Section 3.1.
//!
//! Same competitive guarantees as Section 2 (the move count per object is
//! unchanged), plus:
//!
//! * every move lands on space disjoint from the object's old location;
//! * no write touches space freed since the last checkpoint;
//! * each flush blocks on `O(1/ε)` checkpoints (Lemma 3.3);
//! * space never exceeds `(1 + O(ε′))·V + ∆` during a flush (Lemma 3.1),
//!   the extra `∆` being unavoidable for nonoverlapping moves of the
//!   largest object.
//!
//! The emitted op streams replay cleanly against
//! `storage_sim::SimStore::new(Mode::Strict)`, which enforces all of the
//! above mechanically — the integration tests do exactly that, including
//! crash/recovery at arbitrary points.

use realloc_common::{size_class, Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

use crate::layout::{BufKind, Eps, Layout, RegionView};
use crate::plan::{apply_final_state, gather, plan_checkpointed};
use crate::validate::{check_invariants, InvariantViolation};

/// The checkpointed cost-oblivious reallocator (§3.2).
///
/// Emits [`StorageOp::CheckpointBarrier`] wherever the algorithm must block
/// until the system performs a checkpoint; the substrate decides what a
/// checkpoint costs.
#[derive(Debug, Clone)]
pub struct CheckpointedReallocator {
    layout: Layout,
    flushes: u64,
    total_checkpoints: u64,
}

impl CheckpointedReallocator {
    /// Creates a reallocator with footprint slack `ε` (`0 < ε ≤ 1/2`).
    pub fn new(eps: f64) -> Self {
        Self::with_eps(Eps::new(eps))
    }

    /// Creates a reallocator from a pre-built (possibly ablated) [`Eps`].
    pub fn with_eps(eps: Eps) -> Self {
        CheckpointedReallocator {
            layout: Layout::new(eps),
            flushes: 0,
            total_checkpoints: 0,
        }
    }

    /// The footprint parameter.
    pub fn eps(&self) -> Eps {
        self.layout.eps()
    }

    /// One-call snapshot of the volume accounting (see
    /// [`VolumeSummary`](crate::layout::VolumeSummary)).
    pub fn volume_summary(&self) -> crate::layout::VolumeSummary {
        self.layout.volume_summary()
    }

    /// Number of buffer flushes performed (or started) so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Total checkpoint barriers emitted across all flushes.
    pub fn checkpoints_waited(&self) -> u64 {
        self.total_checkpoints
    }

    /// Read-only view of the region layout (paper Figure 2).
    pub fn region_views(&self) -> Vec<RegionView> {
        self.layout.region_views()
    }

    /// Checks the paper's structural invariants.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        check_invariants(&self.layout)
    }

    fn insert_new_largest_class(&mut self, id: ObjectId, size: u64, class: u32) -> Outcome {
        let offset = {
            let region = &mut self.layout.regions[class as usize];
            region.payload_space = size;
            region.buffer_space = self.layout.eps.buffer_quota(size);
            self.layout.region_start(class)
        };
        self.layout.attach_payload(id, size, class, offset);
        Outcome {
            ops: vec![StorageOp::Allocate {
                id,
                to: Extent::new(offset, size),
            }],
            flushed: false,
            peak_structure_size: self.layout.regions_end(),
            checkpoints: 0,
        }
    }

    /// Phased flush. For inserts, the trigger object is pre-placed at the
    /// end of the last buffer's used space — §3.2 inserts *before* flushing,
    /// unlike §2 — and rides the plan through staging to its final slot.
    fn flush(
        &mut self,
        trigger: Option<(ObjectId, u64, u32)>,
        trigger_class: u32,
        pre_ops: Vec<StorageOp>,
    ) -> Outcome {
        let mut ops = pre_ops;

        // Pre-place the trigger past all used space (never on freed cells:
        // buffer space is consumed monotonically between flushes and every
        // flush ends with a barrier).
        let planned_trigger = trigger.map(|(id, size, class)| {
            let last = self.layout.class_count() as u32 - 1;
            let at =
                self.layout.buffer_start(last) + self.layout.regions[last as usize].buffer_used;
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(at, size),
            });
            (id, size, class, at)
        });

        let b = self.layout.boundary_class(trigger_class);
        let inputs = gather(&self.layout, b, &[]);
        let plan = plan_checkpointed(&inputs, planned_trigger, 0, self.layout.delta());

        let mut checkpoints = 0u32;
        for phase in &plan.phases {
            ops.extend(phase.iter().map(|m| m.op()));
            // One barrier after every phase; the last doubles as the
            // end-of-flush checkpoint that makes vacated space reusable.
            ops.push(StorageOp::CheckpointBarrier);
            checkpoints += 1;
        }

        let trigger_end = planned_trigger.map_or(0, |(_, size, _, at)| at + size);
        apply_final_state(&mut self.layout, &plan);
        self.flushes += 1;
        self.total_checkpoints += u64::from(checkpoints);
        Outcome {
            ops,
            flushed: true,
            peak_structure_size: plan.peak.max(trigger_end).max(self.layout.regions_end()),
            checkpoints,
        }
    }
}

impl Reallocator for CheckpointedReallocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.layout.index.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let class = size_class(size);
        let is_new_largest = class as usize >= self.layout.class_count();
        self.layout.account_insert(size);

        if is_new_largest {
            return Ok(self.insert_new_largest_class(id, size, class));
        }
        if let Some(j) = self.layout.find_buffer(class, size) {
            let offset = self
                .layout
                .push_buffer_entry(j, size, class, BufKind::Obj(id));
            self.layout.attach_buffered(id, size, class, j, offset);
            return Ok(Outcome {
                ops: vec![StorageOp::Allocate {
                    id,
                    to: Extent::new(offset, size),
                }],
                flushed: false,
                peak_structure_size: self.layout.regions_end(),
                checkpoints: 0,
            });
        }
        Ok(self.flush(Some((id, size, class)), class, Vec::new()))
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let entry = self
            .layout
            .detach_object(id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.layout.account_delete(entry.size, entry.class);
        let free_op = StorageOp::Free {
            id,
            at: entry.extent(),
        };

        let needs_dummy = matches!(entry.place, crate::layout::Place::Payload);
        if needs_dummy {
            if let Some(j) = self.layout.find_buffer(entry.class, entry.size) {
                self.layout
                    .push_buffer_entry(j, entry.size, entry.class, BufKind::Tombstone);
            } else {
                // §3.2: the flush triggers without using space for the dummy.
                return Ok(self.flush(None, entry.class, vec![free_op]));
            }
        }
        Ok(Outcome {
            ops: vec![free_op],
            flushed: false,
            peak_structure_size: self.layout.regions_end(),
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.layout.extent_of(id)
    }

    fn live_volume(&self) -> u64 {
        self.layout.live_volume()
    }

    fn structure_size(&self) -> u64 {
        self.layout.regions_end()
    }

    fn footprint(&self) -> u64 {
        self.layout.last_object_end()
    }

    fn max_object_size(&self) -> u64 {
        self.layout.delta()
    }

    fn name(&self) -> &'static str {
        "cost-oblivious-ckpt"
    }

    fn live_count(&self) -> usize {
        self.layout.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    fn assert_space_envelope(r: &CheckpointedReallocator, outcome: &Outcome) {
        // Lemma 3.1: during any request, space ≤ (1+O(ε'))V + O(∆). Our
        // implementation's constants: structure ≤ (1+ε')·(V/(1-ε')), the
        // staging offset adds B ≤ ε'·structure plus a 2∆ guard, and staged
        // volume adds up to ε'·structure + w again — so (1+6ε')V + 3∆ is a
        // safe concrete envelope (experiments report the measured peak).
        let eps_p = r.eps().prime();
        let v = r.live_volume() as f64;
        let bound = (1.0 + 6.0 * eps_p) * v + 3.0 * r.max_object_size() as f64;
        assert!(
            outcome.peak_structure_size as f64 <= bound + 1e-6,
            "peak {} > bound {bound} (V={v})",
            outcome.peak_structure_size
        );
    }

    #[test]
    fn basic_insert_delete_cycle() {
        let mut r = CheckpointedReallocator::new(0.5);
        r.insert(id(1), 100).unwrap();
        r.insert(id(2), 30).unwrap();
        r.delete(id(1)).unwrap();
        r.validate().unwrap();
        assert_eq!(r.live_count(), 1);
    }

    #[test]
    fn flush_emits_checkpoint_barriers() {
        let mut r = CheckpointedReallocator::new(0.5);
        r.insert(id(1), 600).unwrap();
        let mut n = 2;
        let out = loop {
            let out = r.insert(id(n), 30).unwrap();
            n += 1;
            if out.flushed {
                break out;
            }
            assert!(n < 100);
        };
        assert!(
            out.checkpoints >= 1,
            "flush must block on at least one checkpoint"
        );
        assert_eq!(
            out.ops
                .iter()
                .filter(|o| matches!(o, StorageOp::CheckpointBarrier))
                .count(),
            out.checkpoints as usize
        );
        r.validate().unwrap();
    }

    #[test]
    fn moves_never_overlap_their_source() {
        let mut r = CheckpointedReallocator::new(0.5);
        let sizes: Vec<u64> = (0..150).map(|i| 1 + (i * 13) % 200).collect();
        for (i, &s) in sizes.iter().enumerate() {
            let out = r.insert(id(i as u64), s).unwrap();
            for op in &out.ops {
                if let StorageOp::Move { from, to, .. } = op {
                    assert!(!from.overlaps(to), "{from} overlaps {to}");
                }
            }
            r.validate().unwrap();
        }
    }

    #[test]
    fn footprint_bound_after_every_request() {
        let mut r = CheckpointedReallocator::new(0.25);
        let sizes: Vec<u64> = (0..200).map(|i| 1 + (i * 7) % 120).collect();
        for (i, &s) in sizes.iter().enumerate() {
            let out = r.insert(id(i as u64), s).unwrap();
            r.validate().unwrap();
            let bound = 1.25 * r.live_volume() as f64;
            assert!(r.structure_size() as f64 <= bound + 1e-9);
            assert_space_envelope(&r, &out);
        }
        for i in (0..200u64).step_by(3) {
            let out = r.delete(id(i)).unwrap();
            r.validate().unwrap();
            let bound = 1.25 * r.live_volume() as f64;
            assert!(r.structure_size() as f64 <= bound + 1e-9);
            assert_space_envelope(&r, &out);
        }
    }

    #[test]
    fn trigger_object_survives_flush() {
        let mut r = CheckpointedReallocator::new(0.5);
        r.insert(id(1), 600).unwrap();
        let mut n = 2;
        loop {
            let out = r.insert(id(n), 30).unwrap();
            if out.flushed {
                let e = r.extent_of(id(n)).expect("trigger placed");
                assert_eq!(e.len, 30);
                break;
            }
            n += 1;
            assert!(n < 100);
        }
        r.validate().unwrap();
    }

    #[test]
    fn checkpoints_per_flush_scale_like_inverse_eps() {
        // Lemma 3.3: O(1/ε′) checkpoints per flush. The worst flush under a
        // 10x tighter ε must stay within ~O(10x) of the loose one.
        let worst = |eps: f64| -> u32 {
            let mut r = CheckpointedReallocator::new(eps);
            let mut max_cp = 0;
            for i in 0..400u64 {
                let out = r.insert(id(i), 1 + (i * 11) % 64).unwrap();
                max_cp = max_cp.max(out.checkpoints);
            }
            max_cp
        };
        let loose = worst(0.5);
        let tight = worst(0.05);
        assert!(loose >= 1);
        assert!(
            (tight as f64) <= (loose as f64) * 10.0 * 3.0,
            "checkpoints grew faster than 1/ε: {loose} -> {tight}"
        );
    }

    #[test]
    fn delete_triggered_flush_has_no_trigger_allocation() {
        let mut r = CheckpointedReallocator::new(0.5);
        r.insert(id(1), 600).unwrap();
        let mut m = 1000u64;
        for _ in 0..200 {
            r.insert(id(m), 25).unwrap();
            m += 1;
        }
        let mut flush_seen = false;
        for i in 1000..m {
            let out = r.delete(id(i)).unwrap();
            r.validate().unwrap();
            if out.flushed {
                flush_seen = true;
                assert!(!out
                    .ops
                    .iter()
                    .any(|o| matches!(o, StorageOp::Allocate { .. })));
                break;
            }
        }
        assert!(flush_seen, "no delete-triggered flush observed");
    }
}
