//! The Section 3.3 (partially) deamortized reallocator.
//!
//! Same amortized guarantees as the checkpointed structure, plus a
//! **worst-case** bound: serving a size-`w` update reallocates at most
//! `(4/ε′)·w + ∆` volume (cost `O((1/ε)·w·f(1) + f(∆))`, Lemma 3.6).
//!
//! Two additions make that possible (paper §3.3):
//!
//! * a **tail buffer** of size `⌊ε′·V_f⌋` after all regions (`V_f` = volume
//!   at the previous flush), which accepts any size class and whose filling
//!   is what triggers a flush — giving the in-progress flush time to finish;
//! * a **log** past the flush's working space: updates arriving mid-flush
//!   are appended there (inserts are physically written into log cells;
//!   deletes are volume-free records), and every update *pumps* the next
//!   `(4/ε′)·w` cells of flush work. After the planned phases complete, the
//!   log drains — each logged insert moves once, log→buffer — and the flush
//!   ends when the log is empty (Lemma 3.4 shows it always catches up).
//!
//! Documented deviations (also in DESIGN.md):
//!
//! * If a drained insert fits no buffer (e.g. it opened a brand-new largest
//!   size class, or buffers are genuinely too small for it), we *chain* into
//!   a new flush whose plan absorbs all log-resident inserts directly — the
//!   paper leaves this corner to the reader; chaining preserves both the
//!   space envelope and the per-update work bound because the new plan is
//!   still pumped incrementally.
//! * A flush's staging is placed past the old structure *and* the log
//!   high-water mark, and the drain ends with one extra checkpoint barrier,
//!   for the same freed-space-rule reasons described in `plan.rs`.

use std::collections::{HashSet, VecDeque};

use realloc_common::{size_class, Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

use crate::layout::{BufEntry, BufKind, Eps, Layout, Place, RegionView};
use crate::plan::{apply_final_state, gather, plan_checkpointed, FlushObj, FlushPlan};
use crate::validate::{check_invariants, InvariantViolation};

/// The tail buffer: follows all size-class regions, accepts any class.
#[derive(Debug, Clone, Default)]
struct Tail {
    start: u64,
    capacity: u64,
    entries: Vec<BufEntry>,
    used: u64,
}

impl Tail {
    fn free(&self) -> u64 {
        self.capacity - self.used
    }

    fn push(&mut self, size: u64, class: u32, kind: BufKind) -> u64 {
        let offset = self.start + self.used;
        self.entries.push(BufEntry {
            offset,
            size,
            class,
            kind,
        });
        self.used += size;
        offset
    }

    fn live_objects(&self) -> impl Iterator<Item = FlushObj> + '_ {
        self.entries.iter().filter_map(|e| match e.kind {
            BufKind::Obj(id) => Some(FlushObj {
                id,
                size: e.size,
                class: e.class,
                offset: e.offset,
            }),
            BufKind::Tombstone => None,
        })
    }

    fn min_class(&self) -> Option<u32> {
        self.entries.iter().map(|e| e.class).min()
    }

    fn tombstone(&mut self, offset: u64) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.offset == offset)
            .expect("tail entry for indexed object");
        e.kind = BufKind::Tombstone;
    }
}

/// A logged update awaiting the drain stage.
#[derive(Debug, Clone, Copy)]
enum LogEntry {
    Insert { id: ObjectId, size: u64, class: u32 },
    Delete { id: ObjectId },
}

/// A flush in progress: planned phases executed move-by-move, then the log
/// drain.
#[derive(Debug, Clone)]
struct FlushJob {
    plan: FlushPlan,
    phase_idx: usize,
    move_idx: usize,
    /// Phases done, final state applied, tail re-established; draining.
    finalized: bool,
    log: VecDeque<LogEntry>,
    /// Next free log cell.
    log_cursor: u64,
    /// Largest log cell ever used (staging for a chained flush must clear it).
    log_hwm: u64,
    /// Objects with a delete logged but not yet drained (still active).
    pending: HashSet<ObjectId>,
    /// Space high-water mark for this job.
    peak: u64,
}

impl FlushJob {
    fn phases_done(&self) -> bool {
        self.phase_idx >= self.plan.phases.len()
    }
}

/// The deamortized cost-oblivious reallocator (§3.3).
///
/// Between requests a flush may be mid-way; queries ([`Reallocator::extent_of`]
/// etc.) remain exact throughout. Structural invariants are fully checkable
/// only at quiescence ([`Self::is_quiescent`]).
#[derive(Debug, Clone)]
pub struct DeamortizedReallocator {
    layout: Layout,
    tail: Tail,
    job: Option<FlushJob>,
    /// Volume at the last flush trigger (sizes the next tail).
    vf: u64,
    flushes: u64,
    total_checkpoints: u64,
}

impl DeamortizedReallocator {
    /// Creates a reallocator with footprint slack `ε` (`0 < ε ≤ 1/2`).
    pub fn new(eps: f64) -> Self {
        Self::with_eps(Eps::new(eps))
    }

    /// Creates a reallocator from a pre-built (possibly ablated) [`Eps`].
    pub fn with_eps(eps: Eps) -> Self {
        DeamortizedReallocator {
            layout: Layout::new(eps),
            tail: Tail::default(),
            job: None,
            vf: 0,
            flushes: 0,
            total_checkpoints: 0,
        }
    }

    /// The footprint parameter.
    pub fn eps(&self) -> Eps {
        self.layout.eps()
    }

    /// One-call snapshot of the volume accounting (see
    /// [`VolumeSummary`](crate::layout::VolumeSummary)). Pending deletes
    /// still count as live until drained, matching every other accessor.
    pub fn volume_summary(&self) -> crate::layout::VolumeSummary {
        self.layout.volume_summary()
    }

    /// Number of buffer flushes performed (or started) so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Total checkpoint barriers emitted across all flushes.
    pub fn checkpoints_waited(&self) -> u64 {
        self.total_checkpoints
    }

    /// True when no flush is in progress (all invariants checkable).
    pub fn is_quiescent(&self) -> bool {
        self.job.is_none()
    }

    /// Pumps any in-progress flush to completion (unbounded quota) — the
    /// shutdown/quiesce path a database would call before unmounting.
    /// Afterwards [`Self::is_quiescent`] is true, all pending deletes have
    /// drained, and the Lemma 3.5 no-flush footprint bound holds.
    pub fn drain(&mut self) -> realloc_common::Outcome {
        let mut ops = Vec::new();
        let mut checkpoints = 0;
        while self.job.is_some() {
            checkpoints += self.pump(u64::MAX, &mut ops);
        }
        self.total_checkpoints += u64::from(checkpoints);
        realloc_common::Outcome {
            ops,
            flushed: checkpoints > 0,
            peak_structure_size: self.current_extent(),
            checkpoints,
        }
    }

    /// Read-only view of the region layout (paper Figure 2).
    pub fn region_views(&self) -> Vec<RegionView> {
        self.layout.region_views()
    }

    /// Full invariant check at quiescence; a weaker disjointness/accounting
    /// check mid-flush (region maps are transitional then).
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        match &self.job {
            None => {
                check_invariants(&self.layout)?;
                // Tail entries: contained, indexed, accounted.
                let mut used = 0;
                for e in &self.tail.entries {
                    if e.offset < self.tail.start
                        || e.offset + e.size > self.tail.start + self.tail.capacity
                    {
                        return Err(InvariantViolation::BadAccounting {
                            detail: format!("tail entry at {} escapes tail", e.offset),
                        });
                    }
                    used += e.size;
                }
                if used != self.tail.used {
                    return Err(InvariantViolation::BadAccounting {
                        detail: "tail used drifted".into(),
                    });
                }
                Ok(())
            }
            Some(_) => self.validate_disjoint(),
        }
    }

    /// Mid-flush check: all indexed extents pairwise disjoint.
    fn validate_disjoint(&self) -> Result<(), InvariantViolation> {
        let mut extents: Vec<(u64, u64, ObjectId)> = self
            .layout
            .index
            .iter()
            .map(|(&id, e)| (e.offset, e.size, id))
            .collect();
        extents.sort_unstable();
        for pair in extents.windows(2) {
            if pair[0].0 + pair[0].1 > pair[1].0 {
                return Err(InvariantViolation::Overlap {
                    a: pair[0].2,
                    b: pair[1].2,
                    at: Extent::new(pair[1].0, pair[0].0 + pair[0].1 - pair[1].0),
                });
            }
        }
        Ok(())
    }

    /// Structure extent right now (regions + tail, plus mid-flush working
    /// space).
    fn current_extent(&self) -> u64 {
        let base = self.layout.regions_end() + self.tail.capacity;
        match &self.job {
            Some(job) => base.max(job.peak).max(job.log_hwm),
            None => base,
        }
    }

    // ----- flush machinery -------------------------------------------------

    /// Plans a flush and installs the job. `trigger` (insert-triggered only)
    /// must already be physically placed at `trigger.3`; `carry_log` and
    /// `carry_pending` transfer state when chaining from a draining flush.
    #[allow(clippy::too_many_arguments)]
    fn start_flush(
        &mut self,
        trigger: Option<(ObjectId, u64, u32, u64)>,
        trigger_class: u32,
        extra_log_inserts: Vec<FlushObj>,
        carry_log: VecDeque<LogEntry>,
        carry_pending: HashSet<ObjectId>,
        floor_end: u64,
    ) {
        // The boundary must cover the tail and any log-resident inserts,
        // which are flushed unconditionally.
        let mut min0 = trigger_class;
        if let Some(m) = self.tail.min_class() {
            min0 = min0.min(m);
        }
        for o in &extra_log_inserts {
            min0 = min0.min(o.class);
        }
        let b = self.layout.boundary_class(min0);

        let extra_buffered: Vec<FlushObj> = self
            .tail
            .live_objects()
            .chain(extra_log_inserts.iter().copied())
            .collect();

        let mut inputs = gather(&self.layout, b, &extra_buffered);
        // Staging must clear the tail and any old log cells (freed-space
        // rule; see module docs).
        inputs.old_end = inputs
            .old_end
            .max(self.layout.regions_end() + self.tail.capacity)
            .max(floor_end);
        let plan = plan_checkpointed(&inputs, trigger, self.tail.capacity, self.layout.delta());

        self.vf = self.layout.live_volume();
        let log_cursor = plan.peak; // log cells begin past all working space
        self.job = Some(FlushJob {
            peak: plan.peak,
            plan,
            phase_idx: 0,
            move_idx: 0,
            finalized: false,
            log: carry_log,
            log_cursor,
            log_hwm: log_cursor,
            pending: carry_pending,
            // Tail entries are owned by the plan now.
        });
        self.tail.entries.clear();
        self.tail.used = 0;
        self.flushes += 1;
    }

    /// Executes up to `quota` cells of flush work (phase moves, then log
    /// drain), appending ops. Returns the number of checkpoint barriers
    /// emitted.
    fn pump(&mut self, mut quota: u64, ops: &mut Vec<StorageOp>) -> u32 {
        let mut checkpoints = 0u32;
        loop {
            let Some(job) = self.job.as_mut() else {
                return checkpoints;
            };

            // --- Phase moves ---
            while !job.phases_done() {
                let phase = &job.plan.phases[job.phase_idx];
                if job.move_idx >= phase.len() {
                    ops.push(StorageOp::CheckpointBarrier);
                    checkpoints += 1;
                    job.phase_idx += 1;
                    job.move_idx = 0;
                    continue;
                }
                if quota == 0 {
                    return checkpoints;
                }
                let mv = phase[job.move_idx];
                job.move_idx += 1;
                ops.push(mv.op());
                // Keep the index (and its extent order) exact mid-flush.
                self.layout.relocate_entry(mv.id, mv.to.offset, mv.dest);
                quota = quota.saturating_sub(mv.to.len);
            }

            // --- Finalize: rebuild regions, re-establish the tail ---
            if !job.finalized {
                let plan = job.plan.clone();
                let pending = job.pending.clone();
                apply_final_state(&mut self.layout, &plan);
                for id in &pending {
                    self.layout.mark_pending_delete(*id);
                }
                self.tail.start = self.layout.regions_end();
                self.tail.capacity = self.layout.eps().buffer_quota(self.vf);
                let job = self.job.as_mut().expect("still flushing");
                job.finalized = true;
            }

            // --- Drain the log ---
            let mut chain: Option<(ObjectId, u32)> = None;
            loop {
                let job = self.job.as_mut().expect("still flushing");
                let Some(&entry) = job.log.front() else { break };
                match entry {
                    LogEntry::Delete { id } => {
                        job.log.pop_front();
                        job.pending.remove(&id);
                        self.drain_delete(id, ops, &mut chain);
                        if chain.is_some() {
                            break;
                        }
                    }
                    LogEntry::Insert { id, size, class } => {
                        if quota == 0 {
                            return checkpoints;
                        }
                        let from = self.layout.extent_of(id).expect("logged object is active");
                        if self.try_place_from(id, size, class, from, ops) {
                            self.job.as_mut().expect("flushing").log.pop_front();
                            quota = quota.saturating_sub(size);
                        } else {
                            chain = Some((id, class));
                            break;
                        }
                    }
                }
            }

            match chain {
                Some((_, trigger_class)) => {
                    // Chain into a new flush absorbing every log-resident
                    // insert; deletes stay queued for the new drain.
                    let job = self.job.take().expect("flushing");
                    let mut log_inserts = Vec::new();
                    let mut remaining = VecDeque::new();
                    for e in job.log {
                        match e {
                            LogEntry::Insert { id, size, class } => {
                                let ext =
                                    self.layout.extent_of(id).expect("logged object is active");
                                log_inserts.push(FlushObj {
                                    id,
                                    size,
                                    class,
                                    offset: ext.offset,
                                });
                            }
                            LogEntry::Delete { .. } => remaining.push_back(e),
                        }
                    }
                    self.start_flush(
                        None,
                        trigger_class,
                        log_inserts,
                        remaining,
                        job.pending,
                        job.log_hwm,
                    );
                    // Loop back: keep pumping the chained flush with the
                    // remaining quota.
                    if quota == 0 {
                        return checkpoints;
                    }
                }
                None => {
                    // Log empty: flush complete. One extra barrier so the
                    // vacated log cells are reusable by the next staging.
                    ops.push(StorageOp::CheckpointBarrier);
                    checkpoints += 1;
                    self.job = None;
                    return checkpoints;
                }
            }
        }
    }

    /// Moves an already-placed object (log or elsewhere) into a buffer or
    /// the tail. Returns false if nothing fits.
    fn try_place_from(
        &mut self,
        id: ObjectId,
        size: u64,
        class: u32,
        from: Extent,
        ops: &mut Vec<StorageOp>,
    ) -> bool {
        // Re-placement must not clear a pending-delete mark (the object may
        // have a delete queued behind its own insert in the log).
        let pending = self.layout.index.get(&id).is_some_and(|e| e.pending_delete);
        if let Some(j) = self.layout.find_buffer(class, size) {
            let offset = self
                .layout
                .push_buffer_entry(j, size, class, BufKind::Obj(id));
            self.layout.attach_buffered(id, size, class, j, offset);
            if pending {
                self.layout.mark_pending_delete(id);
            }
            ops.push(StorageOp::Move {
                id,
                from,
                to: Extent::new(offset, size),
            });
            true
        } else if self.tail.free() >= size {
            let offset = self.tail.push(size, class, BufKind::Obj(id));
            self.layout.insert_entry(
                id,
                crate::layout::Entry {
                    size,
                    class,
                    offset,
                    place: Place::Tail,
                    pending_delete: pending,
                },
            );
            ops.push(StorageOp::Move {
                id,
                from,
                to: Extent::new(offset, size),
            });
            true
        } else {
            false
        }
    }

    /// Drains one logged delete: detaches the object and charges a dummy
    /// record, chaining a flush if no buffer can hold the dummy.
    fn drain_delete(
        &mut self,
        id: ObjectId,
        ops: &mut Vec<StorageOp>,
        chain: &mut Option<(ObjectId, u32)>,
    ) {
        let entry = *self
            .layout
            .index
            .get(&id)
            .expect("pending object is active");
        match entry.place {
            Place::Payload | Place::Buffer(_) => {
                self.layout.detach_object(id);
            }
            Place::Tail => {
                // `remove_entry`, not a raw map remove: the entry is marked
                // pending, and its share of `pending_volume` (plus its slot
                // in the footprint cache) must be released with it.
                self.layout.remove_entry(id);
                self.tail.tombstone(entry.offset);
            }
            Place::Staging | Place::Log => {
                unreachable!("drain order: inserts drain before their deletes")
            }
        }
        ops.push(StorageOp::Free {
            id,
            at: entry.extent(),
        });
        if matches!(entry.place, Place::Payload) {
            // Dummy record; volume was already un-accounted at request time.
            if let Some(j) = self.layout.find_buffer(entry.class, entry.size) {
                self.layout
                    .push_buffer_entry(j, entry.size, entry.class, BufKind::Tombstone);
            } else if self.tail.free() >= entry.size {
                self.tail.push(entry.size, entry.class, BufKind::Tombstone);
            } else {
                *chain = Some((id, entry.class));
            }
        }
    }
}

impl Reallocator for DeamortizedReallocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.layout.index.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let class = size_class(size);
        self.layout.account_insert(size);

        let mut ops = Vec::new();
        let mut flushed = false;
        let mut checkpoints = 0u32;

        if let Some(job) = self.job.as_mut() {
            // Mid-flush: append to the log, pump (4/ε')·w of work.
            let at = job.log_cursor;
            job.log_cursor += size;
            job.log_hwm = job.log_hwm.max(job.log_cursor);
            job.log.push_back(LogEntry::Insert { id, size, class });
            self.layout.insert_entry(
                id,
                crate::layout::Entry {
                    size,
                    class,
                    offset: at,
                    place: Place::Log,
                    pending_delete: false,
                },
            );
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(at, size),
            });
            checkpoints += self.pump(self.layout.eps().pump_quota(size), &mut ops);
            flushed = true;
        } else if let Some(j) = self.layout.find_buffer(class, size) {
            let offset = self
                .layout
                .push_buffer_entry(j, size, class, BufKind::Obj(id));
            self.layout.attach_buffered(id, size, class, j, offset);
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(offset, size),
            });
        } else if self.tail.free() >= size {
            let offset = self.tail.push(size, class, BufKind::Obj(id));
            self.layout.insert_entry(
                id,
                crate::layout::Entry {
                    size,
                    class,
                    offset,
                    place: Place::Tail,
                    pending_delete: false,
                },
            );
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(offset, size),
            });
        } else {
            // Tail full: place past all used space and trigger the flush.
            let at = self.tail.start + self.tail.used;
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(at, size),
            });
            self.layout.insert_entry(
                id,
                crate::layout::Entry {
                    size,
                    class,
                    offset: at,
                    place: Place::Staging,
                    pending_delete: false,
                },
            );
            self.start_flush(
                Some((id, size, class, at)),
                class,
                Vec::new(),
                VecDeque::new(),
                HashSet::new(),
                0,
            );
            checkpoints += self.pump(self.layout.eps().pump_quota(size), &mut ops);
            flushed = true;
        }

        self.total_checkpoints += u64::from(checkpoints);
        Ok(Outcome {
            ops,
            flushed,
            peak_structure_size: self.current_extent(),
            checkpoints,
        })
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let entry = match self.layout.index.get(&id) {
            Some(e) if !e.pending_delete => *e,
            _ => return Err(ReallocError::UnknownId(id)),
        };
        self.layout.account_delete(entry.size, entry.class);

        let mut ops = Vec::new();
        let mut flushed = false;
        let mut checkpoints = 0u32;

        if self.job.is_some() {
            // Mid-flush: log the delete (volume-free record), mark pending —
            // the object stays active until drained — and pump.
            self.layout.mark_pending_delete(id);
            let job = self.job.as_mut().expect("checked");
            job.log.push_back(LogEntry::Delete { id });
            job.pending.insert(id);
            checkpoints += self.pump(self.layout.eps().pump_quota(entry.size), &mut ops);
            flushed = true;
        } else {
            match entry.place {
                Place::Payload => {
                    self.layout.detach_object(id);
                    ops.push(StorageOp::Free {
                        id,
                        at: entry.extent(),
                    });
                    if let Some(j) = self.layout.find_buffer(entry.class, entry.size) {
                        self.layout.push_buffer_entry(
                            j,
                            entry.size,
                            entry.class,
                            BufKind::Tombstone,
                        );
                    } else if self.tail.free() >= entry.size {
                        self.tail.push(entry.size, entry.class, BufKind::Tombstone);
                    } else {
                        // Tail full: flush without using space for the dummy.
                        self.start_flush(
                            None,
                            entry.class,
                            Vec::new(),
                            VecDeque::new(),
                            HashSet::new(),
                            0,
                        );
                        checkpoints +=
                            self.pump(self.layout.eps().pump_quota(entry.size), &mut ops);
                        flushed = true;
                    }
                }
                Place::Buffer(_) => {
                    self.layout.detach_object(id);
                    ops.push(StorageOp::Free {
                        id,
                        at: entry.extent(),
                    });
                }
                Place::Tail => {
                    self.layout.remove_entry(id);
                    self.tail.tombstone(entry.offset);
                    ops.push(StorageOp::Free {
                        id,
                        at: entry.extent(),
                    });
                }
                Place::Staging | Place::Log => unreachable!("no job active"),
            }
        }

        self.total_checkpoints += u64::from(checkpoints);
        Ok(Outcome {
            ops,
            flushed,
            peak_structure_size: self.current_extent(),
            checkpoints,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.layout.extent_of(id)
    }

    fn live_volume(&self) -> u64 {
        self.layout.live_volume()
    }

    fn structure_size(&self) -> u64 {
        self.current_extent()
    }

    fn footprint(&self) -> u64 {
        self.layout.last_object_end()
    }

    fn max_object_size(&self) -> u64 {
        self.layout.delta()
    }

    fn quiesce(&mut self) -> Outcome {
        self.drain()
    }

    fn name(&self) -> &'static str {
        "cost-oblivious-deamortized"
    }

    fn live_count(&self) -> usize {
        self.layout.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    /// Lemma 3.6 worst case: every update moves at most (4/ε')·w + ∆ volume.
    fn assert_worst_case(r: &DeamortizedReallocator, w: u64, out: &Outcome) {
        let bound = r.eps().pump_quota(w) + r.max_object_size();
        assert!(
            out.moved_volume() <= bound,
            "moved {} > (4/ε')·{w} + ∆ = {bound}",
            out.moved_volume()
        );
    }

    #[test]
    fn basic_roundtrip() {
        let mut r = DeamortizedReallocator::new(0.5);
        let out = r.insert(id(1), 100).unwrap();
        assert_worst_case(&r, 100, &out);
        r.insert(id(2), 40).unwrap();
        r.delete(id(1)).unwrap();
        r.validate().unwrap();
        assert_eq!(r.live_count(), 1);
        assert_eq!(r.extent_of(id(2)).unwrap().len, 40);
    }

    #[test]
    fn worst_case_bound_through_churn() {
        let mut r = DeamortizedReallocator::new(0.5);
        let sizes: Vec<u64> = (0..300).map(|i| 1 + (i * 13) % 150).collect();
        for (i, &s) in sizes.iter().enumerate() {
            let out = r.insert(id(i as u64), s).unwrap();
            assert_worst_case(&r, s, &out);
            r.validate().unwrap();
        }
        for i in (0..300u64).step_by(2) {
            let w = r.extent_of(id(i)).map(|e| e.len).unwrap_or(1);
            let out = r.delete(id(i)).unwrap();
            assert_worst_case(&r, w, &out);
            r.validate().unwrap();
        }
    }

    #[test]
    fn flush_completes_and_buffers_empty_at_quiescence() {
        let mut r = DeamortizedReallocator::new(0.5);
        for i in 0..200u64 {
            r.insert(id(i), 1 + (i * 7) % 64).unwrap();
        }
        // Quiescence is reached whenever the last update's pump finished the
        // job; churn a little more until quiescent.
        let mut i = 200;
        while !r.is_quiescent() {
            r.insert(id(i), 1).unwrap();
            i += 1;
            assert!(i < 1000, "flush never completed");
        }
        r.validate().unwrap();
        // Unlike §2, buffers need not be empty at quiescence: the drain
        // refills them with logged inserts by design. But every object must
        // be addressable and the settled footprint bound must hold.
        for j in 0..i {
            assert!(r.extent_of(id(j)).is_some(), "lost object {j}");
        }
        let ratio = r.structure_size() as f64 / r.live_volume() as f64;
        assert!(ratio <= 1.5 + 1e-9, "quiescent ratio {ratio}");
    }

    #[test]
    fn objects_remain_addressable_mid_flush() {
        let mut r = DeamortizedReallocator::new(0.5);
        let sizes: Vec<u64> = (0..120).map(|i| 1 + (i * 11) % 90).collect();
        for (i, &s) in sizes.iter().enumerate() {
            r.insert(id(i as u64), s).unwrap();
            // Every previously inserted object must be addressable with its
            // exact size, flush in progress or not.
            for (j, &t) in sizes.iter().enumerate().take(i + 1) {
                let e = r.extent_of(id(j as u64)).expect("alive");
                assert_eq!(e.len, t);
            }
            r.validate().unwrap();
        }
    }

    #[test]
    fn delete_mid_flush_is_deferred_but_observable() {
        let mut r = DeamortizedReallocator::new(0.5);
        // Drive into a flush.
        let mut i = 0u64;
        while r.is_quiescent() {
            r.insert(id(i), 1 + (i % 60)).unwrap();
            i += 1;
            assert!(i < 500);
        }
        // Delete an early object mid-flush.
        let victim = id(0);
        let vol_before = r.live_volume();
        let w = r.extent_of(victim).unwrap().len;
        r.delete(victim).unwrap();
        // Either the delete is still pending (object active, occupying
        // space) or this request's pump already drained it — both are
        // legal; what is *not* legal is a double delete.
        let pending = r.extent_of(victim).is_some();
        if pending {
            assert_eq!(r.live_volume(), vol_before, "active until drain completes");
        } else {
            assert_eq!(r.live_volume(), vol_before - w);
        }
        assert!(matches!(r.delete(victim), Err(ReallocError::UnknownId(_))));
        // Finish the flush; the object is gone at quiescence.
        while !r.is_quiescent() {
            r.insert(id(10_000 + i), 1).unwrap();
            i += 1;
            assert!(i < 2000);
        }
        assert_eq!(r.live_volume(), vol_before - w);
        assert!(r.extent_of(victim).is_none());
        r.validate().unwrap();
    }

    #[test]
    fn footprint_bound_at_quiescence() {
        // Lemma 3.5: space (1+O(ε'))V when no flush is in progress.
        let mut r = DeamortizedReallocator::new(0.5);
        let mut n = 0u64;
        for round in 0..30 {
            for _ in 0..20 {
                r.insert(id(n), 1 + (n * 13) % 100).unwrap();
                n += 1;
            }
            if round % 3 == 2 {
                for k in 0..10 {
                    let victim = id(n - 1 - k);
                    if r.extent_of(victim).is_some() {
                        let _ = r.delete(victim);
                    }
                }
            }
            if r.is_quiescent() {
                let ratio = r.structure_size() as f64 / r.live_volume() as f64;
                assert!(ratio <= 1.5 + 1e-9, "quiescent ratio {ratio}");
            }
        }
    }

    #[test]
    fn moves_never_overlap_their_source() {
        let mut r = DeamortizedReallocator::new(0.5);
        for i in 0..250u64 {
            let out = r.insert(id(i), 1 + (i * 17) % 130).unwrap();
            for op in &out.ops {
                if let StorageOp::Move { from, to, .. } = op {
                    assert!(!from.overlaps(to), "{from} overlaps {to}");
                }
            }
        }
    }

    #[test]
    fn new_largest_class_mid_flush_chains_cleanly() {
        let mut r = DeamortizedReallocator::new(0.5);
        // Get a flush going with small objects.
        let mut i = 0u64;
        while r.is_quiescent() {
            r.insert(id(i), 1 + (i % 16)).unwrap();
            i += 1;
            assert!(i < 500);
        }
        // Mid-flush, insert an object of a brand-new largest class.
        let big = id(777_000);
        let out = r.insert(big, 4096).unwrap();
        assert_worst_case(&r, 4096, &out);
        assert_eq!(r.extent_of(big).unwrap().len, 4096);
        // Keep pumping to quiescence; the big object must end up placed and
        // the layout valid.
        while !r.is_quiescent() {
            r.insert(id(800_000 + i), 1).unwrap();
            i += 1;
            assert!(i < 3000, "chained flush never completed");
        }
        r.validate().unwrap();
        assert_eq!(r.extent_of(big).unwrap().len, 4096);
    }

    #[test]
    fn drain_quiesces_and_completes_pending_deletes() {
        let mut r = DeamortizedReallocator::new(0.5);
        let mut i = 0u64;
        while r.is_quiescent() {
            r.insert(id(i), 1 + (i % 60)).unwrap();
            i += 1;
            assert!(i < 500);
        }
        let victim = id(0);
        let w = r.extent_of(victim).unwrap().len;
        let vol = r.live_volume();
        r.delete(victim).unwrap();
        // The delete's own pump may already have completed the flush;
        // either way, after drain() the structure is quiescent.
        r.drain();
        assert!(r.is_quiescent());
        assert_eq!(r.live_volume(), vol - w);
        assert!(r.extent_of(victim).is_none());
        r.validate().unwrap();
        let ratio = r.structure_size() as f64 / r.live_volume() as f64;
        assert!(ratio <= 1.5 + 1e-9, "post-drain ratio {ratio}");
        // Draining when quiescent is a no-op.
        let out = r.drain();
        assert!(out.ops.is_empty());
    }

    #[test]
    fn duplicate_and_unknown_rejected() {
        let mut r = DeamortizedReallocator::new(0.5);
        r.insert(id(1), 10).unwrap();
        assert!(matches!(
            r.insert(id(1), 5),
            Err(ReallocError::DuplicateId(_))
        ));
        assert!(matches!(r.delete(id(9)), Err(ReallocError::UnknownId(_))));
        assert!(matches!(r.insert(id(2), 0), Err(ReallocError::ZeroSize)));
    }
}
