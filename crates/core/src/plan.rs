//! Buffer-flush planning — the heart of both Section 2 and Section 3.
//!
//! A flush of the size classes `>= b` redistributes a suffix of the layout
//! so that payload `i` takes exactly `V_t(i)` space and buffer `i` takes
//! `⌊ε′·V_t(i)⌋`, with all buffers left empty (Invariant 2.4). Two movement
//! schedules produce that same final state:
//!
//! * `plan_amortized` — §2: buffered objects hop to an *overflow segment*,
//!   payload survivors compact **left** then unpack **right**, buffered
//!   objects drop into payload tails. At most two moves per object; moves
//!   may overlap their own source (memmove semantics).
//! * `plan_checkpointed` — §3.2: buffered objects hop to a *staging area*
//!   placed `B + ∆` past everything, survivors pack **right** against it and
//!   then unpack **left**, in *phases* of more than `B` (at most `B + ∆`)
//!   moved volume with a checkpoint barrier after each. Lemma 3.2's gap
//!   invariant keeps every phase's sources and targets disjoint, so no move
//!   overlaps and no write touches space freed since the last checkpoint.
//!
//! One documented deviation (see DESIGN.md): §3.2 starts staging at
//! `max{L, L′} + B + ∆`; we use `max{L, L′, old structure end} + B + ∆`
//! because holes freed by deletes *since the last checkpoint* may lie
//! between `L` and the old structure end, and writing staging there would
//! break the freed-space rule the paper itself imposes. The old structure
//! end is at most `(1 + O(ε′))·V` (Lemma 2.5), so Lemma 3.1's space envelope
//! is preserved.

use realloc_common::{Extent, ObjectId, StorageOp};

use crate::layout::{Layout, Place};

/// An object participating in a flush: identity plus its current position.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushObj {
    pub id: ObjectId,
    pub size: u64,
    pub class: u32,
    pub offset: u64,
}

/// One planned reallocation. `dest` is where the object logically lands so
/// incremental executors (the deamortized structure) can keep their index
/// coherent mid-flush.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlannedMove {
    pub id: ObjectId,
    pub from: Extent,
    pub to: Extent,
    pub dest: Place,
}

impl PlannedMove {
    pub fn op(&self) -> StorageOp {
        StorageOp::Move {
            id: self.id,
            from: self.from,
            to: self.to,
        }
    }
}

/// Final resting place of one object after the flush.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FinalPlacement {
    pub id: ObjectId,
    pub size: u64,
    pub class: u32,
    pub offset: u64,
}

/// Everything a flush needs to know, gathered in one pass.
#[derive(Debug, Clone)]
pub(crate) struct FlushInputs {
    pub b: u32,
    /// Absolute start of region `b` (regions below are untouched).
    pub base: u64,
    /// End of the last region before the flush.
    pub old_end: u64,
    /// Live buffered objects in buffers `>= b` (collection order).
    pub buffered: Vec<FlushObj>,
    /// Payload survivors of classes `>= b` in (class, offset) order.
    pub survivors: Vec<FlushObj>,
    /// Per class `b..`: new payload space `V_t(i)`.
    pub new_payload: Vec<u64>,
    /// Per class `b..`: new buffer space `⌊ε′·V_t(i)⌋`.
    pub new_buffer: Vec<u64>,
    /// Σ new payload+buffer — the new suffix size.
    pub s_new: u64,
    /// Total buffer space devoted to flushed buffers before the flush
    /// (the paper's `B`; the deamortized tail is added by its owner).
    pub old_buffer_space: u64,
}

impl FlushInputs {
    /// Absolute start of class `i`'s rebuilt region (`i >= b`).
    pub fn new_region_start(&self, i: u32) -> u64 {
        let rel = (i - self.b) as usize;
        self.base
            + self.new_payload[..rel].iter().sum::<u64>()
            + self.new_buffer[..rel].iter().sum::<u64>()
    }
}

/// Gathers flush inputs for boundary class `b`. `class_volume` must already
/// reflect the triggering update (insert accounted, delete removed), and
/// `extra_buffered` lets the deamortized structure feed its tail-buffer
/// occupants into the plan.
pub(crate) fn gather(layout: &Layout, b: u32, extra_buffered: &[FlushObj]) -> FlushInputs {
    let mut buffered = layout.buffered_objects_with_offsets(b);
    buffered.extend_from_slice(extra_buffered);
    let survivors: Vec<FlushObj> = layout
        .survivors_from(b)
        .into_iter()
        .map(|(id, size, class, offset)| FlushObj {
            id,
            size,
            class,
            offset,
        })
        .collect();

    let classes = layout.class_count() as u32;
    let mut new_payload = Vec::with_capacity((classes - b) as usize);
    let mut new_buffer = Vec::with_capacity((classes - b) as usize);
    for i in b..classes {
        let v = layout.class_volume[i as usize];
        new_payload.push(v);
        new_buffer.push(layout.eps().buffer_quota(v));
    }
    let s_new = new_payload.iter().sum::<u64>() + new_buffer.iter().sum::<u64>();
    let old_buffer_space = (b..classes)
        .map(|i| layout.regions[i as usize].buffer_space)
        .sum();

    FlushInputs {
        b,
        base: layout.region_start(b),
        old_end: layout.regions_end(),
        buffered,
        survivors,
        new_payload,
        new_buffer,
        s_new,
        old_buffer_space,
    }
}

/// Computes every object's final offset: survivors pack to the front of
/// their class's payload (original order preserved), buffered objects fill
/// the tail, and the trigger object — if of class `i` — takes the very last
/// slot of payload `i`.
///
/// Returns `(survivor_finals, buffered_finals, trigger_final)`, the first
/// two parallel to `inputs.survivors` / `inputs.buffered`.
pub(crate) fn final_offsets(
    inputs: &FlushInputs,
    trigger: Option<(u32, u64)>,
) -> (Vec<u64>, Vec<u64>, Option<u64>) {
    let classes = inputs.b + inputs.new_payload.len() as u32;
    // Per-class cursors start at each payload's base.
    let mut cursor: Vec<u64> = (inputs.b..classes)
        .map(|i| inputs.new_region_start(i))
        .collect();

    let mut survivor_finals = Vec::with_capacity(inputs.survivors.len());
    for s in &inputs.survivors {
        let c = &mut cursor[(s.class - inputs.b) as usize];
        survivor_finals.push(*c);
        *c += s.size;
    }
    let mut buffered_finals = Vec::with_capacity(inputs.buffered.len());
    for o in &inputs.buffered {
        let c = &mut cursor[(o.class - inputs.b) as usize];
        buffered_finals.push(*c);
        *c += o.size;
    }
    let trigger_final = trigger.map(|(class, size)| {
        let c = &mut cursor[(class - inputs.b) as usize];
        let at = *c;
        *c += size;
        at
    });

    // Exact fit: each cursor must land exactly at the end of its payload.
    debug_assert!((inputs.b..classes).all(|i| {
        cursor[(i - inputs.b) as usize]
            == inputs.new_region_start(i) + inputs.new_payload[(i - inputs.b) as usize]
    }));

    (survivor_finals, buffered_finals, trigger_final)
}

/// Output of a fully planned flush.
#[derive(Debug, Clone)]
pub(crate) struct FlushPlan {
    pub b: u32,
    pub new_payload: Vec<u64>,
    pub new_buffer: Vec<u64>,
    /// Move schedule; each inner vector is one phase. The amortized plan has
    /// a single phase; the checkpointed plan expects a checkpoint barrier
    /// after every phase.
    pub phases: Vec<Vec<PlannedMove>>,
    /// Final placement of every object in the flushed suffix (movers and
    /// stayers alike), used to rebuild the regions.
    pub finals: Vec<FinalPlacement>,
    /// Where the trigger object ends up (`None` for delete-triggered
    /// flushes).
    pub trigger_final: Option<FinalPlacement>,
    /// Peak structure size reached while executing the plan.
    pub peak: u64,
}

/// Section 2's four-step flush (single phase, memmove semantics).
///
/// `trigger` is `Some((id, size, class))` when an insert triggered the
/// flush; the object is *not yet placed* (§2 defers placement until after
/// the flush) and `trigger_final` tells the caller where to allocate it.
pub(crate) fn plan_amortized(
    inputs: &FlushInputs,
    trigger: Option<(ObjectId, u64, u32)>,
) -> FlushPlan {
    let (survivor_finals, buffered_finals, trigger_final) =
        final_offsets(inputs, trigger.map(|(_, size, class)| (class, size)));

    let overflow_start = (inputs.base + inputs.s_new).max(inputs.old_end);
    let mut moves = Vec::new();

    // Step 1: buffered objects -> overflow segment (always real moves:
    // the overflow lies beyond both old and new suffixes).
    let mut staged_at = Vec::with_capacity(inputs.buffered.len());
    let mut overflow_cursor = overflow_start;
    for o in &inputs.buffered {
        moves.push(PlannedMove {
            id: o.id,
            from: Extent::new(o.offset, o.size),
            to: Extent::new(overflow_cursor, o.size),
            dest: Place::Staging,
        });
        staged_at.push(overflow_cursor);
        overflow_cursor += o.size;
    }
    let peak = (inputs.base + inputs.s_new)
        .max(overflow_cursor)
        .max(inputs.old_end);

    // Step 2: compact survivors left (ascending), removing holes.
    let mut packed = Vec::with_capacity(inputs.survivors.len());
    let mut cursor = inputs.base;
    for s in &inputs.survivors {
        if s.offset != cursor {
            moves.push(PlannedMove {
                id: s.id,
                from: Extent::new(s.offset, s.size),
                to: Extent::new(cursor, s.size),
                dest: Place::Payload,
            });
        }
        packed.push(cursor);
        cursor += s.size;
    }

    // Step 3: unpack right to final positions (descending, so targets never
    // collide with not-yet-moved packed objects).
    for idx in (0..inputs.survivors.len()).rev() {
        let s = &inputs.survivors[idx];
        if packed[idx] != survivor_finals[idx] {
            moves.push(PlannedMove {
                id: s.id,
                from: Extent::new(packed[idx], s.size),
                to: Extent::new(survivor_finals[idx], s.size),
                dest: Place::Payload,
            });
        }
    }

    // Step 4: overflow objects -> payload tails.
    for (idx, o) in inputs.buffered.iter().enumerate() {
        moves.push(PlannedMove {
            id: o.id,
            from: Extent::new(staged_at[idx], o.size),
            to: Extent::new(buffered_finals[idx], o.size),
            dest: Place::Payload,
        });
    }

    let finals = collect_finals(inputs, &survivor_finals, &buffered_finals);
    let trigger_final = trigger.map(|(id, size, class)| FinalPlacement {
        id,
        size,
        class,
        offset: trigger_final.expect("computed with trigger"),
    });

    FlushPlan {
        b: inputs.b,
        new_payload: inputs.new_payload.clone(),
        new_buffer: inputs.new_buffer.clone(),
        phases: vec![moves],
        finals,
        trigger_final,
        peak,
    }
}

/// Section 3.2's phased flush under the database rules.
///
/// `trigger` is `Some((id, size, class, current_offset))`: the checkpointed
/// variant *pre-places* the trigger at the end of the last buffer before
/// flushing, so it participates as a staged object. `extra_buffer_space`
/// adds the deamortized tail buffer to the paper's `B`.
pub(crate) fn plan_checkpointed(
    inputs: &FlushInputs,
    trigger: Option<(ObjectId, u64, u32, u64)>,
    extra_buffer_space: u64,
    delta: u64,
) -> FlushPlan {
    let (survivor_finals, buffered_finals, trigger_final) =
        final_offsets(inputs, trigger.map(|(_, size, class, _)| (class, size)));

    let b_space = inputs.old_buffer_space + extra_buffer_space;
    let s_prime = inputs.base + inputs.s_new;
    let trigger_w = trigger.map_or(0, |(_, w, _, _)| w);
    // L' = S' - w. Staging starts B + 2∆ past everything: the paper uses
    // B + ∆, but its unpack-gap argument silently assumes the trigger slot
    // is the very last allocated address; one extra ∆ makes the Lemma 3.2
    // gap invariant (gap ≥ every phase's address span) unconditional. See
    // the module docs for why old_end joins the max.
    let l_prime = s_prime.saturating_sub(trigger_w);
    let staging_start = l_prime.max(inputs.old_end) + b_space + 2 * delta;

    let mut phases: Vec<Vec<PlannedMove>> = Vec::new();

    // Step A: buffered objects (trigger included) -> staging. One phase.
    let mut step_a = Vec::new();
    let mut staged_at = Vec::with_capacity(inputs.buffered.len());
    let mut cursor = staging_start;
    for o in &inputs.buffered {
        step_a.push(PlannedMove {
            id: o.id,
            from: Extent::new(o.offset, o.size),
            to: Extent::new(cursor, o.size),
            dest: Place::Staging,
        });
        staged_at.push(cursor);
        cursor += o.size;
    }
    let trigger_staged = trigger.map(|(id, size, _, at)| {
        let staged = cursor;
        step_a.push(PlannedMove {
            id,
            from: Extent::new(at, size),
            to: Extent::new(staged, size),
            dest: Place::Staging,
        });
        cursor += size;
        staged
    });
    let staging_end = cursor;
    // Step A is pushed even when empty: the executor places a checkpoint
    // barrier after every phase, and the flush *needs* one before its first
    // pack phase so that holes freed by deletes since the last checkpoint
    // become writable (the freed-space rule).
    phases.push(step_a);

    // Step B: pack survivors right against the staging area, in phases of
    // more than `B` (at most `B + ∆`) moved volume.
    let total_survivor_vol: u64 = inputs.survivors.iter().map(|s| s.size).sum();
    let pack_base = staging_start - total_survivor_vol;
    let mut packed = Vec::with_capacity(inputs.survivors.len());
    let mut acc = pack_base;
    for s in &inputs.survivors {
        packed.push(acc);
        acc += s.size;
    }
    let mut phase = Vec::new();
    let mut phase_vol = 0u64;
    for idx in (0..inputs.survivors.len()).rev() {
        let s = &inputs.survivors[idx];
        if s.offset == packed[idx] {
            continue;
        }
        phase.push(PlannedMove {
            id: s.id,
            from: Extent::new(s.offset, s.size),
            to: Extent::new(packed[idx], s.size),
            dest: Place::Payload,
        });
        phase_vol += s.size;
        if phase_vol > b_space {
            phases.push(std::mem::take(&mut phase));
            phase_vol = 0;
        }
    }
    if !phase.is_empty() {
        phases.push(std::mem::take(&mut phase));
    }

    // Step C: unpack survivors left to their final positions (ascending).
    // Phases are bounded by *target-address span* (the paper's "next B+1 to
    // B+∆ target locations"), not by moved volume: final positions are
    // interspersed with empty buffer segments and reserved staged/trigger
    // slots, so a phase's span exceeds its volume.
    let mut phase_target_start: Option<u64> = None;
    for idx in 0..inputs.survivors.len() {
        let s = &inputs.survivors[idx];
        if packed[idx] == survivor_finals[idx] {
            continue;
        }
        let to = Extent::new(survivor_finals[idx], s.size);
        // Close the phase early if this move would stretch its span past
        // B + ∆ (address gaps between targets can exceed the move's size).
        if let Some(start) = phase_target_start {
            if to.end() - start > b_space + delta {
                phases.push(std::mem::take(&mut phase));
                phase_target_start = None;
            }
        }
        let start = *phase_target_start.get_or_insert(to.offset);
        phase.push(PlannedMove {
            id: s.id,
            from: Extent::new(packed[idx], s.size),
            to,
            dest: Place::Payload,
        });
        if to.end() - start > b_space {
            phases.push(std::mem::take(&mut phase));
            phase_target_start = None;
        }
    }
    if !phase.is_empty() {
        phases.push(std::mem::take(&mut phase));
    }

    // Step D: staged objects -> payload tails; trigger takes its class's
    // last slot. Single phase (staging and targets are disjoint).
    let mut step_d = Vec::new();
    for (idx, o) in inputs.buffered.iter().enumerate() {
        step_d.push(PlannedMove {
            id: o.id,
            from: Extent::new(staged_at[idx], o.size),
            to: Extent::new(buffered_finals[idx], o.size),
            dest: Place::Payload,
        });
    }
    if let (Some((id, size, class, _)), Some(staged), Some(fin)) =
        (trigger, trigger_staged, trigger_final)
    {
        let _ = class;
        step_d.push(PlannedMove {
            id,
            from: Extent::new(staged, size),
            to: Extent::new(fin, size),
            dest: Place::Payload,
        });
    }
    if !step_d.is_empty() {
        phases.push(step_d);
    }

    let finals = collect_finals(inputs, &survivor_finals, &buffered_finals);
    let trigger_final = trigger.map(|(id, size, class, _)| FinalPlacement {
        id,
        size,
        class,
        offset: trigger_final.expect("computed with trigger"),
    });

    FlushPlan {
        b: inputs.b,
        new_payload: inputs.new_payload.clone(),
        new_buffer: inputs.new_buffer.clone(),
        phases,
        finals,
        trigger_final,
        peak: staging_end.max(s_prime).max(inputs.old_end),
    }
}

fn collect_finals(
    inputs: &FlushInputs,
    survivor_finals: &[u64],
    buffered_finals: &[u64],
) -> Vec<FinalPlacement> {
    inputs
        .survivors
        .iter()
        .zip(survivor_finals)
        .chain(inputs.buffered.iter().zip(buffered_finals))
        .map(|(o, &offset)| FinalPlacement {
            id: o.id,
            size: o.size,
            class: o.class,
            offset,
        })
        .collect()
}

/// Applies a plan's final state to the layout: resizes regions `>= b`,
/// rebuilds payload maps, empties buffers, and reindexes every object
/// (trigger included, if any).
pub(crate) fn apply_final_state(layout: &mut Layout, plan: &FlushPlan) {
    let b = plan.b as usize;
    // Size classes created *after* the plan was computed (deamortized
    // mid-flush inserts) lie beyond the plan's suffix; they are zero-sized
    // and untouched here — the next flush will size them.
    let planned = b + plan.new_payload.len();
    for (rel, region) in layout.regions[b..planned].iter_mut().enumerate() {
        region.payload_space = plan.new_payload[rel];
        region.buffer_space = plan.new_buffer[rel];
        region.payload.clear();
        region.payload_live = 0;
        region.buffer.clear();
        region.buffer_used = 0;
    }
    for f in plan.finals.iter().chain(plan.trigger_final.iter()) {
        layout.attach_payload(f.id, f.size, f.class, f.offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{BufKind, Eps, Layout};

    /// Builds a layout with two classes: class 2 (sizes 4..8) and class 3
    /// (sizes 8..16), a hole in payload 2, and an object buffered in
    /// buffer 3.
    fn scenario() -> Layout {
        let mut l = Layout::new(Eps::new(0.5 * 3.0 / 3.0)); // ε=0.5, ε′=1/6
                                                            // class 2: objects 1 (size 4) and 2 (size 5); class 3: object 3 (size 8).
        let k1 = l.account_insert(4);
        let k2 = l.account_insert(5);
        let k3 = l.account_insert(8);
        assert_eq!((k1, k2, k3), (2, 2, 3));
        l.regions[2].payload_space = 14;
        l.regions[2].buffer_space = 2;
        l.regions[3].payload_space = 8;
        l.regions[3].buffer_space = 6;
        l.attach_payload(ObjectId(1), 4, 2, 0);
        // Hole at [4, 9) left by some earlier delete.
        l.attach_payload(ObjectId(2), 5, 2, 9);
        l.attach_payload(ObjectId(3), 8, 3, 16);
        // Object 4 (class 2, size 4) parked in buffer 3 at its start (24+8=... )
        let k4 = l.account_insert(4);
        assert_eq!(k4, 2);
        let off = l.push_buffer_entry(3, 4, 2, BufKind::Obj(ObjectId(4)));
        l.attach_buffered(ObjectId(4), 4, 2, 3, off);
        l
    }

    #[test]
    fn gather_collects_suffix() {
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        assert_eq!(inputs.base, 0);
        assert_eq!(inputs.old_end, 30);
        assert_eq!(inputs.survivors.len(), 3);
        assert_eq!(inputs.buffered.len(), 1);
        // V_t(2) = 4+5+4 = 13, V_t(3) = 8; ε′ = 1/6 → buffers 2 and 1.
        assert_eq!(inputs.new_payload, vec![13, 8]);
        assert_eq!(inputs.new_buffer, vec![2, 1]);
        assert_eq!(inputs.s_new, 24);
        assert_eq!(inputs.old_buffer_space, 8);
    }

    #[test]
    fn final_offsets_pack_exactly() {
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let (sf, bf, tf) = final_offsets(&inputs, None);
        // Survivors of class 2 at 0 and 4; buffered class-2 object at 9;
        // class-3 region starts at 13+2=15.
        assert_eq!(sf, vec![0, 4, 15]);
        assert_eq!(bf, vec![9]);
        assert_eq!(tf, None);
    }

    #[test]
    fn final_offsets_reserve_trigger_slot_last() {
        let mut l = scenario();
        // Trigger: class-2 insert of size 6.
        let k = l.account_insert(6);
        assert_eq!(k, 2);
        let inputs = gather(&l, 2, &[]);
        assert_eq!(inputs.new_payload, vec![19, 8]);
        let (_sf, bf, tf) = final_offsets(&inputs, Some((2, 6)));
        assert_eq!(bf, vec![9]);
        assert_eq!(tf, Some(13), "trigger takes the last class-2 payload slot");
    }

    #[test]
    fn amortized_plan_two_moves_per_object_max() {
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let plan = plan_amortized(&inputs, None);
        assert_eq!(plan.phases.len(), 1);
        let mut per_object = std::collections::HashMap::new();
        for m in &plan.phases[0] {
            *per_object.entry(m.id).or_insert(0) += 1;
        }
        assert!(per_object.values().all(|&n| n <= 2), "{per_object:?}");
        // Buffered object 4 moves exactly twice (to overflow and back).
        assert_eq!(per_object[&ObjectId(4)], 2);
    }

    #[test]
    fn amortized_plan_is_replayable_and_lands_on_finals() {
        // Replay the move stream against a simple position tracker and check
        // the final positions match `finals`.
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let plan = plan_amortized(&inputs, None);
        let mut pos: std::collections::HashMap<ObjectId, Extent> =
            l.index.iter().map(|(&id, e)| (id, e.extent())).collect();
        for m in &plan.phases[0] {
            assert_eq!(pos[&m.id], m.from, "chained from-extents must match");
            pos.insert(m.id, m.to);
        }
        for f in &plan.finals {
            assert_eq!(pos[&f.id], Extent::new(f.offset, f.size), "{:?}", f.id);
        }
        // Invariant 2.4: class-2 payload exactly V_t = 13, buffer 2.
        assert_eq!(plan.new_payload[0], 13);
        assert_eq!(plan.new_buffer[0], 2);
    }

    #[test]
    fn checkpointed_plan_moves_never_self_overlap() {
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let plan = plan_checkpointed(&inputs, None, 0, l.delta());
        for phase in &plan.phases {
            for m in phase {
                assert!(
                    !m.from.overlaps(&m.to),
                    "{:?}: {} -> {}",
                    m.id,
                    m.from,
                    m.to
                );
            }
        }
    }

    #[test]
    fn checkpointed_phases_bounded_by_b_plus_delta() {
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let delta = l.delta();
        let b_space = inputs.old_buffer_space;
        let plan = plan_checkpointed(&inputs, None, 0, delta);
        for phase in &plan.phases {
            let vol: u64 = phase.iter().map(|m| m.to.len).sum();
            assert!(vol <= b_space + delta, "phase volume {vol} > B+∆");
        }
    }

    #[test]
    fn checkpointed_phase_sources_and_targets_disjoint() {
        // Lemma 3.2: within each phase, every source extent is disjoint from
        // every target extent.
        let l = scenario();
        let inputs = gather(&l, 2, &[]);
        let plan = plan_checkpointed(&inputs, None, 0, l.delta());
        for phase in &plan.phases {
            for a in phase {
                for b in phase {
                    assert!(
                        !a.from.overlaps(&b.to),
                        "{:?} source {} overlaps {:?} target {}",
                        a.id,
                        a.from,
                        b.id,
                        b.to
                    );
                }
            }
        }
    }

    #[test]
    fn checkpointed_plan_includes_preplaced_trigger() {
        let mut l = scenario();
        let k = l.account_insert(6);
        let inputs = gather(&l, 2, &[]);
        // Trigger pre-placed at the end of the last object (30 is past all).
        let plan = plan_checkpointed(&inputs, Some((ObjectId(9), 6, k, 30)), 0, l.delta());
        let trig = plan.trigger_final.expect("trigger placed");
        assert_eq!(trig.offset, 13);
        // The trigger moves exactly twice: to staging, then to its slot.
        let trig_moves: usize = plan
            .phases
            .iter()
            .flatten()
            .filter(|m| m.id == ObjectId(9))
            .count();
        assert_eq!(trig_moves, 2);
    }

    #[test]
    fn apply_final_state_rebuilds_regions() {
        let mut l = scenario();
        let inputs = gather(&l, 2, &[]);
        let plan = plan_amortized(&inputs, None);
        apply_final_state(&mut l, &plan);
        assert_eq!(l.regions[2].payload_space, 13);
        assert_eq!(l.regions[2].payload_live, 13);
        assert_eq!(l.regions[2].buffer_space, 2);
        assert!(l.regions[2].buffer.is_empty());
        assert_eq!(l.regions[3].payload_space, 8);
        crate::validate::check_invariants(&l).unwrap();
    }

    #[test]
    fn empty_flush_is_wellformed() {
        // A flush with no survivors and no buffered objects (everything was
        // deleted) just resizes regions.
        let mut l = Layout::new(Eps::new(0.5));
        l.ensure_class(2);
        l.regions[2].payload_space = 20;
        l.regions[2].buffer_space = 3;
        let inputs = gather(&l, 0, &[]);
        let plan = plan_amortized(&inputs, None);
        assert!(plan.phases[0].is_empty());
        apply_final_state(&mut l, &plan);
        assert_eq!(l.regions_end(), 0);
        crate::validate::check_invariants(&l).unwrap();
    }
}
