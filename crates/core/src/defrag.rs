//! The Theorem 2.7 cost-oblivious defragmenter.
//!
//! Given a set of objects of total volume `V` currently allocated in at most
//! `(1+ε)V` space and an arbitrary comparison function, sorts the objects
//! in place using
//!
//! * at most `(1+ε)V + ∆` total space at any time, and
//! * total movement cost `O((1/ε) log(1/ε))` times the cost of allocating
//!   all objects once — for every subadditive cost function, since the
//!   machinery is the cost-oblivious reallocator used as a black box.
//!
//! The procedure: crunch everything into the rightmost `V` cells (routing
//! self-overlapping moves through the `∆` scratch area past the array),
//! then repeatedly pull the leftmost suffix object through the scratch into
//! a [`CostObliviousReallocator`] confined to the growing prefix; finally
//! extract objects in reverse sorted order, placing each just before its
//! successor at the right end. The prefix structure never reaches the
//! shrinking suffix: when `W` volume is inside, the prefix needs at most
//! `(1+O(ε′))·W` cells while the suffix starts at `(1+ε)V − (V−W) =
//! εV + W` — exactly the paper's argument.

use std::cmp::Ordering;
use std::collections::HashMap;

use realloc_common::{Extent, ObjectId, Reallocator, StorageOp};

use crate::amortized::CostObliviousReallocator;
use crate::layout::Eps;

/// Outcome of a defragmentation run.
#[derive(Debug, Clone)]
pub struct DefragReport {
    /// The full move schedule (replayable against a relaxed-mode store).
    pub ops: Vec<StorageOp>,
    /// Array budget `(1+ε)V` used for the sort.
    pub budget: u64,
    /// Scratch area `[budget, budget + ∆)`.
    pub scratch: Extent,
    /// Largest address (exclusive) written at any point — the theorem
    /// bounds this by `budget + ∆`.
    pub peak_space: u64,
    /// Final sorted placements, ascending by the comparison function.
    pub sorted: Vec<(ObjectId, Extent)>,
    /// Moves per object, for the `O((1/ε) log(1/ε))` amortized bound.
    pub total_moves: usize,
    /// Maximum number of times any single object moved.
    pub max_moves_per_object: usize,
    /// True if the growing prefix ever collided with the shrinking suffix —
    /// always false if the theorem (and our constants) hold.
    pub prefix_suffix_collision: bool,
}

impl DefragReport {
    /// Average moves per object.
    pub fn avg_moves_per_object(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.total_moves as f64 / self.sorted.len() as f64
        }
    }
}

/// Errors rejected before any move is planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DefragError {
    /// Two input extents overlap.
    OverlappingInput(ObjectId, ObjectId),
    /// An input object has zero length.
    ZeroSize(ObjectId),
    /// The input allocation exceeds `(1+ε)V` — the theorem's precondition.
    InputTooSparse {
        /// Cells the input allocation spans.
        used: u64,
        /// The `(1+ε)V` budget it exceeds.
        budget: u64,
    },
    /// Duplicate object id in the input.
    DuplicateId(ObjectId),
}

impl std::fmt::Display for DefragError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DefragError::OverlappingInput(a, b) => write!(f, "{a} and {b} overlap"),
            DefragError::ZeroSize(id) => write!(f, "{id} has zero length"),
            DefragError::InputTooSparse { used, budget } => {
                write!(
                    f,
                    "input uses {used} cells, more than the (1+ε)V = {budget} budget"
                )
            }
            DefragError::DuplicateId(id) => write!(f, "{id} appears twice"),
        }
    }
}

impl std::error::Error for DefragError {}

/// Sorts `objects` (current placements) according to `compare`, in
/// `(1+ε)V + ∆` space. See the module docs for the algorithm.
pub fn defragment<F>(
    objects: &[(ObjectId, Extent)],
    eps: f64,
    mut compare: F,
) -> Result<DefragReport, DefragError>
where
    F: FnMut(ObjectId, ObjectId) -> Ordering,
{
    let eps = Eps::new(eps);
    validate_input(objects)?;

    let volume: u64 = objects.iter().map(|(_, e)| e.len).sum();
    let delta: u64 = objects.iter().map(|(_, e)| e.len).max().unwrap_or(0);
    let used: u64 = objects.iter().map(|(_, e)| e.end()).max().unwrap_or(0);
    let budget = (used).max(volume + (eps.value() * volume as f64).floor() as u64);
    if used > budget {
        return Err(DefragError::InputTooSparse { used, budget });
    }
    let scratch = Extent::new(budget, delta);

    let mut ops: Vec<StorageOp> = Vec::new();
    let mut pos: HashMap<ObjectId, Extent> = objects.iter().map(|&(id, e)| (id, e)).collect();
    let mut moves: HashMap<ObjectId, usize> = HashMap::new();
    let mut peak = used;
    let mut collision = false;

    let emit_move = |ops: &mut Vec<StorageOp>,
                     pos: &mut HashMap<ObjectId, Extent>,
                     moves: &mut HashMap<ObjectId, usize>,
                     peak: &mut u64,
                     id: ObjectId,
                     to: Extent| {
        let from = pos[&id];
        if from == to {
            return;
        }
        ops.push(StorageOp::Move { id, from, to });
        pos.insert(id, to);
        *moves.entry(id).or_insert(0) += 1;
        *peak = (*peak).max(to.end());
    };

    // --- Step 1: crunch everything into the rightmost V cells. ---
    let mut by_offset: Vec<ObjectId> = objects.iter().map(|&(id, _)| id).collect();
    by_offset.sort_unstable_by_key(|id| std::cmp::Reverse(pos[id].offset));
    let mut cursor = budget;
    // Suffix order (ascending offset) for phase 2.
    let mut suffix: std::collections::VecDeque<ObjectId> = std::collections::VecDeque::new();
    for id in by_offset {
        let size = pos[&id].len;
        let target = Extent::new(cursor - size, size);
        if pos[&id].overlaps(&target) && pos[&id] != target {
            // Nonoverlap via the scratch area: two moves.
            emit_move(
                &mut ops,
                &mut pos,
                &mut moves,
                &mut peak,
                id,
                scratch.at_len(size),
            );
        }
        emit_move(&mut ops, &mut pos, &mut moves, &mut peak, id, target);
        cursor = target.offset;
        suffix.push_front(id);
    }

    // --- Step 2: leftmost suffix object -> scratch -> prefix reallocator. ---
    let mut inner = CostObliviousReallocator::with_eps(eps);
    let mut suffix_start = cursor;
    while let Some(id) = suffix.pop_front() {
        let size = pos[&id].len;
        emit_move(
            &mut ops,
            &mut pos,
            &mut moves,
            &mut peak,
            id,
            scratch.at_len(size),
        );
        suffix_start += size;
        let outcome = inner.insert(id, size).expect("fresh id");
        // Translate the inner Allocate into a physical move from scratch;
        // pass flush moves through. Any write reaching into the remaining
        // suffix (at `suffix_start`) would be a prefix/suffix collision.
        for op in outcome.ops {
            match op {
                StorageOp::Allocate { id: oid, to } => {
                    debug_assert_eq!(oid, id);
                    collision |= to.end() > suffix_start;
                    emit_move(&mut ops, &mut pos, &mut moves, &mut peak, id, to);
                }
                StorageOp::Move { id: oid, to, .. } => {
                    collision |= to.end() > suffix_start;
                    emit_move(&mut ops, &mut pos, &mut moves, &mut peak, oid, to);
                }
                StorageOp::Free { .. } | StorageOp::CheckpointBarrier => unreachable!(),
            }
        }
    }

    // --- Step 3: extract in reverse sorted order to the right end. ---
    let mut order: Vec<ObjectId> = objects.iter().map(|&(id, _)| id).collect();
    order.sort_by(|&a, &b| compare(a, b));
    let mut cursor = budget;
    let mut sorted_rev: Vec<(ObjectId, Extent)> = Vec::with_capacity(order.len());
    for &id in order.iter().rev() {
        let size = pos[&id].len;
        let slot = Extent::new(cursor - size, size);
        // Park the object in the scratch first: the inner delete's flush
        // may compact over its old cells, and its final slot only becomes
        // safely free *after* the prefix shrinks below `slot.offset`
        // (the paper's (1+ε)W ≤ εV + W argument applies post-delete).
        emit_move(
            &mut ops,
            &mut pos,
            &mut moves,
            &mut peak,
            id,
            scratch.at_len(size),
        );
        let outcome = inner.delete(id).expect("still inside");
        for op in outcome.ops {
            match op {
                StorageOp::Move { id: oid, to, .. } => {
                    // Inner compaction writes reaching into the current
                    // suffix (which starts at slot.end()) are collisions.
                    collision |= to.end() > slot.end();
                    emit_move(&mut ops, &mut pos, &mut moves, &mut peak, oid, to);
                }
                StorageOp::Free { .. } => {} // superseded by the scratch move
                StorageOp::Allocate { .. } | StorageOp::CheckpointBarrier => unreachable!(),
            }
        }
        // Prefix has shrunk; the slot is now disjoint from it.
        collision |= inner.structure_size() > slot.offset;
        emit_move(&mut ops, &mut pos, &mut moves, &mut peak, id, slot);
        cursor = slot.offset;
        sorted_rev.push((id, slot));
    }
    sorted_rev.reverse();

    Ok(DefragReport {
        total_moves: moves.values().sum(),
        max_moves_per_object: moves.values().copied().max().unwrap_or(0),
        ops,
        budget,
        scratch,
        peak_space: peak,
        sorted: sorted_rev,
        prefix_suffix_collision: collision,
    })
}

fn validate_input(objects: &[(ObjectId, Extent)]) -> Result<(), DefragError> {
    let mut seen = std::collections::HashSet::new();
    for &(id, e) in objects {
        if e.len == 0 {
            return Err(DefragError::ZeroSize(id));
        }
        if !seen.insert(id) {
            return Err(DefragError::DuplicateId(id));
        }
    }
    let mut sorted: Vec<&(ObjectId, Extent)> = objects.iter().collect();
    sorted.sort_unstable_by_key(|(_, e)| e.offset);
    for pair in sorted.windows(2) {
        if pair[0].1.overlaps(&pair[1].1) {
            return Err(DefragError::OverlappingInput(pair[0].0, pair[1].0));
        }
    }
    Ok(())
}

trait ExtentExt {
    fn at_len(&self, len: u64) -> Extent;
}

impl ExtentExt for Extent {
    /// The first `len` cells of the extent.
    fn at_len(&self, len: u64) -> Extent {
        Extent::new(self.offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    /// A fragmented allocation: objects with holes between them.
    fn fragmented(sizes: &[u64], gap: u64) -> Vec<(ObjectId, Extent)> {
        let mut at = 0;
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let e = Extent::new(at, s);
                at += s + gap;
                (id(i as u64), e)
            })
            .collect()
    }

    /// Replays ops with memmove semantics and position checking.
    fn replay(objects: &[(ObjectId, Extent)], ops: &[StorageOp]) -> HashMap<ObjectId, Extent> {
        let mut pos: HashMap<ObjectId, Extent> = objects.iter().copied().collect();
        for op in ops {
            match *op {
                StorageOp::Move { id, from, to } => {
                    assert_eq!(pos[&id], from, "{id} chained from-extent mismatch");
                    // No clobbering of *other* objects.
                    for (&other, &e) in &pos {
                        if other != id {
                            assert!(!e.overlaps(&to), "{id} -> {to} clobbers {other} at {e}");
                        }
                    }
                    pos.insert(id, to);
                }
                _ => panic!("defrag emits only moves"),
            }
        }
        pos
    }

    #[test]
    fn sorts_by_size_within_budget() {
        // Input uses ~1.5x its volume; sort by size, ε = 0.5.
        let objects = fragmented(&[7, 3, 12, 5, 9, 1, 4], 4);
        let volume: u64 = objects.iter().map(|(_, e)| e.len).sum();
        let delta = 12;
        let sizes: HashMap<ObjectId, u64> = objects.iter().map(|&(i, e)| (i, e.len)).collect();
        let report = defragment(&objects, 0.5, |a, b| sizes[&a].cmp(&sizes[&b])).unwrap();

        assert!(!report.prefix_suffix_collision);
        assert!(
            report.peak_space <= report.budget + delta,
            "peak {}",
            report.peak_space
        );
        // Final layout is sorted ascending and contiguous at the right end.
        let final_pos = replay(&objects, &report.ops);
        let mut prev_size = 0;
        let mut expected_offset = report.budget - volume;
        for (oid, ext) in &report.sorted {
            assert_eq!(final_pos[oid], *ext);
            assert!(sizes[oid] >= prev_size, "not sorted");
            assert_eq!(ext.offset, expected_offset, "not contiguous");
            prev_size = sizes[oid];
            expected_offset = ext.end();
        }
        assert_eq!(expected_offset, report.budget);
    }

    #[test]
    fn sort_by_arbitrary_key_reverse_id() {
        let objects = fragmented(&[4, 4, 4, 4], 2);
        let report = defragment(&objects, 0.5, |a, b| b.0.cmp(&a.0)).unwrap();
        let ids: Vec<u64> = report.sorted.iter().map(|(i, _)| i.0).collect();
        assert_eq!(ids, vec![3, 2, 1, 0]);
    }

    #[test]
    fn already_compact_input_works() {
        // No holes at all; the budget extends the array by εV.
        let objects = fragmented(&[8, 8, 8, 8], 0);
        let report = defragment(&objects, 0.5, |a, b| a.0.cmp(&b.0)).unwrap();
        assert!(!report.prefix_suffix_collision);
        replay(&objects, &report.ops);
    }

    #[test]
    fn single_object_needs_no_moves_but_stays_valid() {
        let objects = vec![(id(0), Extent::new(0, 10))];
        let report = defragment(&objects, 0.5, |a, b| a.0.cmp(&b.0)).unwrap();
        replay(&objects, &report.ops);
        assert_eq!(report.sorted.len(), 1);
        assert!(report.peak_space <= report.budget + 10);
    }

    #[test]
    fn moves_per_object_bounded() {
        // 60 objects, ε=0.5: the amortized bound is O((1/ε)log(1/ε)) ≈ small.
        let sizes: Vec<u64> = (0..60).map(|i| 1 + (i * 5) % 32).collect();
        let objects = fragmented(&sizes, 3);
        let szmap: HashMap<ObjectId, u64> = objects.iter().map(|&(i, e)| (i, e.len)).collect();
        let report = defragment(&objects, 0.5, |a, b| szmap[&a].cmp(&szmap[&b])).unwrap();
        assert!(!report.prefix_suffix_collision);
        let avg = report.avg_moves_per_object();
        assert!(avg <= 16.0, "average moves per object too high: {avg}");
        replay(&objects, &report.ops);
    }

    #[test]
    fn tight_eps_stays_within_budget() {
        let sizes: Vec<u64> = (0..80).map(|i| 1 + (i * 3) % 16).collect();
        let objects = fragmented(&sizes, 1);
        let report = defragment(&objects, 0.125, |a, b| a.0.cmp(&b.0)).unwrap();
        assert!(
            !report.prefix_suffix_collision,
            "prefix hit suffix at ε=1/8"
        );
        let delta = sizes.iter().copied().max().unwrap();
        assert!(report.peak_space <= report.budget + delta);
        replay(&objects, &report.ops);
    }

    #[test]
    fn rejects_bad_input() {
        let overlapping = vec![(id(0), Extent::new(0, 10)), (id(1), Extent::new(5, 10))];
        assert!(matches!(
            defragment(&overlapping, 0.5, |a, b| a.0.cmp(&b.0)),
            Err(DefragError::OverlappingInput(..))
        ));
        let zero = vec![(id(0), Extent::new(0, 0))];
        assert!(matches!(
            defragment(&zero, 0.5, |a, b| a.0.cmp(&b.0)),
            Err(DefragError::ZeroSize(..))
        ));
        let dup = vec![(id(0), Extent::new(0, 4)), (id(0), Extent::new(10, 4))];
        assert!(matches!(
            defragment(&dup, 0.5, |a, b| a.0.cmp(&b.0)),
            Err(DefragError::DuplicateId(..))
        ));
    }

    #[test]
    fn empty_input_is_trivially_sorted() {
        let report = defragment(&[], 0.5, |a: ObjectId, b: ObjectId| a.0.cmp(&b.0)).unwrap();
        assert!(report.ops.is_empty());
        assert_eq!(report.peak_space, 0);
    }
}
