//! ASCII rendering of the region layout — the tooling behind the Figure 2 /
//! Figure 3 reproductions and the examples' visual output.

use crate::layout::RegionView;

/// Renders region views as a one-line-per-class bar diagram:
///
/// ```text
/// class 3 @    64 |████████░░----|··|   payload 10/14, buffer 2/2
/// ```
///
/// `█` live payload, `░` payload holes, `-` reserved-but-unassigned payload,
/// `·` buffer space (uppercase `▪` where used). `cell_per_char` controls
/// horizontal scale.
pub fn render_regions(views: &[RegionView], cell_per_char: u64) -> String {
    let scale = cell_per_char.max(1);
    let mut out = String::new();
    for v in views {
        if v.payload_space == 0 && v.buffer_space == 0 {
            continue;
        }
        let chars = |cells: u64| (cells / scale) as usize;
        let live = chars(v.payload_live);
        let holes = chars(v.payload_space - v.payload_live);
        let buf_used = chars(v.buffer_used);
        let buf_free = chars(v.buffer_space - v.buffer_used);
        out.push_str(&format!(
            "class {:>2} @ {:>8} |{}{}|{}{}|  payload {}/{} ({} objs), buffer {}/{} ({} entries)\n",
            v.class,
            v.start,
            "\u{2588}".repeat(live),
            "\u{2591}".repeat(holes),
            "\u{25aa}".repeat(buf_used),
            "\u{b7}".repeat(buf_free),
            v.payload_live,
            v.payload_space,
            v.payload_objects,
            v.buffer_used,
            v.buffer_space,
            v.buffer_entries,
        ));
    }
    if out.is_empty() {
        out.push_str("(empty layout)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(class: u32, start: u64) -> RegionView {
        RegionView {
            class,
            start,
            payload_space: 16,
            buffer_space: 4,
            payload_live: 12,
            buffer_used: 2,
            payload_objects: 3,
            buffer_entries: 1,
        }
    }

    #[test]
    fn renders_one_line_per_nonempty_region() {
        let s = render_regions(&[view(2, 0), view(3, 20)], 1);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("class  2 @        0"));
        assert!(s.contains("payload 12/16 (3 objs)"));
    }

    #[test]
    fn skips_empty_regions() {
        let empty = RegionView {
            class: 0,
            start: 0,
            payload_space: 0,
            buffer_space: 0,
            payload_live: 0,
            buffer_used: 0,
            payload_objects: 0,
            buffer_entries: 0,
        };
        let s = render_regions(&[empty, view(5, 0)], 2);
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("class  5"));
    }

    #[test]
    fn empty_layout_message() {
        assert_eq!(render_regions(&[], 1), "(empty layout)\n");
    }
}
