#![warn(missing_docs)]
//! # Cost-oblivious storage reallocation
//!
//! A faithful implementation of *Cost-Oblivious Storage Reallocation*
//! (Bender, Farach-Colton, Fekete, Fineman, Gilbert — PODS 2014).
//!
//! Storage reallocation generalizes memory allocation by letting the
//! allocator *move* previously allocated objects at a cost given by an
//! **unknown** monotonically increasing subadditive function `f(w)` of the
//! object size. The algorithms here are *cost oblivious*: they never consult
//! `f`, yet simultaneously achieve, for every such `f`:
//!
//! * footprint at most `(1+ε)` times the total volume of active objects, and
//! * total reallocation cost at most `O((1/ε) log(1/ε))` times the total
//!   allocation cost (Theorem 2.1).
//!
//! ## The four variants
//!
//! | Type | Paper | Guarantee added |
//! |------|-------|-----------------|
//! | [`CostObliviousReallocator`] | §2 | the baseline amortized algorithm |
//! | [`CheckpointedReallocator`] | §3.2 | durability: nonoverlapping moves, the freed-space rule, `O(1/ε)` checkpoints per flush, `+∆` space |
//! | [`DeamortizedReallocator`] | §3.3 | worst-case per-update cost `O((1/ε)·w·f(1) + f(∆))` |
//! | [`NearlyQuadraticReallocator`] | FS 2024 | hole recycling: cancelling updates move nothing, `Õ(ε^{-1/2})`-shaped overhead on churn |
//!
//! plus [`defrag::defragment`], the Theorem 2.7 cost-oblivious defragmenter
//! (sort objects by an arbitrary comparison function in `(1+ε)V + ∆` space).
//!
//! ## How it works (one paragraph)
//!
//! Objects are bucketed into power-of-two size classes. The address space is
//! a sequence of *regions*, one per class in increasing order; each region
//! is a *payload segment* (only that class) followed by a small *buffer
//! segment* (an `ε′` fraction, holding recent inserts of that class or
//! smaller, plus *dummy records* for recent deletes). When an update finds
//! no buffer space, a *buffer flush* rebuilds a suffix of regions: because
//! buffers admit only same-or-smaller classes, the `Θ(1/ε′)` flushes a
//! buffered object can pay for only ever move *larger* (cheaper per unit
//! size, by subadditivity) objects — that single ordering trick is what
//! makes one algorithm optimal for every subadditive cost function at once.

pub mod amortized;
pub mod checkpointed;
pub mod deamortized;
pub mod defrag;
pub mod layout;
pub mod nearly_quadratic;
pub mod plan;
pub mod render;
pub mod validate;

pub use amortized::CostObliviousReallocator;
pub use checkpointed::CheckpointedReallocator;
pub use deamortized::DeamortizedReallocator;
pub use defrag::{defragment, DefragReport};
pub use layout::{Eps, RegionView, VolumeSummary};
pub use nearly_quadratic::NearlyQuadraticReallocator;
pub use validate::InvariantViolation;

// Every paper variant must stay `Send` so the sharded serving layer
// (`realloc-engine`) can own one per worker thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CostObliviousReallocator>();
    assert_send::<CheckpointedReallocator>();
    assert_send::<DeamortizedReallocator>();
    assert_send::<NearlyQuadraticReallocator>();
};
