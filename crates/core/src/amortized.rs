//! The Section 2 cost-oblivious storage reallocator.
//!
//! `(1+ε, O((1/ε) log(1/ε)))`-competitive with respect to every monotone
//! subadditive cost function (Theorem 2.1). Amortized: a single request may
//! flush — and therefore reallocate — every active object, but each object
//! is charged only `O((1/ε) log(1/ε))` moves over its lifetime.

use realloc_common::{size_class, Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

use crate::layout::{BufKind, Eps, Layout, RegionView};
use crate::plan::{apply_final_state, gather, plan_amortized};
use crate::validate::{check_invariants, InvariantViolation};

/// The paper's Section 2 algorithm. See the crate docs for the design;
/// construct with [`CostObliviousReallocator::new`] and drive through the
/// [`Reallocator`] trait.
///
/// ```
/// use realloc_core::CostObliviousReallocator;
/// use realloc_common::{ObjectId, Reallocator};
///
/// let mut r = CostObliviousReallocator::new(0.5);
/// r.insert(ObjectId(1), 100).unwrap();
/// r.insert(ObjectId(2), 40).unwrap();
/// r.delete(ObjectId(1)).unwrap();
/// // Footprint stays within (1+ε)·V at every step.
/// assert!(r.structure_size() as f64 <= 1.5 * r.live_volume() as f64);
/// ```
#[derive(Debug, Clone)]
pub struct CostObliviousReallocator {
    layout: Layout,
    flushes: u64,
}

impl CostObliviousReallocator {
    /// Creates a reallocator with footprint slack `ε` (`0 < ε ≤ 1/2`).
    pub fn new(eps: f64) -> Self {
        Self::with_eps(Eps::new(eps))
    }

    /// Creates a reallocator from a pre-built (possibly ablated) [`Eps`].
    pub fn with_eps(eps: Eps) -> Self {
        CostObliviousReallocator {
            layout: Layout::new(eps),
            flushes: 0,
        }
    }

    /// The footprint parameter.
    pub fn eps(&self) -> Eps {
        self.layout.eps()
    }

    /// One-call snapshot of the volume accounting (see
    /// [`VolumeSummary`](crate::layout::VolumeSummary)).
    pub fn volume_summary(&self) -> crate::layout::VolumeSummary {
        self.layout.volume_summary()
    }

    /// Number of buffer flushes performed so far.
    /// Number of buffer flushes performed (or started) so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Read-only view of the region layout (Figure 2).
    /// Read-only view of the region layout (paper Figure 2).
    pub fn region_views(&self) -> Vec<RegionView> {
        self.layout.region_views()
    }

    /// Checks the paper's structural invariants; tests call this after
    /// every request.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        check_invariants(&self.layout)
    }

    /// Creates the region for a brand-new largest size class and places the
    /// object in its payload (§2: total space grows by `w + ε′w`).
    fn insert_new_largest_class(&mut self, id: ObjectId, size: u64, class: u32) -> Outcome {
        let offset = {
            let region = &mut self.layout.regions[class as usize];
            region.payload_space = size;
            region.buffer_space = self.layout.eps.buffer_quota(size);
            self.layout.region_start(class)
        };
        self.layout.attach_payload(id, size, class, offset);
        let end = self.layout.regions_end();
        Outcome {
            ops: vec![StorageOp::Allocate {
                id,
                to: Extent::new(offset, size),
            }],
            flushed: false,
            peak_structure_size: end,
            checkpoints: 0,
        }
    }

    /// Runs a flush with boundary derived from `trigger_class`; for inserts
    /// `trigger` carries the pending object, for deletes it is `None`.
    fn flush(&mut self, trigger: Option<(ObjectId, u64, u32)>, trigger_class: u32) -> Outcome {
        let b = self.layout.boundary_class(trigger_class);
        let inputs = gather(&self.layout, b, &[]);
        let plan = plan_amortized(&inputs, trigger);

        let mut ops: Vec<StorageOp> = plan.phases.iter().flatten().map(|m| m.op()).collect();
        if let Some(t) = plan.trigger_final {
            ops.push(StorageOp::Allocate {
                id: t.id,
                to: Extent::new(t.offset, t.size),
            });
        }
        apply_final_state(&mut self.layout, &plan);
        self.flushes += 1;
        Outcome {
            ops,
            flushed: true,
            peak_structure_size: plan.peak.max(self.layout.regions_end()),
            checkpoints: 0,
        }
    }
}

impl Reallocator for CostObliviousReallocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.layout.index.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let class = size_class(size);
        let is_new_largest = class as usize >= self.layout.class_count();
        // V_t counts the new object before it is placed (§2).
        self.layout.account_insert(size);

        if is_new_largest {
            return Ok(self.insert_new_largest_class(id, size, class));
        }
        if let Some(j) = self.layout.find_buffer(class, size) {
            let offset = self
                .layout
                .push_buffer_entry(j, size, class, BufKind::Obj(id));
            self.layout.attach_buffered(id, size, class, j, offset);
            return Ok(Outcome {
                ops: vec![StorageOp::Allocate {
                    id,
                    to: Extent::new(offset, size),
                }],
                flushed: false,
                peak_structure_size: self.layout.regions_end(),
                checkpoints: 0,
            });
        }
        Ok(self.flush(Some((id, size, class)), class))
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let entry = self
            .layout
            .detach_object(id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.layout.account_delete(entry.size, entry.class);
        let free_op = StorageOp::Free {
            id,
            at: entry.extent(),
        };

        // An object deleted from a buffer becomes its own dummy record; a
        // payload delete must charge a dummy record to some buffer.
        let needs_dummy = matches!(entry.place, crate::layout::Place::Payload);
        if needs_dummy {
            if let Some(j) = self.layout.find_buffer(entry.class, entry.size) {
                self.layout
                    .push_buffer_entry(j, entry.size, entry.class, BufKind::Tombstone);
            } else {
                let mut outcome = self.flush(None, entry.class);
                outcome.ops.insert(0, free_op);
                return Ok(outcome);
            }
        }
        Ok(Outcome {
            ops: vec![free_op],
            flushed: false,
            peak_structure_size: self.layout.regions_end(),
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.layout.extent_of(id)
    }

    fn live_volume(&self) -> u64 {
        self.layout.live_volume()
    }

    fn structure_size(&self) -> u64 {
        self.layout.regions_end()
    }

    fn footprint(&self) -> u64 {
        self.layout.last_object_end()
    }

    fn max_object_size(&self) -> u64 {
        self.layout.delta()
    }

    fn name(&self) -> &'static str {
        "cost-oblivious"
    }

    fn live_count(&self) -> usize {
        self.layout.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    /// Inserts `sizes` with sequential ids starting at `base`, validating
    /// invariants and the footprint bound after every request.
    fn insert_all(r: &mut CostObliviousReallocator, base: u64, sizes: &[u64]) {
        for (i, &s) in sizes.iter().enumerate() {
            r.insert(id(base + i as u64), s).unwrap();
            r.validate().unwrap();
            assert_footprint(r);
        }
    }

    fn assert_footprint(r: &CostObliviousReallocator) {
        let bound = (1.0 + r.eps().value()) * r.live_volume() as f64;
        assert!(
            r.structure_size() as f64 <= bound + 1e-9,
            "structure {} > (1+ε)V = {bound}",
            r.structure_size()
        );
    }

    #[test]
    fn first_insert_creates_region() {
        let mut r = CostObliviousReallocator::new(0.5);
        let out = r.insert(id(1), 100).unwrap();
        assert_eq!(out.ops.len(), 1);
        assert!(matches!(out.ops[0], StorageOp::Allocate { .. }));
        assert_eq!(r.extent_of(id(1)), Some(Extent::new(0, 100)));
        // payload 100 + buffer ⌊100/6⌋ = 16.
        assert_eq!(r.structure_size(), 116);
        r.validate().unwrap();
        assert_footprint(&r);
    }

    #[test]
    fn duplicate_and_unknown_ids_rejected() {
        let mut r = CostObliviousReallocator::new(0.5);
        r.insert(id(1), 10).unwrap();
        assert!(matches!(r.insert(id(1), 10), Err(ReallocError::DuplicateId(i)) if i == id(1)));
        assert!(matches!(r.delete(id(2)), Err(ReallocError::UnknownId(i)) if i == id(2)));
        assert!(matches!(r.insert(id(3), 0), Err(ReallocError::ZeroSize)));
    }

    #[test]
    fn smaller_objects_go_to_buffers() {
        let mut r = CostObliviousReallocator::new(0.5);
        r.insert(id(1), 600).unwrap(); // class 9, buffer = 100
        let out = r.insert(id(2), 30).unwrap(); // fits buffer 9
        assert!(!out.flushed);
        assert_eq!(out.ops.len(), 1);
        r.validate().unwrap();
        let views = r.region_views();
        assert_eq!(views[9].buffer_used, 30);
    }

    #[test]
    fn buffer_exhaustion_triggers_flush_and_empties_buffers() {
        let mut r = CostObliviousReallocator::new(0.5);
        r.insert(id(1), 600).unwrap();
        let mut n = 2;
        // Fill the buffer until a flush happens.
        let flushed_at = loop {
            let out = r.insert(id(n), 30).unwrap();
            r.validate().unwrap();
            assert_footprint(&r);
            if out.flushed {
                break n;
            }
            n += 1;
            assert!(n < 100, "flush never triggered");
        };
        assert!(flushed_at > 2);
        // All buffers empty after the flush (Invariant 2.4).
        for v in r.region_views() {
            assert_eq!(v.buffer_used, 0, "class {} buffer not empty", v.class);
        }
        // Every object still addressable.
        for i in 1..=flushed_at {
            assert!(r.extent_of(id(i)).is_some(), "lost object {i}");
        }
    }

    #[test]
    fn delete_from_buffer_leaves_tombstone_consuming_space() {
        let mut r = CostObliviousReallocator::new(0.5);
        r.insert(id(1), 600).unwrap();
        r.insert(id(2), 30).unwrap();
        let used_before = r.region_views()[9].buffer_used;
        let out = r.delete(id(2)).unwrap();
        assert_eq!(out.ops.len(), 1);
        assert!(matches!(out.ops[0], StorageOp::Free { .. }));
        assert_eq!(
            r.region_views()[9].buffer_used,
            used_before,
            "tombstone keeps space"
        );
        r.validate().unwrap();
    }

    #[test]
    fn delete_from_payload_charges_dummy_to_buffer() {
        let mut r = CostObliviousReallocator::new(0.5);
        insert_all(&mut r, 1, &[600, 500]); // both class 9
        let before = r.region_views()[9].buffer_used;
        r.delete(id(1)).unwrap();
        r.validate().unwrap();
        let after = r.region_views()[9].buffer_used;
        // Object 1 went straight to payload 9 (first of its class), so its
        // delete must charge a 600-cell dummy record to a buffer — or flush
        // if nothing fits (600 > the buffer, so a flush resets to 0).
        assert!(
            after > before || after == 0,
            "before {before}, after {after}"
        );
    }

    #[test]
    fn footprint_bound_through_heavy_churn() {
        let mut r = CostObliviousReallocator::new(0.5);
        // Mixed sizes spanning several classes.
        let sizes = [1u64, 3, 7, 12, 30, 70, 150, 400, 5, 2, 90, 33, 8, 256, 17];
        insert_all(&mut r, 0, &sizes);
        // Delete every other object.
        for i in (0..sizes.len() as u64).step_by(2) {
            r.delete(id(i)).unwrap();
            r.validate().unwrap();
            assert_footprint(&r);
        }
        // Reinsert a fresh batch.
        insert_all(&mut r, 100, &sizes);
        assert_footprint(&r);
    }

    #[test]
    fn tight_eps_gives_tight_footprint() {
        let mut r = CostObliviousReallocator::new(0.05);
        insert_all(&mut r, 0, &[64; 40]);
        let ratio = r.structure_size() as f64 / r.live_volume() as f64;
        assert!(ratio <= 1.05 + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn objects_keep_identity_across_flushes() {
        let mut r = CostObliviousReallocator::new(0.5);
        let sizes: Vec<u64> = (0..120).map(|i| 1 + (i * 7) % 100).collect();
        insert_all(&mut r, 0, &sizes);
        for (i, &s) in sizes.iter().enumerate() {
            let e = r.extent_of(id(i as u64)).expect("alive");
            assert_eq!(e.len, s, "object {i} changed size");
        }
        assert_eq!(r.live_count(), sizes.len());
        assert_eq!(r.live_volume(), sizes.iter().sum::<u64>());
    }

    #[test]
    fn flush_on_delete_when_no_buffer_fits_dummy() {
        let mut r = CostObliviousReallocator::new(0.5);
        // One large object; its buffer is the only buffer.
        r.insert(id(1), 600).unwrap();
        // Fill the buffer completely with small objects.
        let mut n = 2;
        while r.region_views()[9].buffer_used < r.region_views()[9].buffer_space {
            let free = r.region_views()[9].buffer_space - r.region_views()[9].buffer_used;
            let out = r.insert(id(n), free.min(30)).unwrap();
            if out.flushed {
                break;
            }
            n += 1;
        }
        // Deleting the payload object now cannot place a dummy -> flush.
        let out = r.delete(id(1)).unwrap();
        assert!(out.flushed);
        assert!(matches!(out.ops[0], StorageOp::Free { .. }));
        r.validate().unwrap();
        assert_footprint(&r);
    }

    #[test]
    fn growing_size_classes_one_by_one() {
        let mut r = CostObliviousReallocator::new(0.5);
        for k in 0..12u32 {
            r.insert(id(k as u64), 1u64 << k).unwrap();
            r.validate().unwrap();
            assert_footprint(&r);
        }
        assert_eq!(r.max_object_size(), 1 << 11);
        assert_eq!(r.live_count(), 12);
    }

    #[test]
    fn shrinking_workload_shrinks_structure() {
        let mut r = CostObliviousReallocator::new(0.5);
        let sizes: Vec<u64> = (0..200).map(|i| 1 + (i % 50)).collect();
        insert_all(&mut r, 0, &sizes);
        let big = r.structure_size();
        for i in 0..180u64 {
            r.delete(id(i)).unwrap();
            r.validate().unwrap();
            assert_footprint(&r);
        }
        assert!(r.structure_size() < big, "structure did not shrink");
    }
}
