//! The 2024 nearly-quadratic reallocator: a deterministic adaptation of
//! *A Nearly Quadratic Improvement for Memory Reallocation* (Farach-Colton
//! & Sheffield, 2024) as a fourth variant behind the same trait.
//!
//! The 2024 result improves the update overhead of cost-oblivious
//! reallocation from the classical `O(1/ε)` to `Õ(ε^{-1/2})` by *not*
//! paying a rebuild for updates that cancel: space handed back by a delete
//! is handed out again to a later insert of the same size class without
//! moving anything and without consuming rebuild credit. This file ports
//! that signature mechanism — **hole recycling** — onto the paper's
//! size-class region layout:
//!
//! * a delete of a payload object records its slot as a *hole* of its
//!   class (in addition to the §2 dummy-record charge, so the footprint
//!   argument is untouched);
//! * an insert first looks for a best-fit hole of its class and, if one
//!   exists, allocates straight into it — zero movement, zero buffer
//!   consumption — and *cancels* dummy-record volume up to the recycled
//!   size (whole trailing tombstones only, so buffers stay contiguous):
//!   the dead space those dummies charged for is live again, so a
//!   cancelling delete+reinsert round nets zero buffer consumption and the
//!   flush clock stops entirely;
//! * only when no hole fits does the insert fall back to the buffered
//!   path, and flushes use the §3.2 checkpointed plan (nonoverlapping
//!   moves, a barrier after every phase), so the variant is safe under the
//!   strict database substrate.
//!
//! Because every class-`k` object has size in `[2^k, 2^{k+1})`, a hole fits
//! a same-class object iff its capacity covers the new size, and the
//! leftover sliver (`< 2^k`) can never fit another class-`k` object — holes
//! are consumed whole, which keeps the bookkeeping a plain per-class
//! best-fit set with no splitting or coalescing.
//!
//! ## Strict-substrate discipline
//!
//! Section 3.1 forbids rewriting space freed since the last checkpoint.
//! Holes therefore carry a freshness bit: a hole freed after the most
//! recent barrier is *fresh* and may not be written; reusing one emits a
//! [`StorageOp::CheckpointBarrier`] first (settling every fresh hole at
//! once), and every flush's own barriers settle the survivors. Holes inside
//! regions rebuilt by a flush are forgotten — their space was reassigned by
//! the plan.
//!
//! ## Documented deviations
//!
//! The 2024 algorithm is randomized and analysed against an oblivious
//! adversary; reconstructing it verbatim is out of scope here. This
//! adaptation is deterministic (the proptest contract requires identical
//! layouts per request stream) and keeps the PODS'14 guarantees it is built
//! on: footprint stays `≤ (1+ε)·V` after every request and every §2/§3.2
//! structural invariant holds. What it inherits from 2024 is the update
//! overhead on cancelling workloads — `tests/theorem_bounds.rs` encodes the
//! `Õ(ε^{-1/2})`-shaped movement bound and the head-to-head against the
//! 2014 variants the same way the PODS'14 theorems are encoded.

use std::collections::BTreeSet;

use realloc_common::{size_class, Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

use crate::layout::{BufKind, Eps, Layout, Place, RegionView};
use crate::plan::{apply_final_state, gather, plan_checkpointed};
use crate::validate::{check_invariants, InvariantViolation};

/// Per-class hole book-keeping. Sets are keyed `(capacity, offset)` so
/// `range((size, 0)..)` yields the best fit (smallest adequate capacity,
/// lowest offset on ties) deterministically.
#[derive(Debug, Clone, Default)]
struct HoleSet {
    /// Holes freed before the last checkpoint barrier: writable now.
    settled: BTreeSet<(u64, u64)>,
    /// Holes freed since the last barrier: writable only after the next one.
    fresh: BTreeSet<(u64, u64)>,
}

impl HoleSet {
    fn best_fit(set: &BTreeSet<(u64, u64)>, size: u64) -> Option<(u64, u64)> {
        set.range((size, 0)..).next().copied()
    }

    fn settle(&mut self) {
        while let Some(h) = self.fresh.pop_first() {
            self.settled.insert(h);
        }
    }
}

/// The nearly-quadratic reallocator (Farach-Colton & Sheffield 2024,
/// deterministic adaptation): hole recycling over the §3.2 checkpointed
/// machinery.
#[derive(Debug, Clone)]
pub struct NearlyQuadraticReallocator {
    layout: Layout,
    /// Indexed by size class, grown alongside `layout.regions`.
    holes: Vec<HoleSet>,
    flushes: u64,
    total_checkpoints: u64,
    recycled: u64,
    recycled_volume: u64,
    cancelled: u64,
    /// Absolute offsets of tombstones created *in place* by a buffered
    /// delete since the last barrier. Their spans were freed by that
    /// delete's `Free`, so §3.1 forbids rewriting them before the next
    /// checkpoint — cancellation must stop at these (a payload delete's
    /// tombstone occupies never-freed buffer growth and has no such
    /// restriction).
    fresh_tombstones: BTreeSet<u64>,
}

impl NearlyQuadraticReallocator {
    /// Creates a reallocator with footprint slack `ε` (`0 < ε ≤ 1/2`).
    pub fn new(eps: f64) -> Self {
        Self::with_eps(Eps::new(eps))
    }

    /// Creates a reallocator from a pre-built (possibly ablated) [`Eps`].
    pub fn with_eps(eps: Eps) -> Self {
        NearlyQuadraticReallocator {
            layout: Layout::new(eps),
            holes: Vec::new(),
            flushes: 0,
            total_checkpoints: 0,
            recycled: 0,
            recycled_volume: 0,
            cancelled: 0,
            fresh_tombstones: BTreeSet::new(),
        }
    }

    /// The footprint parameter.
    pub fn eps(&self) -> Eps {
        self.layout.eps()
    }

    /// One-call snapshot of the volume accounting (see
    /// [`VolumeSummary`](crate::layout::VolumeSummary)).
    pub fn volume_summary(&self) -> crate::layout::VolumeSummary {
        self.layout.volume_summary()
    }

    /// Number of buffer flushes performed so far.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Total checkpoint barriers emitted (flush phases + hole settling).
    pub fn checkpoints_waited(&self) -> u64 {
        self.total_checkpoints
    }

    /// Inserts served by recycling a hole instead of buffer space.
    pub fn recycled_inserts(&self) -> u64 {
        self.recycled
    }

    /// Total volume of hole-recycled inserts.
    pub fn recycled_volume(&self) -> u64 {
        self.recycled_volume
    }

    /// Tombstone dummy records released by recycling inserts.
    pub fn cancelled_tombstones(&self) -> u64 {
        self.cancelled
    }

    /// Read-only view of the region layout (paper Figure 2).
    pub fn region_views(&self) -> Vec<RegionView> {
        self.layout.region_views()
    }

    /// Checks the §2 structural invariants plus the hole book-keeping: every
    /// recorded hole lies inside its class's payload segment, overlaps no
    /// live payload object, and holes are pairwise disjoint.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        check_invariants(&self.layout)?;
        let bad = |detail: String| InvariantViolation::BadAccounting { detail };
        for (k, set) in self.holes.iter().enumerate() {
            let k = k as u32;
            let region = &self.layout.regions[k as usize];
            let seg_start = self.layout.region_start(k);
            let seg_end = seg_start + region.payload_space;
            let mut spans: Vec<Extent> = set
                .settled
                .iter()
                .chain(set.fresh.iter())
                .map(|&(cap, off)| Extent::new(off, cap))
                .collect();
            for span in &spans {
                if span.offset < seg_start || span.end() > seg_end {
                    return Err(bad(format!(
                        "hole {span} escapes class-{k} payload [{seg_start}, {seg_end})"
                    )));
                }
                for (&p_off, &(id, p_size)) in &region.payload {
                    if span.overlaps(&Extent::new(p_off, p_size)) {
                        return Err(bad(format!("hole {span} overlaps live object {id}")));
                    }
                }
            }
            spans.sort_by_key(|e| e.offset);
            for pair in spans.windows(2) {
                if pair[0].overlaps(&pair[1]) {
                    return Err(bad(format!("holes {} and {} overlap", pair[0], pair[1])));
                }
            }
        }
        Ok(())
    }

    fn ensure_holes(&mut self) {
        let need = self.layout.class_count();
        if self.holes.len() < need {
            self.holes.resize_with(need, HoleSet::default);
        }
    }

    /// A checkpoint happened: every fresh hole becomes writable and
    /// in-place tombstone spans become cancellable.
    fn settle_all(&mut self) {
        for set in &mut self.holes {
            set.settle();
        }
        self.fresh_tombstones.clear();
    }

    /// Drops holes in regions `>= b` (their space was reassigned by a
    /// flush) and settles the rest (the flush ended with a barrier).
    fn forget_from(&mut self, b: u32) {
        for set in self.holes.iter_mut().skip(b as usize) {
            set.settled.clear();
            set.fresh.clear();
        }
        self.settle_all();
    }

    /// The cancellation half of the 2024 fast path: a recycled hole's dead
    /// space is live again, so dummy-record volume up to the recycled size
    /// has lost its reason and is released. Only whole *trailing* tombstones
    /// are popped (the one removal that keeps buffer segments contiguous),
    /// from buffers `>= class` — the same buffers the matching deletes
    /// charged. Never releases more than `size`, so dead payload volume
    /// stays covered by the remaining dummy volume; in the cancelling
    /// regime a round's delete+reinsert nets zero buffer consumption and
    /// the flush clock stops. Pops stop at a `fresh_tombstones` span
    /// (freed in place since the last barrier): handing it back to the
    /// buffer would let the next buffered insert rewrite it, which §3.1
    /// forbids before a checkpoint.
    fn cancel_tombstones(&mut self, class: u32, size: u64) {
        let mut allowance = size;
        for j in (class as usize)..self.layout.class_count() {
            let region = &mut self.layout.regions[j];
            while let Some(last) = region.buffer.last() {
                if !matches!(last.kind, BufKind::Tombstone)
                    || last.size > allowance
                    || self.fresh_tombstones.contains(&last.offset)
                {
                    break;
                }
                allowance -= last.size;
                region.buffer_used -= last.size;
                region.buffer.pop();
                self.cancelled += 1;
            }
            if allowance == 0 {
                break;
            }
        }
    }

    /// Best-fit hole of `class` for a `size`-cell insert, preferring
    /// settled holes (no barrier needed). Returns `(capacity, offset,
    /// needs_barrier)` without removing the hole.
    fn pick_hole(&self, class: u32, size: u64) -> Option<(u64, u64, bool)> {
        let set = self.holes.get(class as usize)?;
        if let Some((cap, off)) = HoleSet::best_fit(&set.settled, size) {
            return Some((cap, off, false));
        }
        HoleSet::best_fit(&set.fresh, size).map(|(cap, off)| (cap, off, true))
    }

    fn insert_new_largest_class(&mut self, id: ObjectId, size: u64, class: u32) -> Outcome {
        let offset = {
            let region = &mut self.layout.regions[class as usize];
            region.payload_space = size;
            region.buffer_space = self.layout.eps.buffer_quota(size);
            self.layout.region_start(class)
        };
        self.layout.attach_payload(id, size, class, offset);
        Outcome {
            ops: vec![StorageOp::Allocate {
                id,
                to: Extent::new(offset, size),
            }],
            flushed: false,
            peak_structure_size: self.layout.regions_end(),
            checkpoints: 0,
        }
    }

    /// Phased flush, identical to the §3.2 checkpointed one (pre-placed
    /// trigger, nonoverlapping phases, a barrier per phase), plus hole
    /// maintenance afterwards.
    fn flush(
        &mut self,
        trigger: Option<(ObjectId, u64, u32)>,
        trigger_class: u32,
        pre_ops: Vec<StorageOp>,
    ) -> Outcome {
        let mut ops = pre_ops;

        let planned_trigger = trigger.map(|(id, size, class)| {
            let last = self.layout.class_count() as u32 - 1;
            let at =
                self.layout.buffer_start(last) + self.layout.regions[last as usize].buffer_used;
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(at, size),
            });
            (id, size, class, at)
        });

        let b = self.layout.boundary_class(trigger_class);
        let inputs = gather(&self.layout, b, &[]);
        let plan = plan_checkpointed(&inputs, planned_trigger, 0, self.layout.delta());

        let mut checkpoints = 0u32;
        for phase in &plan.phases {
            ops.extend(phase.iter().map(|m| m.op()));
            ops.push(StorageOp::CheckpointBarrier);
            checkpoints += 1;
        }

        let trigger_end = planned_trigger.map_or(0, |(_, size, _, at)| at + size);
        apply_final_state(&mut self.layout, &plan);
        self.forget_from(b);
        self.flushes += 1;
        self.total_checkpoints += u64::from(checkpoints);
        Outcome {
            ops,
            flushed: true,
            peak_structure_size: plan.peak.max(trigger_end).max(self.layout.regions_end()),
            checkpoints,
        }
    }
}

impl Reallocator for NearlyQuadraticReallocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.layout.index.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let class = size_class(size);
        let is_new_largest = class as usize >= self.layout.class_count();
        self.layout.account_insert(size);
        self.ensure_holes();

        if is_new_largest {
            return Ok(self.insert_new_largest_class(id, size, class));
        }

        // The 2024 fast path: recycle a hole of the same class. No movement,
        // no buffer consumption, and the flush the buffered path would have
        // been charged toward is deferred.
        if let Some((cap, off, needs_barrier)) = self.pick_hole(class, size) {
            let mut ops = Vec::new();
            let mut checkpoints = 0u32;
            if needs_barrier {
                // §3.1: the hole was freed after the last checkpoint; block
                // on one barrier, which settles every fresh hole at once.
                ops.push(StorageOp::CheckpointBarrier);
                checkpoints = 1;
                self.total_checkpoints += 1;
                self.settle_all();
            }
            let removed = self.holes[class as usize].settled.remove(&(cap, off));
            debug_assert!(removed, "picked hole must exist after settling");
            self.layout.attach_payload(id, size, class, off);
            self.cancel_tombstones(class, size);
            self.recycled += 1;
            self.recycled_volume += size;
            ops.push(StorageOp::Allocate {
                id,
                to: Extent::new(off, size),
            });
            return Ok(Outcome {
                ops,
                flushed: false,
                peak_structure_size: self.layout.regions_end(),
                checkpoints,
            });
        }

        if let Some(j) = self.layout.find_buffer(class, size) {
            let offset = self
                .layout
                .push_buffer_entry(j, size, class, BufKind::Obj(id));
            self.layout.attach_buffered(id, size, class, j, offset);
            return Ok(Outcome {
                ops: vec![StorageOp::Allocate {
                    id,
                    to: Extent::new(offset, size),
                }],
                flushed: false,
                peak_structure_size: self.layout.regions_end(),
                checkpoints: 0,
            });
        }
        Ok(self.flush(Some((id, size, class)), class, Vec::new()))
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let entry = self
            .layout
            .detach_object(id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.layout.account_delete(entry.size, entry.class);
        let free_op = StorageOp::Free {
            id,
            at: entry.extent(),
        };

        if matches!(entry.place, Place::Payload) {
            // Keep the §2 dummy-record charge so the footprint argument is
            // untouched; if it does not fit the flush rebuilds the suffix
            // and the hole never materializes.
            if let Some(j) = self.layout.find_buffer(entry.class, entry.size) {
                self.layout
                    .push_buffer_entry(j, entry.size, entry.class, BufKind::Tombstone);
                self.ensure_holes();
                self.holes[entry.class as usize]
                    .fresh
                    .insert((entry.size, entry.offset));
            } else {
                return Ok(self.flush(None, entry.class, vec![free_op]));
            }
        } else {
            // A buffered delete turned its own slot into the tombstone, and
            // `free_op` freed exactly that span: cancellation may not hand
            // it back to the buffer before the next barrier.
            self.fresh_tombstones.insert(entry.offset);
        }
        Ok(Outcome {
            ops: vec![free_op],
            flushed: false,
            peak_structure_size: self.layout.regions_end(),
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.layout.extent_of(id)
    }

    fn live_volume(&self) -> u64 {
        self.layout.live_volume()
    }

    fn structure_size(&self) -> u64 {
        self.layout.regions_end()
    }

    fn footprint(&self) -> u64 {
        self.layout.last_object_end()
    }

    fn max_object_size(&self) -> u64 {
        self.layout.delta()
    }

    fn name(&self) -> &'static str {
        "nearly-quadratic"
    }

    fn live_count(&self) -> usize {
        self.layout.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn basic_insert_delete_cycle() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        r.insert(id(1), 100).unwrap();
        r.insert(id(2), 30).unwrap();
        r.delete(id(1)).unwrap();
        r.validate().unwrap();
        assert_eq!(r.live_count(), 1);
    }

    #[test]
    fn same_class_churn_recycles_without_movement() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        // Standing population large enough that the buffer absorbs all the
        // churn's dummy records: deletes then never trigger a flush, so
        // holes survive until the matching reinsert.
        for i in 0..200u64 {
            r.insert(id(i), 64).unwrap();
        }
        // Delete/insert churn in the same class: every insert whose delete
        // did not flush must be served from a hole with zero moves.
        let mut recycled_rounds = 0u32;
        for round in 0..30u64 {
            let del = r.delete(id(round)).unwrap();
            let before = r.recycled_inserts();
            let out = r.insert(id(1000 + round), 64).unwrap();
            r.validate().unwrap();
            if r.recycled_inserts() > before {
                recycled_rounds += 1;
                assert_eq!(out.move_count(), 0, "round {round} moved");
                assert!(!out.flushed, "round {round} flushed");
            } else {
                // The only way the hole vanishes is the delete's own flush.
                assert!(del.flushed, "round {round} lost its hole without a flush");
            }
        }
        assert!(recycled_rounds >= 25, "only {recycled_rounds}/30 recycled");
    }

    #[test]
    fn recycling_defers_flushes_vs_checkpointed() {
        use crate::checkpointed::CheckpointedReallocator;
        let mut nq = NearlyQuadraticReallocator::new(0.25);
        let mut ck = CheckpointedReallocator::new(0.25);
        let mut moved_nq = 0u64;
        let mut moved_ck = 0u64;
        // Same churn stream through both variants.
        for i in 0..60u64 {
            let s = 16 + (i * 7) % 16;
            moved_nq += nq.insert(id(i), s).unwrap().moved_volume();
            moved_ck += ck.insert(id(i), s).unwrap().moved_volume();
        }
        for i in 0..400u64 {
            let victim = if i < 60 { i } else { 1000 + i - 60 };
            moved_nq += nq.delete(id(victim)).unwrap().moved_volume();
            moved_ck += ck.delete(id(victim)).unwrap().moved_volume();
            let s = 16 + (i * 11) % 16;
            moved_nq += nq.insert(id(1000 + i), s).unwrap().moved_volume();
            moved_ck += ck.insert(id(1000 + i), s).unwrap().moved_volume();
            nq.validate().unwrap();
        }
        assert_eq!(nq.live_count(), ck.live_count());
        assert!(
            moved_nq < moved_ck,
            "recycling should beat the 2014 variant on cancelling churn: \
             {moved_nq} vs {moved_ck}"
        );
        assert!(nq.flush_count() < ck.flush_count());
    }

    #[test]
    fn footprint_bound_after_every_request() {
        let mut r = NearlyQuadraticReallocator::new(0.25);
        let sizes: Vec<u64> = (0..200).map(|i| 1 + (i * 7) % 120).collect();
        for (i, &s) in sizes.iter().enumerate() {
            r.insert(id(i as u64), s).unwrap();
            r.validate().unwrap();
            let bound = 1.25 * r.live_volume() as f64;
            assert!(r.structure_size() as f64 <= bound + 1e-9);
        }
        for i in (0..200u64).step_by(3) {
            r.delete(id(i)).unwrap();
            r.validate().unwrap();
            let bound = 1.25 * r.live_volume() as f64;
            assert!(r.structure_size() as f64 <= bound + 1e-9);
        }
    }

    #[test]
    fn moves_never_overlap_their_source() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        let sizes: Vec<u64> = (0..150).map(|i| 1 + (i * 13) % 200).collect();
        for (i, &s) in sizes.iter().enumerate() {
            let out = r.insert(id(i as u64), s).unwrap();
            for op in &out.ops {
                if let StorageOp::Move { from, to, .. } = op {
                    assert!(!from.overlaps(to), "{from} overlaps {to}");
                }
            }
            r.validate().unwrap();
        }
    }

    #[test]
    fn fresh_hole_reuse_blocks_on_a_barrier() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        for i in 0..20u64 {
            r.insert(id(i), 32).unwrap();
        }
        // This delete leaves a fresh hole (freed after any prior barrier).
        r.delete(id(3)).unwrap();
        let out = r.insert(id(100), 32).unwrap();
        if out
            .ops
            .iter()
            .any(|o| matches!(o, StorageOp::Allocate { .. }))
            && out.move_count() == 0
            && !out.flushed
            && r.recycled_inserts() > 0
        {
            // Recycled: the barrier must precede the allocate.
            assert!(matches!(out.ops[0], StorageOp::CheckpointBarrier));
            assert_eq!(out.checkpoints, 1);
        }
        // A second round reuses a settled hole without a new barrier.
        r.delete(id(4)).unwrap();
        r.delete(id(5)).unwrap();
        let out = r.insert(id(101), 32).unwrap();
        let out2 = r.insert(id(102), 32).unwrap();
        let barriers: usize = [&out, &out2]
            .iter()
            .flat_map(|o| o.ops.iter())
            .filter(|o| matches!(o, StorageOp::CheckpointBarrier))
            .count();
        assert!(barriers <= 1, "one barrier settles every fresh hole");
        r.validate().unwrap();
    }

    #[test]
    fn strict_replay_of_churn_stream() {
        use storage_sim::{Mode, SimStore};
        let mut r = NearlyQuadraticReallocator::new(0.25);
        let mut store = SimStore::new(Mode::Strict);
        let apply = |out: &Outcome, store: &mut SimStore| {
            for op in &out.ops {
                store.apply(op).unwrap();
            }
        };
        for i in 0..80u64 {
            let out = r.insert(id(i), 1 + (i * 13) % 100).unwrap();
            apply(&out, &mut store);
        }
        for i in 0..120u64 {
            let victim = if i < 80 { i } else { 500 + i - 80 };
            let out = r.delete(id(victim)).unwrap();
            apply(&out, &mut store);
            let out = r.insert(id(500 + i), 1 + (i * 17) % 100).unwrap();
            apply(&out, &mut store);
            r.validate().unwrap();
        }
    }

    #[test]
    fn strict_replay_with_buffered_deletes() {
        use storage_sim::{Mode, SimStore};
        // Regression: a buffered object's delete turns its own slot into
        // the tombstone and frees that span in place. If cancellation pops
        // it before the next barrier, a later buffered insert rewrites the
        // fresh-freed span and the strict substrate rejects the stream —
        // so half the touches here hit the *youngest* insert (still
        // buffered) while same-size reinserts keep recycling holes.
        let mut r = NearlyQuadraticReallocator::new(0.25);
        let mut store = SimStore::new(Mode::Strict);
        let apply = |out: &Outcome, store: &mut SimStore| {
            for op in &out.ops {
                store.apply(op).unwrap();
            }
        };
        for i in 0..200u64 {
            let out = r.insert(id(i), 64).unwrap();
            apply(&out, &mut store);
        }
        let mut next = 1000u64;
        let mut oldest = 0u64;
        for _ in 0..40u32 {
            // Two payload deletes leave two fresh holes (plus two trailing
            // 64-cell tombstones).
            for _ in 0..2 {
                let out = r.delete(id(oldest)).unwrap();
                oldest += 1;
                apply(&out, &mut store);
            }
            // Recycling the first hole emits a barrier (it is fresh) and
            // settles the second; cancellation pops one 64-cell tombstone.
            let out = r.insert(id(next), 64).unwrap();
            next += 1;
            apply(&out, &mut store);
            // A small insert lands at the buffer tail, and its immediate
            // delete frees that span in place — a *fresh* tombstone.
            let small = next;
            next += 1;
            let out = r.insert(id(small), 8).unwrap();
            apply(&out, &mut store);
            let out = r.delete(id(small)).unwrap();
            apply(&out, &mut store);
            // Recycling the settled hole needs no barrier; if cancellation
            // popped the fresh 8-cell tombstone here, the next buffered
            // insert would rewrite its span and the strict store would
            // reject the Allocate below.
            let out = r.insert(id(next), 64).unwrap();
            next += 1;
            apply(&out, &mut store);
            let out = r.insert(id(next), 8).unwrap();
            next += 1;
            apply(&out, &mut store);
            r.validate().unwrap();
        }
    }

    #[test]
    fn holes_cleared_by_flush_rebuild() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        for i in 0..50u64 {
            r.insert(id(i), 40).unwrap();
        }
        for i in 0..10u64 {
            r.delete(id(i)).unwrap();
        }
        // Force flushes with a different class until one rebuilds class 5.
        for n in 200..400u64 {
            r.insert(id(n), 3).unwrap();
        }
        r.validate().unwrap();
    }

    #[test]
    fn duplicate_and_zero_size_rejected() {
        let mut r = NearlyQuadraticReallocator::new(0.5);
        assert!(matches!(r.insert(id(1), 0), Err(ReallocError::ZeroSize)));
        r.insert(id(1), 8).unwrap();
        assert!(matches!(
            r.insert(id(1), 8),
            Err(ReallocError::DuplicateId(_))
        ));
        assert!(matches!(r.delete(id(9)), Err(ReallocError::UnknownId(_))));
    }
}
