//! Telemetry primitives for the reallocation workspace.
//!
//! The paper's algorithms are *cost-oblivious* — they never consult the
//! cost function — but evaluating them is not: every layer of the engine
//! wants to report how long things took, how large batches were, and when
//! structural events (rebalance batches, recovery stages) happened. This
//! crate supplies the four primitives those layers share, with zero
//! dependencies so every crate in the workspace can afford them:
//!
//! * [`Counter`] — a relaxed atomic monotonic counter.
//! * [`Histogram`] — a fixed-size log₂-bucket histogram recordable from
//!   `&self` (atomics throughout), snapshotted into the plain-data
//!   [`HistogramSnapshot`] that knows percentiles, merge, and
//!   delta-since-last-scrape.
//! * [`EventJournal`] — a bounded ring of typed [`TraceEvent`] span
//!   records ([`SpanPhase::Begin`]/[`SpanPhase::End`] pairs or point
//!   [`SpanPhase::Instant`] marks) with a dropped-count when the ring
//!   wraps.
//! * [`Json`] — a minimal JSON value with a writer and a
//!   recursive-descent parser, so the CLI's `--metrics-json` export and
//!   the CI checker that validates it share one codec without pulling in
//!   serde (this workspace builds offline).
//!
//! A deliberate design split runs through the whole crate: *what* is
//! recorded may be wall-clock (nondeterministic across runs) or
//! simulated/deterministic, but the primitives themselves never decide —
//! the engine's snapshot type partitions fields into a deterministic
//! equality surface and wall-clock observations. See
//! `realloc_engine::metrics` for that contract.

#![warn(missing_docs)]

mod counter;
mod events;
mod histogram;
pub mod json;

pub use counter::Counter;
pub use events::{EventJournal, SpanPhase, TraceEvent};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use json::Json;
