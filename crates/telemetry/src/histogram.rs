//! Log₂-bucket histograms.
//!
//! A [`Histogram`] is recordable from `&self` (every cell is an atomic),
//! so shard workers and the engine thread can share one without locks. A
//! [`HistogramSnapshot`] is the plain-data copy readers work with:
//! percentiles, mean, merge, and delta-since-last-scrape all live there.
//!
//! Buckets are powers of two: bucket 0 holds the value 0, bucket `k ≥ 1`
//! holds values in `[2^(k-1), 2^k)` — i.e. a value lands in the bucket
//! indexed by its bit length. With 64-bit values that is [`BUCKETS`]` =
//! 65` buckets, covering the full `u64` range with ≤ 2× relative error,
//! which is the right resolution for latencies and sizes spanning many
//! orders of magnitude.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `(low, high)` value bounds of bucket `k`.
fn bucket_bounds(k: usize) -> (u64, u64) {
    match k {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (k - 1), (1 << k) - 1),
    }
}

/// A lock-free log₂-bucket histogram; record with `&self`, read via
/// [`snapshot`](Histogram::snapshot).
///
/// All atomics are [`Ordering::Relaxed`]: a snapshot taken while writers
/// are active may be internally skewed by in-flight records (statistics,
/// not synchronization). Snapshots taken at a quiescent point — how the
/// engine scrapes — are exact.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation. The running sum saturates at `u64::MAX`
    /// rather than wrapping.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating atomic add (fetch_add would wrap).
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let h = Histogram::new();
        h.count
            .store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        h.sum
            .store(self.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        h.min
            .store(self.min.load(Ordering::Relaxed), Ordering::Relaxed);
        h.max
            .store(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in h.buckets.iter().zip(&self.buckets) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h
    }
}

/// Plain-data copy of a [`Histogram`]: what scrapes return, merges
/// combine, and deltas subtract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket counts; always [`BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), interpolated linearly inside the
    /// containing bucket and clamped to the observed `[min, max]`.
    ///
    /// Resolution is one log₂ bucket: the result is within a factor of
    /// two of the exact order statistic (and exact when the bucket holds
    /// a single distinct value pinned by `min`/`max`).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = cum as f64;
            cum += n;
            if cum as f64 >= target {
                let (lo, hi) = bucket_bounds(k);
                let frac = ((target - before) / n as f64).clamp(0.0, 1.0);
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.percentile(0.999)
    }

    /// Folds `other` into `self` (count/sum saturate, buckets add,
    /// min/max widen).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.saturating_add(*src);
        }
    }

    /// Observations since `prev` was scraped from the same histogram:
    /// count, sum, and buckets subtract (saturating); `min`/`max` are
    /// copied from `self`, because a histogram does not retain enough to
    /// window extremes — they bound the whole lifetime, not the delta.
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(prev.count),
            sum: self.sum.saturating_sub(prev.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .zip(&prev.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }

    /// The structural invariant every export must satisfy: bucket counts
    /// account for every observation, and the extremes bracket the data.
    /// (Sum-vs-count consistency is not checked: `sum` saturates.)
    pub fn is_consistent(&self) -> bool {
        let total: u64 = self.buckets.iter().fold(0, |a, &b| a.saturating_add(b));
        if total != self.count {
            return false;
        }
        self.count == 0 || self.min <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        // Value → bucket: 0→0, 1→1, 2..4→2, 4..8→3, …
        for (value, bucket) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1 << 62, 63),
            ((1 << 63) - 1, 63),
            (1 << 63, 64),
            (u64::MAX, 64),
        ] {
            assert_eq!(bucket_index(value), bucket, "value {value}");
            let (lo, hi) = bucket_bounds(bucket);
            assert!(lo <= value && value <= hi, "bounds of bucket {bucket}");
        }
    }

    #[test]
    fn records_land_in_their_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 1); // 1000 has bit length 10
        assert_eq!(s.buckets[64], 1);
        assert!(s.is_consistent());
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX);
        assert_eq!(s.count, 2);
        assert!(s.is_consistent());
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.sum), (0, 0, 0, 0));
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn merge_widens_and_adds() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [4u64, 5, 6] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 4 + 5 + 6 + 100 + 200);
        assert_eq!((m.min, m.max), (4, 200));
        assert!(m.is_consistent());

        // Merging into empty adopts the other's extremes.
        let mut e = HistogramSnapshot::empty();
        e.merge(&b.snapshot());
        assert_eq!((e.min, e.max), (100, 200));
    }

    #[test]
    fn delta_subtracts_counts_and_buckets() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.sum, 1000);
        assert_eq!(delta.buckets[10], 1);
        assert!(delta.is_consistent());
    }

    #[test]
    fn constant_data_pins_every_percentile() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(42);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.percentile(q), 42.0, "q={q}");
        }
    }

    /// The sorted-vec oracle: the histogram's percentile must stay within
    /// one bucket (a factor of two, and within the oracle's bucket bounds)
    /// of the exact order statistic.
    fn check_against_oracle(values: &[u64]) {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.is_consistent());
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
            let exact = sorted[rank];
            let est = s.percentile(q);
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            // The estimate may interpolate anywhere inside the exact
            // value's bucket, and clamping can pull it to min/max.
            let lo = (lo as f64).min(s.min as f64);
            let hi = (hi as f64).max(s.min as f64);
            assert!(
                est >= lo && est <= hi.max(s.max as f64),
                "q={q}: estimate {est} outside bucket [{lo}, {hi}] of exact {exact}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn percentiles_track_sorted_vec_oracle(
            values in prop::collection::vec(0u64..1_000_000, 1..300),
        ) {
            check_against_oracle(&values);
        }

        #[test]
        fn merge_equals_recording_concatenation(
            a in prop::collection::vec(0u64..100_000, 0..100),
            b in prop::collection::vec(0u64..100_000, 0..100),
        ) {
            let ha = Histogram::new();
            for &v in &a { ha.record(v); }
            let hb = Histogram::new();
            for &v in &b { hb.record(v); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());

            let hc = Histogram::new();
            for &v in a.iter().chain(&b) { hc.record(v); }
            prop_assert_eq!(merged, hc.snapshot());
        }
    }
}
