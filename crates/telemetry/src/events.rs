//! A bounded journal of structured trace events.

use std::collections::VecDeque;
use std::time::Instant;

/// Where an event sits in a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// A span opened (expect a matching [`SpanPhase::End`] with the same
    /// label).
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

impl SpanPhase {
    /// Stable lowercase name (used by the JSON export).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Begin => "begin",
            SpanPhase::End => "end",
            SpanPhase::Instant => "instant",
        }
    }
}

/// One journaled event.
///
/// `at_us` is wall-clock microseconds since the journal was created —
/// an observation, not part of any determinism surface. `seq` orders
/// events totally even when timestamps collide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number within the journal.
    pub seq: u64,
    /// Microseconds since the journal's creation (wall clock).
    pub at_us: u64,
    /// Shard the event concerns, when one does.
    pub shard: Option<usize>,
    /// Static label, dot-namespaced by layer (e.g. `rebalance.batch`,
    /// `recover.fold`).
    pub label: &'static str,
    /// Begin/end/instant.
    pub phase: SpanPhase,
    /// One free integer of context — batch size, records replayed,
    /// objects moved; each label documents its meaning.
    pub payload: u64,
}

/// A bounded ring of [`TraceEvent`]s.
///
/// When full, the oldest event is dropped and counted — the journal
/// keeps the recent past, never blocks, and never grows unboundedly.
#[derive(Debug)]
pub struct EventJournal {
    epoch: Instant,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

impl EventJournal {
    /// A journal retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    fn push(&mut self, shard: Option<usize>, label: &'static str, phase: SpanPhase, payload: u64) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push_back(TraceEvent {
            seq,
            at_us: self.epoch.elapsed().as_micros() as u64,
            shard,
            label,
            phase,
            payload,
        });
    }

    /// Opens a span.
    pub fn begin(&mut self, shard: Option<usize>, label: &'static str, payload: u64) {
        self.push(shard, label, SpanPhase::Begin, payload);
    }

    /// Closes a span.
    pub fn end(&mut self, shard: Option<usize>, label: &'static str, payload: u64) {
        self.push(shard, label, SpanPhase::End, payload);
    }

    /// Records a point event.
    pub fn instant(&mut self, shard: Option<usize>, label: &'static str, payload: u64) {
        self.push(shard, label, SpanPhase::Instant, payload);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_pair_up_in_order() {
        let mut j = EventJournal::new(16);
        j.begin(Some(0), "rebalance.batch", 8);
        j.instant(Some(0), "rebalance.flip", 8);
        j.end(Some(0), "rebalance.batch", 8);
        let events = j.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.phase).collect::<Vec<_>>(),
            vec![SpanPhase::Begin, SpanPhase::Instant, SpanPhase::End]
        );
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut j = EventJournal::new(3);
        for i in 0..5u64 {
            j.instant(None, "tick", i);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let payloads: Vec<u64> = j.events().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(
            j.events().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "sequence numbers keep counting across drops"
        );
    }
}
