//! A monotonic atomic counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic counter incrementable from `&self`.
///
/// All operations use [`Ordering::Relaxed`]: counters are statistics, not
/// synchronization — readers may observe any interleaving-consistent
/// value, never a torn one.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` (a saturated counter stays
    /// saturated rather than wrapping to a plausible-looking small value).
    pub fn add(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_saturates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "saturated counters stay saturated");
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
