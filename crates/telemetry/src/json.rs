//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline (no serde), but the `--metrics-json`
//! export and the CI checker that validates it need one shared codec.
//! This is deliberately the smallest thing that round-trips the metrics
//! schema: objects preserve insertion order, numbers are `f64` (every
//! count we export is far below 2⁵³, where `f64` is exact), and the
//! parser is a strict recursive-descent over the JSON grammar.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values serialize as `null` (JSON has no
    /// NaN/Inf).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys assumed unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object; panics on non-objects (builder
    /// misuse, not data).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole string must be one value plus
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    /// Compact (no whitespace) JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&unit)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((unit - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_writer_parser_roundtrip() {
        let mut doc = Json::obj();
        doc.set("name", "engine").set("shards", 4u64).set(
            "histogram",
            Json::Arr(vec![Json::from(0u64), Json::from(3u64)]),
        );
        doc.set("ratio", 1.5).set("ok", true).set("gap", Json::Null);
        let text = doc.to_string();
        assert_eq!(
            text,
            r#"{"name":"engine","shards":4,"histogram":[0,3],"ratio":1.5,"ok":true,"gap":null}"#
        );
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("shards").and_then(Json::as_u64), Some(4));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("engine"));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::Str("line\nbreak \"quote\" back\\slash \u{1}".to_string());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Standard escape forms parse too (including surrogate pairs).
        assert_eq!(
            Json::parse(r#""Aé😀""#).unwrap(),
            Json::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        for (text, value) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.25", 3.25),
            ("1e3", 1000.0),
            ("2.5E-1", 0.25),
        ] {
            assert_eq!(Json::parse(text).unwrap(), Json::Num(value), "{text}");
        }
        assert_eq!(
            Json::parse("18014398509481984").unwrap().as_u64(),
            None,
            "integers above 2^53 are not exact in f64 and must not pretend to be"
        );
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
