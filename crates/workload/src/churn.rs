//! Steady-state churn workloads: grow to a target volume, then hold it
//! there with a randomized insert/delete mix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_common::ObjectId;

use crate::dist::SizeDist;
use crate::{IdSource, Request, Workload};

/// Parameters for [`churn`].
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Object size distribution.
    pub dist: SizeDist,
    /// Volume the warm-up phase grows to (and churn hovers around).
    pub target_volume: u64,
    /// Number of requests issued after warm-up.
    pub churn_ops: usize,
    /// RNG seed (workloads are deterministic per seed).
    pub seed: u64,
}

/// Generates a churn workload: inserts until `target_volume` is reached,
/// then issues `churn_ops` requests that insert when below target and
/// delete a uniformly random live object when at/above it.
pub fn churn(config: &ChurnConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let mut live: Vec<(ObjectId, u64)> = Vec::new();
    let mut volume = 0u64;

    let insert = |rng: &mut StdRng,
                  requests: &mut Vec<Request>,
                  live: &mut Vec<(ObjectId, u64)>,
                  volume: &mut u64,
                  ids: &mut IdSource| {
        let size = config.dist.sample(rng);
        let id = ids.fresh();
        requests.push(Request::Insert { id, size });
        live.push((id, size));
        *volume += size;
    };

    while volume < config.target_volume {
        insert(&mut rng, &mut requests, &mut live, &mut volume, &mut ids);
    }

    for _ in 0..config.churn_ops {
        if volume >= config.target_volume && !live.is_empty() {
            let idx = rng.random_range(0..live.len());
            let (id, size) = live.swap_remove(idx);
            requests.push(Request::Delete { id });
            volume -= size;
        } else {
            insert(&mut rng, &mut requests, &mut live, &mut volume, &mut ids);
        }
    }

    Workload::new(
        format!(
            "churn({}, V≈{}, {} ops, seed {})",
            config.dist.label(),
            config.target_volume,
            config.churn_ops,
            config.seed
        ),
        requests,
    )
}

/// A pure growth workload: `count` inserts, no deletes.
pub fn grow_only(dist: &SizeDist, count: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdSource::new();
    let requests = (0..count)
        .map(|_| Request::Insert {
            id: ids.fresh(),
            size: dist.sample(&mut rng),
        })
        .collect();
    Workload::new(format!("grow({}, {count} inserts)", dist.label()), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ChurnConfig {
        ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 4_000,
            churn_ops: 2_000,
            seed,
        }
    }

    #[test]
    fn churn_is_wellformed() {
        let w = churn(&cfg(1));
        assert!(w.validate().is_ok());
        assert!(w.len() > 2_000);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        assert_eq!(churn(&cfg(7)).requests, churn(&cfg(7)).requests);
        assert_ne!(churn(&cfg(7)).requests, churn(&cfg(8)).requests);
    }

    #[test]
    fn churn_hovers_near_target() {
        let w = churn(&cfg(3));
        let stats = w.stats();
        assert!(stats.peak_volume >= 4_000);
        // Volume can exceed target only by one object (< 64 cells) at a time,
        // and deletes pull it back under; the peak stays close to target.
        assert!(stats.peak_volume < 4_200, "peak {}", stats.peak_volume);
        assert!(stats.final_volume > 3_000);
    }

    #[test]
    fn grow_only_has_no_deletes() {
        let w = grow_only(&SizeDist::Fixed(8), 100, 5);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.deletes, 0);
        assert_eq!(stats.final_volume, 800);
    }
}
