//! Steady-state churn workloads: grow to a target volume, then hold it
//! there with a randomized insert/delete mix.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_common::ObjectId;

use crate::dist::SizeDist;
use crate::{IdSource, Request, Workload};

/// Parameters for [`churn`].
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Object size distribution.
    pub dist: SizeDist,
    /// Volume the warm-up phase grows to (and churn hovers around).
    pub target_volume: u64,
    /// Number of requests issued after warm-up.
    pub churn_ops: usize,
    /// RNG seed (workloads are deterministic per seed).
    pub seed: u64,
}

/// Generates a churn workload: inserts until `target_volume` is reached,
/// then issues `churn_ops` requests that insert when below target and
/// delete a uniformly random live object when at/above it.
pub fn churn(config: &ChurnConfig) -> Workload {
    // `keep` nothing: the uniform delete draw is untouched (the predicate
    // check spends no RNG), so this is byte-identical to the historical
    // generator, seed for seed.
    generate(config, |_| false, None, "churn")
}

/// Churn whose deletes *spare* the objects matched by `keep`: inserts are
/// drawn like [`churn`]'s, but a delete always removes a random live object
/// with `keep(id) == false` (falling back to any object only when none
/// remain). Route-aware `keep` predicates turn this into the shard-skew
/// adversary: with `keep = |id| route(id) == hot`, every churn cycle drains
/// volume from the other shards while the hot shard only ever grows —
/// exactly the pattern a stateless hash router cannot repair and a
/// cross-shard rebalancer exists for.
pub fn skewed_churn(config: &ChurnConfig, keep: impl FnMut(ObjectId) -> bool) -> Workload {
    generate(config, keep, None, "skewed-churn")
}

/// [`skewed_churn`] whose skew *lets go* partway through: for the first
/// `skew_ops` churn ops deletes spare the kept objects (driving imbalance
/// up, exactly like `skewed_churn`), then the kept pool is released and the
/// remaining `churn_ops - skew_ops` ops churn uniformly over everything.
///
/// This is the rebalance-measurement workload: phase one manufactures the
/// imbalance, phase two is sustained *neutral* traffic during which a
/// rebalance (barrier or online) can be triggered and its serving stalls
/// and convergence measured without the adversary still fighting the
/// repair. (Under never-ending skew, imbalance climbs again no matter how
/// often the fleet rebalances — real hot-tenant storms end.)
pub fn skewed_churn_release(
    config: &ChurnConfig,
    keep: impl FnMut(ObjectId) -> bool,
    skew_ops: usize,
) -> Workload {
    generate(config, keep, Some(skew_ops), "skewed-churn-release")
}

/// The shared churn loop behind [`churn`], [`skewed_churn`], and
/// [`skewed_churn_release`]. The live population is partitioned into
/// deletable/kept pools *at insert time* (`keep` is evaluated once per id),
/// so a delete is one uniform draw from the deletable pool — O(1)
/// amortized, instead of rescanning the live set whenever kept objects
/// dominate. With an empty predicate the deletable pool *is* the live set
/// in the same order, so [`churn`]'s request streams are unchanged, seed
/// for seed. At churn op `release_after` (if given) the kept pool is
/// appended to the deletable pool and the predicate stops applying —
/// deletes are uniform over everything from there on.
fn generate(
    config: &ChurnConfig,
    mut keep: impl FnMut(ObjectId) -> bool,
    release_after: Option<usize>,
    family: &str,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let mut deletable: Vec<(ObjectId, u64)> = Vec::new();
    let mut kept: Vec<(ObjectId, u64)> = Vec::new();
    let mut volume = 0u64;

    let mut insert = |rng: &mut StdRng,
                      requests: &mut Vec<Request>,
                      deletable: &mut Vec<(ObjectId, u64)>,
                      kept: &mut Vec<(ObjectId, u64)>,
                      volume: &mut u64,
                      ids: &mut IdSource,
                      sparing: bool| {
        let size = config.dist.sample(rng);
        let id = ids.fresh();
        requests.push(Request::Insert { id, size });
        if sparing && keep(id) {
            kept.push((id, size));
        } else {
            deletable.push((id, size));
        }
        *volume += size;
    };

    while volume < config.target_volume {
        insert(
            &mut rng,
            &mut requests,
            &mut deletable,
            &mut kept,
            &mut volume,
            &mut ids,
            release_after != Some(0),
        );
    }

    for op in 0..config.churn_ops {
        let sparing = release_after.is_none_or(|release| op < release);
        if release_after == Some(op) {
            // The skew lets go: everything spared so far churns uniformly
            // from here on.
            deletable.append(&mut kept);
        }
        let any_live = !deletable.is_empty() || !kept.is_empty();
        if volume >= config.target_volume && any_live {
            // Deletes spare the kept pool while anything else remains.
            let pool = if deletable.is_empty() {
                &mut kept
            } else {
                &mut deletable
            };
            let idx = rng.random_range(0..pool.len());
            let (id, size) = pool.swap_remove(idx);
            requests.push(Request::Delete { id });
            volume -= size;
        } else {
            insert(
                &mut rng,
                &mut requests,
                &mut deletable,
                &mut kept,
                &mut volume,
                &mut ids,
                sparing,
            );
        }
    }

    Workload::new(
        format!(
            "{family}({}, V≈{}, {} ops, seed {})",
            config.dist.label(),
            config.target_volume,
            config.churn_ops,
            config.seed
        ),
        requests,
    )
}

/// Churn built to *coalesce*: most ops touch a live object by deleting it
/// and immediately reinserting the **same id** (new size three times out
/// of four, the old size otherwise), and a slice of the traffic inserts a
/// transient object it deletes on the very next request. A batch planner
/// folds a touch into one resize (or nothing, when the size is unchanged)
/// and cancels a transient outright; the remaining ops are plain churn so
/// the population still drifts. Op mix per churn op: 50% touch, 20%
/// transient, 30% plain insert-or-delete toward `target_volume`.
///
/// Reusing an id after its delete violates [`Workload::validate`]'s
/// fresh-ids rule by design — check these workloads with
/// [`Workload::validate_reuse`], which only demands liveness correctness.
pub fn coalescible_churn(config: &ChurnConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let mut live: Vec<(ObjectId, u64)> = Vec::new();
    let mut volume = 0u64;

    let fresh = |rng: &mut StdRng,
                 requests: &mut Vec<Request>,
                 live: &mut Vec<(ObjectId, u64)>,
                 volume: &mut u64,
                 ids: &mut IdSource| {
        let size = config.dist.sample(rng);
        let id = ids.fresh();
        requests.push(Request::Insert { id, size });
        live.push((id, size));
        *volume += size;
    };

    while volume < config.target_volume {
        fresh(&mut rng, &mut requests, &mut live, &mut volume, &mut ids);
    }

    for _ in 0..config.churn_ops {
        let roll = rng.random_range(0u32..10);
        if roll < 5 && !live.is_empty() {
            // Touch: delete + reinsert of one live id, back to back.
            let idx = rng.random_range(0..live.len());
            let (id, old) = live.swap_remove(idx);
            requests.push(Request::Delete { id });
            let size = if rng.random_range(0u32..4) == 0 {
                old
            } else {
                config.dist.sample(&mut rng)
            };
            requests.push(Request::Insert { id, size });
            live.push((id, size));
            volume = volume - old + size;
        } else if roll < 7 {
            // Transient: born and gone within two requests.
            let size = config.dist.sample(&mut rng);
            let id = ids.fresh();
            requests.push(Request::Insert { id, size });
            requests.push(Request::Delete { id });
        } else if volume >= config.target_volume && !live.is_empty() {
            let idx = rng.random_range(0..live.len());
            let (id, size) = live.swap_remove(idx);
            requests.push(Request::Delete { id });
            volume -= size;
        } else {
            fresh(&mut rng, &mut requests, &mut live, &mut volume, &mut ids);
        }
    }

    Workload::new(
        format!(
            "coalescible-churn({}, V≈{}, {} ops, seed {})",
            config.dist.label(),
            config.target_volume,
            config.churn_ops,
            config.seed
        ),
        requests,
    )
}

/// A pure growth workload: `count` inserts, no deletes.
pub fn grow_only(dist: &SizeDist, count: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdSource::new();
    let requests = (0..count)
        .map(|_| Request::Insert {
            id: ids.fresh(),
            size: dist.sample(&mut rng),
        })
        .collect();
    Workload::new(format!("grow({}, {count} inserts)", dist.label()), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> ChurnConfig {
        ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 4_000,
            churn_ops: 2_000,
            seed,
        }
    }

    #[test]
    fn churn_is_wellformed() {
        let w = churn(&cfg(1));
        assert!(w.validate().is_ok());
        assert!(w.len() > 2_000);
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        assert_eq!(churn(&cfg(7)).requests, churn(&cfg(7)).requests);
        assert_ne!(churn(&cfg(7)).requests, churn(&cfg(8)).requests);
    }

    #[test]
    fn churn_hovers_near_target() {
        let w = churn(&cfg(3));
        let stats = w.stats();
        assert!(stats.peak_volume >= 4_000);
        // Volume can exceed target only by one object (< 64 cells) at a time,
        // and deletes pull it back under; the peak stays close to target.
        assert!(stats.peak_volume < 4_200, "peak {}", stats.peak_volume);
        assert!(stats.final_volume > 3_000);
    }

    #[test]
    fn skewed_churn_spares_kept_objects() {
        use realloc_common::shard_of;
        // Short enough that the non-kept pool never drains (a longer run
        // eventually holds only kept volume and falls back to deleting it).
        let config = ChurnConfig {
            churn_ops: 600,
            ..cfg(5)
        };
        let w = skewed_churn(&config, |id| shard_of(id, 4) == 0);
        assert!(w.validate().is_ok());
        for req in &w.requests {
            if let Request::Delete { id } = *req {
                assert_ne!(shard_of(id, 4), 0, "deleted a kept object");
            }
        }
        // The kept shard's share of the final volume dominates: imbalance.
        let mut per_shard = [0u64; 4];
        let mut sizes = std::collections::HashMap::new();
        for req in &w.requests {
            match *req {
                Request::Insert { id, size } => {
                    sizes.insert(id, size);
                }
                Request::Delete { id } => {
                    sizes.remove(&id);
                }
            }
        }
        for (&id, &size) in &sizes {
            per_shard[shard_of(id, 4)] += size;
        }
        let total: u64 = per_shard.iter().sum();
        let mean = total as f64 / 4.0;
        assert!(
            per_shard[0] as f64 / mean > 1.5,
            "skew too weak: {per_shard:?}"
        );
    }

    #[test]
    fn churn_is_skewed_churn_with_nothing_kept() {
        // The two generators share one loop; with an empty predicate the
        // RNG sequences (and so the requests) must coincide exactly.
        assert_eq!(
            churn(&cfg(4)).requests,
            skewed_churn(&cfg(4), |_| false).requests
        );
    }

    #[test]
    fn skewed_churn_release_deletes_kept_objects_after_the_phase() {
        use realloc_common::shard_of;
        let config = ChurnConfig {
            churn_ops: 2_000,
            ..cfg(5)
        };
        let keep = |id: ObjectId| shard_of(id, 4) == 0;
        let w = skewed_churn_release(&config, keep, 600);
        assert!(w.validate().is_ok());
        // Count churn-phase deletes of kept objects before/after release.
        // Warm-up is insert-only, so deletes index the churn phase directly.
        let mut churn_ops_seen = 0usize;
        let mut kept_deleted_before = 0;
        let mut kept_deleted_after = 0;
        let mut warmed = false;
        let mut inserts_seen = 0usize;
        let warmup_inserts = {
            // Warm-up length: inserts until volume first reaches target.
            let mut vol = 0u64;
            let mut count = 0usize;
            for req in &w.requests {
                if let Request::Insert { size, .. } = *req {
                    count += 1;
                    vol += size;
                    if vol >= config.target_volume {
                        break;
                    }
                }
            }
            count
        };
        for req in &w.requests {
            if !warmed {
                if let Request::Insert { .. } = req {
                    inserts_seen += 1;
                    if inserts_seen == warmup_inserts {
                        warmed = true;
                    }
                }
                continue;
            }
            if let Request::Delete { id } = *req {
                if shard_of(id, 4) == 0 {
                    if churn_ops_seen < 600 {
                        kept_deleted_before += 1;
                    } else {
                        kept_deleted_after += 1;
                    }
                }
            }
            churn_ops_seen += 1;
        }
        assert_eq!(kept_deleted_before, 0, "skew phase must spare kept ids");
        assert!(kept_deleted_after > 0, "release phase must churn kept ids");
    }

    #[test]
    fn skewed_churn_release_matches_skewed_churn_through_the_skew_phase() {
        // The release variant is byte-identical to plain skewed churn up to
        // the release point (same RNG draws, same pools).
        let config = ChurnConfig {
            churn_ops: 800,
            ..cfg(11)
        };
        let keep = |id: ObjectId| id.0.is_multiple_of(4);
        let all = skewed_churn(&config, keep);
        let released = skewed_churn_release(&config, keep, 500);
        let warmup = all.requests.len() - 800;
        assert_eq!(
            all.requests[..warmup + 500],
            released.requests[..warmup + 500]
        );
        assert_ne!(all.requests, released.requests);
    }

    #[test]
    fn skewed_churn_is_deterministic_per_seed() {
        let keep = |id: ObjectId| id.0.is_multiple_of(3);
        assert_eq!(
            skewed_churn(&cfg(9), keep).requests,
            skewed_churn(&cfg(9), keep).requests
        );
    }

    #[test]
    fn skewed_churn_with_everything_kept_still_churns() {
        // Degenerate predicate: the fallback deletes kept objects rather
        // than stalling, so the workload stays well-formed and target-sized.
        let w = skewed_churn(&cfg(2), |_| true);
        assert!(w.validate().is_ok());
        assert!(w.stats().deletes > 0);
    }

    #[test]
    fn coalescible_churn_is_liveness_correct_and_reuses_ids() {
        let w = coalescible_churn(&cfg(6));
        assert!(w.validate_reuse().is_ok());
        // The whole point is id reuse, which the strict rule must reject.
        assert!(w.validate().is_err());
    }

    #[test]
    fn coalescible_churn_is_deterministic_per_seed() {
        assert_eq!(
            coalescible_churn(&cfg(7)).requests,
            coalescible_churn(&cfg(7)).requests
        );
        assert_ne!(
            coalescible_churn(&cfg(7)).requests,
            coalescible_churn(&cfg(8)).requests
        );
    }

    #[test]
    fn coalescible_churn_has_adjacent_foldable_pairs() {
        let w = coalescible_churn(&cfg(9));
        // Count back-to-back Delete{id}, Insert{id} pairs (touches) and
        // Insert{id}, Delete{id} pairs (transients): the generator exists
        // to produce them, so they must dominate the churn phase.
        let mut touches = 0usize;
        let mut transients = 0usize;
        for pair in w.requests.windows(2) {
            match (pair[0], pair[1]) {
                (Request::Delete { id }, Request::Insert { id: re, .. }) if id == re => {
                    touches += 1;
                }
                (Request::Insert { id, .. }, Request::Delete { id: gone }) if id == gone => {
                    transients += 1;
                }
                _ => {}
            }
        }
        assert!(touches > 2_000 / 4, "only {touches} touches");
        assert!(transients > 2_000 / 10, "only {transients} transients");
    }

    #[test]
    fn grow_only_has_no_deletes() {
        let w = grow_only(&SizeDist::Fixed(8), 100, 5);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.deletes, 0);
        assert_eq!(stats.final_volume, 800);
    }
}
