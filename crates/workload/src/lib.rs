#![warn(missing_docs)]
//! Workload generators for storage (re)allocation experiments.
//!
//! Every generator returns a [`Workload`]: a named, fully materialized
//! request sequence that can be replayed against any
//! [`Reallocator`](realloc_common::Reallocator). Generators are
//! deterministic given their seed so experiments are reproducible.
//!
//! Three families:
//! * [`churn`] — steady-state random workloads over pluggable size
//!   distributions ([`dist`]).
//! * [`adversarial`] — the paper's hand-crafted nasty sequences (the
//!   Lemma 3.7 lower bound, the logging-and-compacting killer, cascade
//!   triggers, and the fragmentation adversary for no-move allocators).
//! * [`trace`] — database-shaped traces (block rewrites through a
//!   translation layer, sawtooth capacity cycles, grow-then-shrink).
//!
//! Plus [`shard`] — partitioning any workload into per-shard streams for
//! the sharded serving layer, preserving per-object request order.

pub mod adversarial;
pub mod churn;
pub mod dist;
pub mod file;
pub mod shard;
pub mod trace;

use realloc_common::ObjectId;

/// One request of the online sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `〈INSERTOBJECT, id, size〉`
    Insert {
        /// Fresh object name.
        id: ObjectId,
        /// Positive object length in cells.
        size: u64,
    },
    /// `〈DELETEOBJECT, id〉`
    Delete {
        /// Name of a live object.
        id: ObjectId,
    },
}

impl Request {
    /// The object this request names (the routing key for sharding).
    pub fn id(&self) -> ObjectId {
        match *self {
            Request::Insert { id, .. } | Request::Delete { id } => id,
        }
    }
}

/// A named, materialized request sequence.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable description (used in experiment tables).
    pub name: String,
    /// The request sequence, in order.
    pub requests: Vec<Request>,
}

/// Summary statistics of a workload (computed by prefix simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Number of insert requests.
    pub inserts: usize,
    /// Number of delete requests.
    pub deletes: usize,
    /// Peak total volume of live objects over the sequence.
    pub peak_volume: u64,
    /// Volume still live at the end.
    pub final_volume: u64,
    /// `∆`: the largest object size in the sequence.
    pub delta: u64,
}

impl Workload {
    /// Creates a named workload from a request sequence.
    pub fn new(name: impl Into<String>, requests: Vec<Request>) -> Self {
        Workload {
            name: name.into(),
            requests,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Checks well-formedness: inserts use fresh ids, deletes name live ids,
    /// sizes are positive. Returns the index of the first bad request.
    pub fn validate(&self) -> Result<(), usize> {
        let mut live = std::collections::HashSet::new();
        let mut ever = std::collections::HashSet::new();
        for (i, req) in self.requests.iter().enumerate() {
            match *req {
                Request::Insert { id, size } => {
                    if size == 0 || !ever.insert(id) {
                        return Err(i);
                    }
                    live.insert(id);
                }
                Request::Delete { id } => {
                    if !live.remove(&id) {
                        return Err(i);
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Workload::validate`] with the fresh-id rule relaxed to liveness:
    /// an insert may recycle an id *after* its delete, it just cannot name
    /// a currently-live one. This is the contract of the coalescible
    /// workloads ([`crate::churn::coalescible_churn`]), whose
    /// delete-then-reinsert touches deliberately reuse names so a batch
    /// planner can fold the pair into one resize.
    pub fn validate_reuse(&self) -> Result<(), usize> {
        let mut live = std::collections::HashSet::new();
        for (i, req) in self.requests.iter().enumerate() {
            match *req {
                Request::Insert { id, size } => {
                    if size == 0 || !live.insert(id) {
                        return Err(i);
                    }
                }
                Request::Delete { id } => {
                    if !live.remove(&id) {
                        return Err(i);
                    }
                }
            }
        }
        Ok(())
    }

    /// Summary statistics via prefix simulation.
    pub fn stats(&self) -> WorkloadStats {
        let mut sizes = std::collections::HashMap::new();
        let mut volume = 0u64;
        let mut stats = WorkloadStats {
            inserts: 0,
            deletes: 0,
            peak_volume: 0,
            final_volume: 0,
            delta: 0,
        };
        for req in &self.requests {
            match *req {
                Request::Insert { id, size } => {
                    stats.inserts += 1;
                    stats.delta = stats.delta.max(size);
                    sizes.insert(id, size);
                    volume += size;
                }
                Request::Delete { id } => {
                    stats.deletes += 1;
                    volume -= sizes.remove(&id).expect("validated workload");
                }
            }
        }
        stats.peak_volume = {
            // Recompute peak with a second pass (cheap, keeps first pass simple).
            let mut sizes = std::collections::HashMap::new();
            let mut v = 0u64;
            let mut peak = 0u64;
            for req in &self.requests {
                match *req {
                    Request::Insert { id, size } => {
                        sizes.insert(id, size);
                        v += size;
                        peak = peak.max(v);
                    }
                    Request::Delete { id } => v -= sizes.remove(&id).expect("validated"),
                }
            }
            peak
        };
        stats.final_volume = volume;
        stats
    }
}

/// Hands out fresh [`ObjectId`]s to generators.
#[derive(Debug, Default, Clone)]
pub struct IdSource {
    next: u64,
}

impl IdSource {
    /// A source starting at id 0.
    pub fn new() -> Self {
        IdSource { next: 0 }
    }

    /// Returns the next unused id.
    pub fn fresh(&mut self) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(id: u64, size: u64) -> Request {
        Request::Insert {
            id: ObjectId(id),
            size,
        }
    }
    fn del(id: u64) -> Request {
        Request::Delete { id: ObjectId(id) }
    }

    #[test]
    fn validate_accepts_wellformed() {
        let w = Workload::new("ok", vec![ins(1, 4), ins(2, 8), del(1), ins(3, 2), del(3)]);
        assert!(w.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_insert() {
        let w = Workload::new("bad", vec![ins(1, 4), ins(1, 4)]);
        assert_eq!(w.validate(), Err(1));
    }

    #[test]
    fn validate_rejects_reused_id_even_after_delete() {
        // Ids are immutable names; generators must not recycle them.
        let w = Workload::new("bad", vec![ins(1, 4), del(1), ins(1, 4)]);
        assert_eq!(w.validate(), Err(2));
    }

    #[test]
    fn validate_rejects_delete_of_unknown() {
        let w = Workload::new("bad", vec![ins(1, 4), del(2)]);
        assert_eq!(w.validate(), Err(1));
    }

    #[test]
    fn validate_rejects_zero_size() {
        let w = Workload::new("bad", vec![ins(1, 0)]);
        assert_eq!(w.validate(), Err(0));
    }

    #[test]
    fn stats_track_volume_and_delta() {
        let w = Workload::new("s", vec![ins(1, 10), ins(2, 6), del(1), ins(3, 1)]);
        let s = w.stats();
        assert_eq!(s.inserts, 3);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.peak_volume, 16);
        assert_eq!(s.final_volume, 7);
        assert_eq!(s.delta, 10);
    }

    #[test]
    fn request_id_is_the_routing_key() {
        assert_eq!(ins(3, 4).id(), ObjectId(3));
        assert_eq!(del(9).id(), ObjectId(9));
    }

    #[test]
    fn id_source_is_sequential() {
        let mut src = IdSource::new();
        assert_eq!(src.fresh(), ObjectId(0));
        assert_eq!(src.fresh(), ObjectId(1));
    }
}
