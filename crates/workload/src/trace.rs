//! Database-shaped traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_common::ObjectId;

use crate::dist::SizeDist;
use crate::{IdSource, Request, Workload};

/// A TokuDB-style block-rewrite trace.
///
/// The motivating database accesses storage through a block translation
/// layer; rewriting a block writes a new version (a fresh insert, possibly
/// of a different size) and frees the old one. This generator maintains
/// `blocks` logical blocks and rewrites a uniformly random one per step,
/// with the new size drawn from `dist`.
pub fn block_rewrites(blocks: usize, rewrites: usize, dist: &SizeDist, seed: u64) -> Workload {
    assert!(blocks > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdSource::new();
    let mut requests = Vec::with_capacity(blocks + 2 * rewrites);
    let mut current: Vec<ObjectId> = (0..blocks)
        .map(|_| {
            let id = ids.fresh();
            requests.push(Request::Insert {
                id,
                size: dist.sample(&mut rng),
            });
            id
        })
        .collect();
    for _ in 0..rewrites {
        let slot = rng.random_range(0..blocks);
        // New version is written before the old is freed, mirroring
        // copy-on-write database engines.
        let new = ids.fresh();
        requests.push(Request::Insert {
            id: new,
            size: dist.sample(&mut rng),
        });
        requests.push(Request::Delete { id: current[slot] });
        current[slot] = new;
    }
    Workload::new(
        format!("block-rewrites({blocks} blocks, {rewrites} rewrites)"),
        requests,
    )
}

/// A sawtooth capacity cycle: grow by inserts to `high` volume, shrink by
/// random deletes to `low`, `cycles` times. Exercises footprint shrinking,
/// the regime no-move allocators handle worst.
pub fn sawtooth(low: u64, high: u64, cycles: usize, dist: &SizeDist, seed: u64) -> Workload {
    assert!(low < high);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let mut live: Vec<(ObjectId, u64)> = Vec::new();
    let mut volume = 0u64;
    for _ in 0..cycles {
        while volume < high {
            let size = dist.sample(&mut rng);
            let id = ids.fresh();
            requests.push(Request::Insert { id, size });
            live.push((id, size));
            volume += size;
        }
        while volume > low && !live.is_empty() {
            let idx = rng.random_range(0..live.len());
            let (id, size) = live.swap_remove(idx);
            requests.push(Request::Delete { id });
            volume -= size;
        }
    }
    Workload::new(format!("sawtooth({low}..{high} ×{cycles})"), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rewrites_keep_block_count() {
        let dist = SizeDist::Uniform { lo: 8, hi: 32 };
        let w = block_rewrites(100, 500, &dist, 9);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        assert_eq!(stats.inserts - stats.deletes, 100);
    }

    #[test]
    fn block_rewrites_overlap_old_and_new_version() {
        // Copy-on-write ordering: insert of version n+1 precedes delete of n,
        // so peak volume exceeds steady-state volume.
        let dist = SizeDist::Fixed(10);
        let w = block_rewrites(10, 50, &dist, 1);
        assert_eq!(w.stats().peak_volume, 110);
    }

    #[test]
    fn sawtooth_reaches_both_extremes() {
        let dist = SizeDist::Fixed(16);
        let w = sawtooth(200, 2_000, 3, &dist, 4);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        assert!(stats.peak_volume >= 2_000);
        assert!(stats.final_volume <= 200 + 16);
    }

    #[test]
    fn traces_deterministic_per_seed() {
        let dist = SizeDist::Uniform { lo: 1, hi: 9 };
        assert_eq!(
            block_rewrites(20, 100, &dist, 5).requests,
            block_rewrites(20, 100, &dist, 5).requests
        );
    }
}
