//! The paper's hand-crafted adversarial sequences.

use crate::{IdSource, Request, Workload};

/// The Lemma 3.7 lower-bound sequence: one size-`delta` insert, `delta`
/// size-1 inserts, then delete the large object.
///
/// Against *any* reallocator maintaining a `(3/2)V` footprint, at least one
/// of these updates must incur reallocation cost `Ω(f(∆))` for every
/// subadditive `f` — either a small insert displaced the large object
/// (cost `f(∆)`), or the final delete forces `Ω(∆)` small objects to move
/// (cost `Ω(∆·f(1)) ⊇ Ω(f(∆))` by subadditivity).
pub fn lemma_3_7(delta: u64) -> Workload {
    assert!(delta >= 2);
    let mut ids = IdSource::new();
    let mut requests = Vec::with_capacity(delta as usize + 2);
    let big = ids.fresh();
    requests.push(Request::Insert {
        id: big,
        size: delta,
    });
    for _ in 0..delta {
        requests.push(Request::Insert {
            id: ids.fresh(),
            size: 1,
        });
    }
    requests.push(Request::Delete { id: big });
    Workload::new(format!("lemma3.7(∆={delta})"), requests)
}

/// The logging-and-compacting killer from the Section 2 intuition: "the
/// deleted objects have size ∆, and the reallocated elements have size 1".
///
/// Each round inserts a size-`delta` object *followed by* `delta` size-1
/// objects, so every large object sits below a batch of small survivors.
/// Deleting the large objects then punches holes that only a compaction
/// dragging the small objects can reclaim: under `f(w) = 1` the amortized
/// cost per delete is `Θ(∆)`. The paper's cost-oblivious algorithm keeps
/// the small objects in their own size-class region and never pays this.
pub fn compaction_killer(delta: u64, rounds: usize) -> Workload {
    assert!(delta >= 2 && rounds >= 1);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let mut bigs = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let big = ids.fresh();
        requests.push(Request::Insert {
            id: big,
            size: delta,
        });
        bigs.push(big);
        for _ in 0..delta {
            requests.push(Request::Insert {
                id: ids.fresh(),
                size: 1,
            });
        }
    }
    for big in bigs {
        requests.push(Request::Delete { id: big });
    }
    Workload::new(
        format!("compaction-killer(∆={delta}, {rounds} rounds)"),
        requests,
    )
}

/// The cascade trigger for the size-class-gaps strategy (Bender et al. 2009
/// sketch): one object in every size class up to `delta`, then a stream of
/// size-1 inserts, each of which can displace one object per class all the
/// way up — `Θ(∆)` volume, i.e. `Θ(log ∆)` competitive under `f(w) = w`
/// when amortized per unit inserted.
pub fn cascade_trigger(delta: u64, small_inserts: usize) -> Workload {
    assert!(delta.is_power_of_two() && delta >= 2);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    let classes = delta.trailing_zeros() + 1;
    // Seed one object per class, largest first so the layout is "tight".
    for k in (0..classes).rev() {
        requests.push(Request::Insert {
            id: ids.fresh(),
            size: 1u64 << k,
        });
    }
    for _ in 0..small_inserts {
        requests.push(Request::Insert {
            id: ids.fresh(),
            size: 1,
        });
    }
    Workload::new(
        format!("cascade(∆={delta}, {small_inserts} unit inserts)"),
        requests,
    )
}

/// Fragmentation adversary for no-move allocators (Robson / Luby-style).
///
/// At level `l` (sizes doubling from 8), insert alternating pairs of a
/// size-`2^l` *filler* and a size-1 *blocker*, then delete all the fillers.
/// The blockers — a vanishing fraction of the volume — keep the holes from
/// coalescing, so the next level's doubled objects fit none of them and
/// claim fresh space. A no-move allocator's footprint grows by
/// `Θ(level_volume)` per level while the live volume stays
/// `O(level_volume)`: the `Ω(log ∆)` footprint lower bound that motivates
/// reallocation. A reallocator simply compacts the blockers.
pub fn nomove_fragmenter(levels: u32, level_volume: u64) -> Workload {
    assert!((1..40).contains(&levels));
    const MIN_L: u32 = 3; // start at size 8 so blockers stay a small fraction
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    // Level l's fillers are deleted only after level l+1 is fully placed:
    // when a level is being laid out no holes big enough for its blockers
    // exist adjacent to it, so its filler/blocker interleaving survives on
    // fresh space and the later holes stay pinned.
    let mut prev_fillers: Vec<realloc_common::ObjectId> = Vec::new();
    for l in MIN_L..MIN_L + levels {
        let size = 1u64 << l;
        let count = (level_volume / size).max(1);
        let mut fillers = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let filler = ids.fresh();
            requests.push(Request::Insert { id: filler, size });
            fillers.push(filler);
            // The blocker stays alive forever, pinning the hole boundaries.
            requests.push(Request::Insert {
                id: ids.fresh(),
                size: 1,
            });
        }
        for filler in prev_fillers.drain(..) {
            requests.push(Request::Delete { id: filler });
        }
        prev_fillers = fillers;
    }
    for filler in prev_fillers {
        requests.push(Request::Delete { id: filler });
    }
    Workload::new(
        format!("fragmenter({levels} levels, {level_volume}/level)"),
        requests,
    )
}

/// Worst-case burst for the deamortized structure: alternating tiny and
/// `delta`-sized updates at a full tail buffer, maximizing the per-update
/// pumped volume `(4/ε')w + ∆`.
pub fn deamortized_burst(delta: u64, rounds: usize) -> Workload {
    assert!(delta >= 2);
    let mut ids = IdSource::new();
    let mut requests = Vec::new();
    // Standing volume so flushes have real work to spread out.
    for _ in 0..delta {
        requests.push(Request::Insert {
            id: ids.fresh(),
            size: 1,
        });
    }
    for _ in 0..4 {
        requests.push(Request::Insert {
            id: ids.fresh(),
            size: delta,
        });
    }
    let mut last_big = None;
    for r in 0..rounds {
        if r % 2 == 0 {
            requests.push(Request::Insert {
                id: ids.fresh(),
                size: 1,
            });
            let id = ids.fresh();
            requests.push(Request::Insert { id, size: delta });
            last_big = Some(id);
        } else if let Some(id) = last_big.take() {
            requests.push(Request::Delete { id });
            requests.push(Request::Insert {
                id: ids.fresh(),
                size: 1,
            });
        }
    }
    Workload::new(format!("deamortized-burst(∆={delta})"), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_3_7_shape() {
        let w = lemma_3_7(16);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        assert_eq!(stats.inserts, 17);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.delta, 16);
        assert_eq!(stats.final_volume, 16);
        // Ends with the delete of the large object.
        assert!(matches!(w.requests.last(), Some(Request::Delete { .. })));
    }

    #[test]
    fn compaction_killer_shape() {
        let w = compaction_killer(64, 8);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        // The small population (8 rounds × 64 unit objects) survives.
        assert_eq!(stats.final_volume, 8 * 64);
        assert_eq!(stats.delta, 64);
        assert_eq!(stats.deletes, 8);
        // Interleaved: the first request is a large insert, the second small.
        assert!(matches!(w.requests[0], Request::Insert { size: 64, .. }));
        assert!(matches!(w.requests[1], Request::Insert { size: 1, .. }));
    }

    #[test]
    fn cascade_trigger_seeds_every_class() {
        let w = cascade_trigger(64, 10);
        assert!(w.validate().is_ok());
        // Classes 0..=6 seeded (sizes 64, 32, ..., 1), then 10 unit inserts.
        assert_eq!(w.stats().inserts, 7 + 10);
        assert_eq!(w.stats().delta, 64);
    }

    #[test]
    fn fragmenter_is_wellformed_and_bounded() {
        let w = nomove_fragmenter(6, 1 << 10);
        assert!(w.validate().is_ok());
        let stats = w.stats();
        // Live volume stays O(level_volume): two adjacent levels' fillers
        // (deletion is deferred by one level) plus the geometric blocker
        // tail.
        assert!(
            stats.peak_volume <= 3 * (1 << 10),
            "peak {}",
            stats.peak_volume
        );
        // Final survivors are blockers only.
        assert!(
            stats.final_volume < (1 << 10) / 2,
            "final {}",
            stats.final_volume
        );
        assert_eq!(stats.delta, 1 << 8);
    }

    #[test]
    fn deamortized_burst_wellformed() {
        let w = deamortized_burst(32, 200);
        assert!(w.validate().is_ok());
        assert_eq!(w.stats().delta, 32);
    }
}
