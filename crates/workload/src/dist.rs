//! Object-size distributions for synthetic workloads.

use rand::Rng;

/// A distribution over positive object sizes.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every object has the same size.
    Fixed(u64),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Smallest size (positive).
        lo: u64,
        /// Largest size (inclusive).
        hi: u64,
    },
    /// Size class `k` (sizes `2^k..2^{k+1}`) is chosen with probability
    /// proportional to `decay^k`, `0 < decay <= 1`, for `k` in
    /// `[0, classes)`; the size is uniform within the class. `decay = 1`
    /// gives the log-uniform distribution; small `decay` skews small.
    ClassPowerLaw {
        /// Number of size classes (sizes up to `2^classes - 1`).
        classes: u32,
        /// Per-class weight decay in `(0, 1]`.
        decay: f64,
    },
    /// Database-flavoured bimodal mix: probability `large_prob` of a
    /// "blob" uniform in `[large_lo, large_hi]`, otherwise a "page" uniform
    /// in `[small_lo, small_hi]`.
    Bimodal {
        /// Smallest page size.
        small_lo: u64,
        /// Largest page size.
        small_hi: u64,
        /// Smallest blob size.
        large_lo: u64,
        /// Largest blob size.
        large_hi: u64,
        /// Probability of drawing a blob.
        large_prob: f64,
    },
}

impl SizeDist {
    /// Sample one size.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match *self {
            SizeDist::Fixed(s) => {
                assert!(s > 0);
                s
            }
            SizeDist::Uniform { lo, hi } => {
                assert!(0 < lo && lo <= hi);
                rng.random_range(lo..=hi)
            }
            SizeDist::ClassPowerLaw { classes, decay } => {
                assert!(classes > 0 && classes < 63);
                assert!(decay > 0.0 && decay <= 1.0);
                // Inverse-CDF over the finite class weights.
                let total: f64 = (0..classes).map(|k| decay.powi(k as i32)).sum();
                let mut u = rng.random_range(0.0..total);
                let mut class = classes - 1;
                for k in 0..classes {
                    let wk = decay.powi(k as i32);
                    if u < wk {
                        class = k;
                        break;
                    }
                    u -= wk;
                }
                let lo = 1u64 << class;
                let hi = (1u64 << (class + 1)) - 1;
                rng.random_range(lo..=hi)
            }
            SizeDist::Bimodal {
                small_lo,
                small_hi,
                large_lo,
                large_hi,
                large_prob,
            } => {
                assert!(0 < small_lo && small_lo <= small_hi);
                assert!(small_hi <= large_lo && large_lo <= large_hi);
                assert!((0.0..=1.0).contains(&large_prob));
                if rng.random_bool(large_prob) {
                    rng.random_range(large_lo..=large_hi)
                } else {
                    rng.random_range(small_lo..=small_hi)
                }
            }
        }
    }

    /// The largest size this distribution can produce.
    pub fn max_size(&self) -> u64 {
        match *self {
            SizeDist::Fixed(s) => s,
            SizeDist::Uniform { hi, .. } => hi,
            SizeDist::ClassPowerLaw { classes, .. } => (1u64 << classes) - 1,
            SizeDist::Bimodal { large_hi, .. } => large_hi,
        }
    }

    /// Short name for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            SizeDist::Fixed(s) => format!("fixed({s})"),
            SizeDist::Uniform { lo, hi } => format!("uniform[{lo},{hi}]"),
            SizeDist::ClassPowerLaw { classes, decay } => {
                format!("powlaw(c={classes},d={decay})")
            }
            SizeDist::Bimodal { large_prob, .. } => format!("bimodal(p={large_prob})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_always_same() {
        let d = SizeDist::Fixed(7);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 7);
        }
    }

    #[test]
    fn uniform_in_range() {
        let d = SizeDist::Uniform { lo: 3, hi: 9 };
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((3..=9).contains(&s));
        }
        assert_eq!(d.max_size(), 9);
    }

    #[test]
    fn power_law_skews_small() {
        let d = SizeDist::ClassPowerLaw {
            classes: 8,
            decay: 0.5,
        };
        let mut r = rng();
        let n = 20_000;
        let small = (0..n).filter(|_| d.sample(&mut r) < 2).count();
        // Class 0 (size 1) has weight 1 of total ~1.99 → ~50%.
        assert!(
            small > n * 2 / 5,
            "expected heavy small skew, got {small}/{n}"
        );
        assert_eq!(d.max_size(), 255);
    }

    #[test]
    fn power_law_respects_class_cap() {
        let d = SizeDist::ClassPowerLaw {
            classes: 4,
            decay: 1.0,
        };
        let mut r = rng();
        for _ in 0..2000 {
            assert!(d.sample(&mut r) <= 15);
        }
    }

    #[test]
    fn bimodal_hits_both_modes() {
        let d = SizeDist::Bimodal {
            small_lo: 1,
            small_hi: 4,
            large_lo: 100,
            large_hi: 200,
            large_prob: 0.3,
        };
        let mut r = rng();
        let mut small = 0;
        let mut large = 0;
        for _ in 0..5000 {
            let s = d.sample(&mut r);
            if s <= 4 {
                small += 1;
            } else {
                assert!((100..=200).contains(&s));
                large += 1;
            }
        }
        assert!(small > 2000 && large > 500);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SizeDist::Fixed(4).label(), "fixed(4)");
        assert_eq!(SizeDist::Uniform { lo: 1, hi: 2 }.label(), "uniform[1,2]");
    }
}
