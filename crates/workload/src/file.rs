//! A plain-text trace format so workloads can be saved, replayed, and
//! exchanged with external tools.
//!
//! One request per line:
//!
//! ```text
//! # comment / blank lines ignored
//! I <id> <size>    # insert
//! D <id>           # delete
//! ```

use realloc_common::ObjectId;

use crate::{Request, Workload};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-trace semantic errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a workload to the text format.
pub fn to_text(workload: &Workload) -> String {
    let mut out = String::with_capacity(workload.len() * 12);
    out.push_str(&format!("# {}\n", workload.name));
    for req in &workload.requests {
        match *req {
            Request::Insert { id, size } => out.push_str(&format!("I {} {}\n", id.0, size)),
            Request::Delete { id } => out.push_str(&format!("D {}\n", id.0)),
        }
    }
    out
}

/// Parses the text format. The first comment line, if any, becomes the
/// workload name.
pub fn from_text(text: &str) -> Result<Workload, ParseError> {
    let mut name = String::from("trace");
    let mut requests = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if requests.is_empty() && name == "trace" {
                name = comment.trim().to_string();
            }
            continue;
        }
        let err = |message: String| ParseError {
            line: i + 1,
            message,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("I") => {
                let id = parts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err("insert needs a numeric id".into()))?;
                let size = parts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err("insert needs a numeric size".into()))?;
                if size == 0 {
                    return Err(err("size must be positive".into()));
                }
                requests.push(Request::Insert {
                    id: ObjectId(id),
                    size,
                });
            }
            Some("D") => {
                let id = parts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or_else(|| err("delete needs a numeric id".into()))?;
                requests.push(Request::Delete { id: ObjectId(id) });
            }
            Some(other) => return Err(err(format!("unknown op {other:?}"))),
            None => unreachable!("blank lines filtered"),
        }
        if parts.next().is_some() {
            return Err(err("trailing tokens".into()));
        }
    }
    let workload = Workload::new(name, requests);
    if let Err(idx) = workload.validate() {
        return Err(ParseError {
            line: 0,
            message: format!("semantically invalid at request index {idx} (duplicate insert, unknown delete, or zero size)"),
        });
    }
    Ok(workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{churn, ChurnConfig};
    use crate::dist::SizeDist;

    #[test]
    fn roundtrip_preserves_requests() {
        let w = churn(&ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 50 },
            target_volume: 1_000,
            churn_ops: 300,
            seed: 5,
        });
        let text = to_text(&w);
        let back = from_text(&text).unwrap();
        assert_eq!(back.requests, w.requests);
        assert_eq!(back.name, w.name);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let w = from_text("# my trace\n\nI 1 10\n# middle comment\nD 1\n").unwrap();
        assert_eq!(w.name, "my trace");
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(from_text("I 1").unwrap_err().line, 1);
        assert_eq!(from_text("I 1 0").unwrap_err().line, 1);
        assert_eq!(from_text("X 1 2").unwrap_err().line, 1);
        assert_eq!(from_text("I 1 2 3").unwrap_err().line, 1);
        assert_eq!(from_text("I one 2").unwrap_err().line, 1);
    }

    #[test]
    fn rejects_semantically_invalid_traces() {
        // Delete of an id that was never inserted.
        let err = from_text("D 7\n").unwrap_err();
        assert!(err.message.contains("semantically invalid"));
        // Duplicate insert.
        assert!(from_text("I 1 5\nI 1 5\n").is_err());
    }
}
