//! Partitioning a workload into per-shard sub-workloads.
//!
//! A sharded serving layer (the `realloc-engine` crate) routes each request
//! by a pure function of its [`ObjectId`]. Because both requests touching
//! an object (its insert and its delete) carry the same id, filtering a
//! sequence by `route(id) == s` yields per-shard streams that preserve
//! **per-object request order** — each sub-sequence is a well-formed
//! workload in its own right, replayable on a standalone reallocator. That
//! observation is what makes sharded and standalone runs comparable
//! shard-for-shard (the engine's equivalence tests are built on it).

use realloc_common::{ObjectId, Router};

use crate::{Request, Workload};

/// Splits `workload` into per-shard sub-workloads under `router` — the
/// routing-layer form of [`split_with`]. The router must be quiescent for
/// the duration (its map queried here must match the map the serving layer
/// will route with, or the split is meaningless).
///
/// # Panics
/// Panics if the router targets zero shards or routes out of range.
pub fn split(workload: &Workload, router: &dyn Router) -> Vec<Workload> {
    split_with(workload, router.shards(), |id| router.route(id))
}

/// Splits `workload` into `shards` sub-workloads, sending each request to
/// `route(id)`. Relative order *within* each sub-workload matches the
/// original sequence, so per-object insert-before-delete order is
/// preserved; order *across* shards is intentionally unconstrained (shards
/// are independent instances).
///
/// # Panics
/// Panics if `shards` is zero or `route` returns an out-of-range shard.
pub fn split_with(
    workload: &Workload,
    shards: usize,
    mut route: impl FnMut(ObjectId) -> usize,
) -> Vec<Workload> {
    assert!(shards > 0, "cannot split into zero shards");
    let mut parts: Vec<Vec<Request>> = vec![Vec::new(); shards];
    for req in &workload.requests {
        let shard = route(req.id());
        assert!(
            shard < shards,
            "router sent {} to shard {shard} of {shards}",
            req.id()
        );
        parts[shard].push(*req);
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(shard, requests)| {
            Workload::new(
                format!("{}[shard {shard}/{shards}]", workload.name),
                requests,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{churn, ChurnConfig};
    use crate::dist::SizeDist;

    fn sample() -> Workload {
        churn(&ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 3_000,
            churn_ops: 1_000,
            seed: 7,
        })
    }

    fn mod_route(id: ObjectId, shards: usize) -> usize {
        (id.0 % shards as u64) as usize
    }

    #[test]
    fn parts_are_wellformed_and_cover_everything() {
        let w = sample();
        let parts = split_with(&w, 3, |id| mod_route(id, 3));
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Workload::len).sum::<usize>(), w.len());
        for part in &parts {
            part.validate().expect("sub-workload must stay well-formed");
        }
    }

    #[test]
    fn per_shard_stream_equals_filtered_original() {
        // The defining property: shard s's stream is exactly the original
        // sequence filtered to route(id) == s, in the original order.
        let w = sample();
        let shards = 4;
        let parts = split_with(&w, shards, |id| mod_route(id, shards));
        for (s, part) in parts.iter().enumerate() {
            let filtered: Vec<Request> = w
                .requests
                .iter()
                .copied()
                .filter(|r| mod_route(r.id(), shards) == s)
                .collect();
            assert_eq!(part.requests, filtered, "shard {s} stream diverges");
        }
    }

    #[test]
    fn split_follows_the_router() {
        use realloc_common::{HashRouter, TableRouter};
        let w = sample();
        // A hash router reproduces split_with over the same hash...
        let router = HashRouter::new(3);
        let by_router = split(&w, &router);
        let by_hash = split_with(&w, 3, |id| realloc_common::shard_of(id, 3));
        for (a, b) in by_router.iter().zip(&by_hash) {
            assert_eq!(a.requests, b.requests);
        }
        // ...and a table router's assignments redirect whole objects.
        let mut table = TableRouter::new(3);
        let victim = w.requests[0].id();
        let target = (table.route(victim) + 1) % 3;
        table.assign(victim, target);
        let parts = split(&w, &table);
        assert!(parts[target].requests.iter().any(|r| r.id() == victim));
        for (s, part) in parts.iter().enumerate() {
            if s != target {
                assert!(part.requests.iter().all(|r| r.id() != victim));
            }
            part.validate().expect("router split stays well-formed");
        }
    }

    #[test]
    fn one_shard_is_identity() {
        let w = sample();
        let parts = split_with(&w, 1, |_| 0);
        assert_eq!(parts[0].requests, w.requests);
    }

    #[test]
    fn part_names_mention_shard() {
        let w = Workload::new("demo", vec![]);
        let parts = split_with(&w, 2, |_| 0);
        assert!(parts[1].name.contains("[shard 1/2]"), "{}", parts[1].name);
    }

    #[test]
    #[should_panic(expected = "zero shards")]
    fn zero_shards_rejected() {
        split_with(&Workload::new("w", vec![]), 0, |_| 0);
    }

    #[test]
    #[should_panic(expected = "shard 5 of 2")]
    fn out_of_range_route_rejected() {
        let w = Workload::new(
            "w",
            vec![Request::Insert {
                id: ObjectId(1),
                size: 4,
            }],
        );
        split_with(&w, 2, |_| 5);
    }
}
