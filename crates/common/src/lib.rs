#![warn(missing_docs)]
//! Shared vocabulary for the cost-oblivious storage reallocation workspace.
//!
//! This crate defines the types that every other crate speaks:
//!
//! * [`ObjectId`] — the immutable *name* of a stored object (the paper's
//!   "block name"; physical addresses may change, names never do).
//! * [`Extent`] — a half-open `[offset, offset+len)` range of the address
//!   space.
//! * [`StorageOp`] — the externally visible actions a reallocator takes:
//!   allocations, reallocations (moves), frees, and checkpoint barriers.
//! * [`Reallocator`] — the trait implemented by the paper's algorithms and by
//!   every baseline, so harnesses can drive them interchangeably.
//! * [`Ledger`] — post-hoc cost accounting. Because the paper's algorithms
//!   are *cost oblivious*, a single run's move log can be priced under any
//!   number of cost functions after the fact; the ledger records exactly the
//!   data needed for that.
//! * [`Router`] — the pluggable id → shard routing layer a sharded serving
//!   stack speaks (stateless hash or explicit table over a rendezvous
//!   fallback). Lives here, not in the engine crate, so workload tooling
//!   can split request streams with a `&dyn Router` without a dependency
//!   cycle.
//! * [`oneshot`] — a dependency-free one-shot completion slot (a
//!   [`std::future::Future`]) plus [`block_on`], the entire async runtime
//!   the engine's async facade needs. No tokio anywhere in the workspace.

pub mod extent;
pub mod ledger;
pub mod oneshot;
pub mod ops;
pub mod realloc;
pub mod router;

pub use extent::Extent;
pub use ledger::{Ledger, OpKind, OpRecord};
pub use oneshot::block_on;
pub use ops::{Outcome, StorageOp};
pub use realloc::{BoxedReallocator, ReallocError, Reallocator};
pub use router::{rendezvous_shard, shard_of, HashRouter, Router, TableRouter};

// The serving layer (`realloc-engine`) moves outcomes, ledgers, and boxed
// reallocators across threads; keep the vocabulary types `Send` by
// construction (a non-`Send` field added to any of these fails to compile
// here, not deep inside the engine).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ObjectId>();
    assert_send::<Extent>();
    assert_send::<StorageOp>();
    assert_send::<Outcome>();
    assert_send::<Ledger>();
    assert_send::<OpRecord>();
    assert_send::<ReallocError>();
    assert_send::<HashRouter>();
    assert_send::<TableRouter>();
    // The async facade fulfils completion slots from fleet worker threads.
    assert_send::<oneshot::Sender<()>>();
    assert_send::<oneshot::Receiver<()>>();
};

/// The immutable name of a stored object.
///
/// Mirrors the block-name side of TokuDB's block translation layer: requests
/// refer to objects by `ObjectId`, and the reallocator is free to change the
/// physical [`Extent`] behind the name at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Size class of a `size`-cell object: class `k` holds sizes
/// `2^k <= size < 2^(k+1)` (the paper indexes the same classes from 1).
///
/// # Panics
/// Panics on `size == 0`; zero-length objects are rejected at the API
/// boundary before this is ever called.
#[inline]
pub fn size_class(size: u64) -> u32 {
    assert!(size > 0, "objects have positive integral length");
    63 - size.leading_zeros()
}

/// Smallest size in `class`, i.e. `2^class`.
#[inline]
pub fn class_min_size(class: u32) -> u64 {
    1u64 << class
}

/// Largest size in `class`, i.e. `2^(class+1) - 1`.
#[inline]
pub fn class_max_size(class: u32) -> u64 {
    (1u64 << (class + 1)) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_boundaries() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(4), 2);
        assert_eq!(size_class(7), 2);
        assert_eq!(size_class(8), 3);
        assert_eq!(size_class(1 << 40), 40);
        assert_eq!(size_class(u64::MAX), 63);
    }

    #[test]
    fn class_bounds_are_inverse_of_size_class() {
        for class in 0..20 {
            assert_eq!(size_class(class_min_size(class)), class);
            assert_eq!(size_class(class_max_size(class)), class);
            if class > 0 {
                assert_eq!(size_class(class_min_size(class) - 1), class - 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive integral length")]
    fn size_class_rejects_zero() {
        size_class(0);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(7).to_string(), "obj#7");
    }
}
