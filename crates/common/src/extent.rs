//! Half-open ranges of the (unbounded) storage address space.

/// A half-open extent `[offset, offset + len)` of the address space.
///
/// The address space is measured in abstract unit-size *cells* (the paper's
/// integral object lengths); a cell could be a byte, a 4 KiB page, or a disk
/// block — the algorithms never care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Extent {
    /// First cell of the extent.
    pub offset: u64,
    /// Number of cells; always positive for a placed object.
    pub len: u64,
}

impl Extent {
    /// Creates an extent at `offset` spanning `len` cells.
    #[inline]
    pub fn new(offset: u64, len: u64) -> Self {
        Extent { offset, len }
    }

    /// One past the last cell.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether the two extents share at least one cell.
    #[inline]
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.offset < other.end() && other.offset < self.end()
    }

    /// Whether `other` lies entirely within `self`.
    #[inline]
    pub fn contains(&self, other: &Extent) -> bool {
        self.offset <= other.offset && other.end() <= self.end()
    }

    /// Whether the cell `addr` lies within the extent.
    #[inline]
    pub fn contains_addr(&self, addr: u64) -> bool {
        self.offset <= addr && addr < self.end()
    }

    /// The extent shifted so it starts at `offset` (same length).
    #[inline]
    pub fn at(&self, offset: u64) -> Extent {
        Extent {
            offset,
            len: self.len,
        }
    }

    /// Number of shared cells between the two extents.
    pub fn intersection_len(&self, other: &Extent) -> u64 {
        let lo = self.offset.max(other.offset);
        let hi = self.end().min(other.end());
        hi.saturating_sub(lo)
    }
}

impl std::fmt::Display for Extent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_and_contains() {
        let e = Extent::new(10, 5);
        assert_eq!(e.end(), 15);
        assert!(e.contains_addr(10));
        assert!(e.contains_addr(14));
        assert!(!e.contains_addr(15));
        assert!(!e.contains_addr(9));
        assert!(e.contains(&Extent::new(11, 3)));
        assert!(e.contains(&Extent::new(10, 5)));
        assert!(!e.contains(&Extent::new(11, 5)));
    }

    #[test]
    fn overlap_cases() {
        let a = Extent::new(0, 10);
        assert!(a.overlaps(&Extent::new(9, 1)));
        assert!(!a.overlaps(&Extent::new(10, 1)));
        assert!(a.overlaps(&Extent::new(0, 1)));
        assert!(!Extent::new(5, 5).overlaps(&Extent::new(0, 5)));
        // The overlap that makes nonoverlapping reallocation interesting:
        // an object moved by less than its own length.
        let big = Extent::new(100, 50);
        assert!(big.overlaps(&big.at(120)));
        assert!(!big.overlaps(&big.at(150)));
    }

    #[test]
    fn intersection_lengths() {
        let a = Extent::new(0, 10);
        assert_eq!(a.intersection_len(&Extent::new(5, 10)), 5);
        assert_eq!(a.intersection_len(&Extent::new(10, 10)), 0);
        assert_eq!(a.intersection_len(&Extent::new(2, 3)), 3);
    }

    #[test]
    fn display_formats_half_open() {
        assert_eq!(Extent::new(3, 4).to_string(), "[3, 7)");
    }
}
