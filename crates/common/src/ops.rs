//! Externally visible actions a reallocator takes while serving a request.

use crate::{Extent, ObjectId};

/// One physical action emitted while serving an insert or delete request.
///
/// A substrate (see the `storage-sim` crate) replays these against real
/// storage; a [`crate::Ledger`] prices them under cost functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    /// First physical placement of a new object. Priced as *allocation* cost
    /// `f(len)` — the denominator of the paper's competitive ratio.
    Allocate {
        /// The object being placed.
        id: ObjectId,
        /// Its first physical location.
        to: Extent,
    },
    /// Reallocation of an existing object. Priced as *reallocation* cost
    /// `f(len)` — the numerator of the competitive ratio.
    Move {
        /// The object being moved.
        id: ObjectId,
        /// Its current location (must match the substrate's view).
        from: Extent,
        /// Its new location.
        to: Extent,
    },
    /// The object's cells become free (delete completed). Free of charge; the
    /// checkpointing substrate tracks the epoch in which it happened.
    Free {
        /// The object being freed.
        id: ObjectId,
        /// Its final location.
        at: Extent,
    },
    /// Block until the system performs a checkpoint (Section 3 of the paper).
    /// After the barrier, space freed before it becomes writable again.
    CheckpointBarrier,
}

impl StorageOp {
    /// The number of cells written by this op (0 for frees/barriers).
    pub fn cells_written(&self) -> u64 {
        match self {
            StorageOp::Allocate { to, .. } => to.len,
            StorageOp::Move { to, .. } => to.len,
            StorageOp::Free { .. } | StorageOp::CheckpointBarrier => 0,
        }
    }

    /// Whether this op is a reallocation (move) of an existing object.
    pub fn is_move(&self) -> bool {
        matches!(self, StorageOp::Move { .. })
    }

    /// The extent this op writes, if it writes one (allocations and moves).
    /// A substrate accounting physical bytes written sums the lengths of
    /// exactly these extents.
    pub fn written_extent(&self) -> Option<Extent> {
        match self {
            StorageOp::Allocate { to, .. } | StorageOp::Move { to, .. } => Some(*to),
            StorageOp::Free { .. } | StorageOp::CheckpointBarrier => None,
        }
    }
}

/// Everything a reallocator reports about one completed request.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Physical actions, in execution order.
    pub ops: Vec<StorageOp>,
    /// Whether this request triggered (or pumped, for the deamortized
    /// structure) a buffer flush.
    pub flushed: bool,
    /// Largest structure size reached *while* serving the request, including
    /// any transient overflow/staging space. Lemmas 2.5 / 3.1 / 3.5 bound
    /// this quantity.
    pub peak_structure_size: u64,
    /// Checkpoint barriers contained in `ops` (cached count).
    pub checkpoints: u32,
}

impl Outcome {
    /// An outcome with no physical actions.
    pub fn empty() -> Self {
        Outcome::default()
    }

    /// Total volume (cells) moved by reallocations in this request.
    pub fn moved_volume(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                StorageOp::Move { to, .. } => Some(to.len),
                _ => None,
            })
            .sum()
    }

    /// Number of reallocations in this request.
    pub fn move_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_move()).count()
    }

    /// Sizes of all moved objects (for post-hoc pricing).
    pub fn moved_sizes(&self) -> impl Iterator<Item = u64> + '_ {
        self.ops.iter().filter_map(|op| match op {
            StorageOp::Move { to, .. } => Some(to.len),
            _ => None,
        })
    }

    /// The extent where a newly inserted object ended up, if this request
    /// was an insert.
    pub fn placement_of(&self, id: ObjectId) -> Option<Extent> {
        // The final position is the last op touching `id`.
        self.ops.iter().rev().find_map(|op| match op {
            StorageOp::Allocate { id: oid, to } if *oid == id => Some(*to),
            StorageOp::Move { id: oid, to, .. } if *oid == id => Some(*to),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(o: u64, l: u64) -> Extent {
        Extent::new(o, l)
    }

    #[test]
    fn moved_volume_counts_only_moves() {
        let out = Outcome {
            ops: vec![
                StorageOp::Allocate {
                    id: ObjectId(1),
                    to: ext(0, 4),
                },
                StorageOp::Move {
                    id: ObjectId(2),
                    from: ext(10, 6),
                    to: ext(4, 6),
                },
                StorageOp::Move {
                    id: ObjectId(3),
                    from: ext(20, 2),
                    to: ext(10, 2),
                },
                StorageOp::Free {
                    id: ObjectId(4),
                    at: ext(30, 9),
                },
                StorageOp::CheckpointBarrier,
            ],
            ..Outcome::default()
        };
        assert_eq!(out.moved_volume(), 8);
        assert_eq!(out.move_count(), 2);
        assert_eq!(out.moved_sizes().collect::<Vec<_>>(), vec![6, 2]);
    }

    #[test]
    fn placement_takes_last_touch() {
        let out = Outcome {
            ops: vec![
                StorageOp::Allocate {
                    id: ObjectId(1),
                    to: ext(100, 4),
                },
                StorageOp::Move {
                    id: ObjectId(1),
                    from: ext(100, 4),
                    to: ext(0, 4),
                },
            ],
            ..Outcome::default()
        };
        assert_eq!(out.placement_of(ObjectId(1)), Some(ext(0, 4)));
        assert_eq!(out.placement_of(ObjectId(9)), None);
    }

    #[test]
    fn cells_written() {
        assert_eq!(
            StorageOp::Allocate {
                id: ObjectId(1),
                to: ext(0, 7)
            }
            .cells_written(),
            7
        );
        assert_eq!(
            StorageOp::Free {
                id: ObjectId(1),
                at: ext(0, 7)
            }
            .cells_written(),
            0
        );
        assert_eq!(StorageOp::CheckpointBarrier.cells_written(), 0);
    }
}
