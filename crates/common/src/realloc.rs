//! The driver-facing trait implemented by every (re)allocator in the
//! workspace — the paper's algorithms and all baselines.

use crate::{Extent, ObjectId, Outcome};

/// Errors surfaced at the request API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReallocError {
    /// An insert reused an id that is still active.
    DuplicateId(ObjectId),
    /// A delete (or lookup) named an id that is not active.
    UnknownId(ObjectId),
    /// Objects must have positive integral length.
    ZeroSize,
    /// A cross-shard transfer's payload failed byte verification on
    /// arrival (checksum mismatch or truncation), so the receiving shard
    /// refused to adopt the object. Raised by a substrate-backed serving
    /// layer, never by a reallocator itself.
    CorruptTransfer(ObjectId),
}

impl std::fmt::Display for ReallocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReallocError::DuplicateId(id) => write!(f, "{id} is already active"),
            ReallocError::UnknownId(id) => write!(f, "{id} is not active"),
            ReallocError::ZeroSize => write!(f, "objects must have positive length"),
            ReallocError::CorruptTransfer(id) => {
                write!(f, "{id} arrived damaged and was refused")
            }
        }
    }
}

impl std::error::Error for ReallocError {}

/// An online storage (re)allocator: serves `INSERTOBJECT` / `DELETEOBJECT`
/// requests, after each of which every active object has a placement.
///
/// Implementors range from the paper's cost-oblivious reallocators (which
/// move objects) to classical memory allocators (which never do). Drivers
/// treat them uniformly: feed requests, replay the returned [`Outcome`] ops
/// against a substrate, and account costs in a ledger.
///
/// The trait itself carries no `Send` bound (single-threaded drivers should
/// not pay for one), but every implementor in this workspace is `Send` —
/// plain owned data, no interior pointers — so the sharded serving layer
/// can move `Box<dyn Reallocator + Send>` (see [`BoxedReallocator`]) onto
/// worker threads. Keep new implementors `Send`; the algorithm crates
/// enforce this with compile-time assertions.
pub trait Reallocator {
    /// Serve `〈INSERTOBJECT, id, size〉`.
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError>;

    /// Serve `〈DELETEOBJECT, id〉`.
    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError>;

    /// Current placement of an active object.
    fn extent_of(&self, id: ObjectId) -> Option<Extent>;

    /// Total volume `V` of active objects. Objects whose delete has been
    /// requested but not yet completed (deamortized structure) still count,
    /// matching the paper's definition of *active*.
    fn live_volume(&self) -> u64;

    /// Space consumed by the structure: the end of its last segment,
    /// including reserved-but-empty buffer space. This is the quantity the
    /// space lemmas bound by `(1 + O(ε')) V (+ ∆)`.
    fn structure_size(&self) -> u64;

    /// The *footprint* as defined in the paper: one past the largest address
    /// currently storing an object. Always `<= structure_size()`.
    fn footprint(&self) -> u64;

    /// `∆`: the largest object length seen so far.
    fn max_object_size(&self) -> u64;

    /// Completes any deferred work, returning the physical ops performed.
    ///
    /// Most implementors serve every request to completion and have nothing
    /// to do (the default returns an empty [`Outcome`]). The deamortized
    /// structure overrides this to pump its in-progress flush to the end, so
    /// that afterwards pending deletes have drained and liveness queries
    /// match the request history exactly. Drivers comparing any
    /// `dyn Reallocator` against a reference model should quiesce first.
    fn quiesce(&mut self) -> Outcome {
        Outcome::empty()
    }

    /// Short human-readable algorithm name for tables.
    fn name(&self) -> &'static str;

    /// Number of active objects.
    fn live_count(&self) -> usize;
}

/// A boxed reallocator that can be handed to another thread — the unit of
/// ownership a sharded serving layer gives each worker.
pub type BoxedReallocator = Box<dyn Reallocator + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            ReallocError::DuplicateId(ObjectId(3)).to_string(),
            "obj#3 is already active"
        );
        assert_eq!(
            ReallocError::UnknownId(ObjectId(4)).to_string(),
            "obj#4 is not active"
        );
        assert_eq!(
            ReallocError::ZeroSize.to_string(),
            "objects must have positive length"
        );
    }
}
