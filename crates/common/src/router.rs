//! Object-id → shard routing, as a first-class pluggable layer.
//!
//! A sharded serving layer needs one decision per request: which shard owns
//! this [`ObjectId`]? The [`Router`] trait makes that decision swappable:
//!
//! * [`HashRouter`] — the stateless default: a fixed SplitMix64 hash
//!   ([`shard_of`]). Zero per-object state, perfectly reproducible, but the
//!   map is frozen — no object can ever be re-homed, so a skewed delete
//!   pattern can leave shard volumes arbitrarily unbalanced.
//! * [`TableRouter`] — an explicit id → shard assignment table over a
//!   *consistent-hash-style* fallback ([`rendezvous_shard`], highest-random-
//!   weight hashing) for ids with no assignment. Assignments are what a
//!   cross-shard rebalancer mutates; the rendezvous fallback is what keeps a
//!   shard-count resize from re-homing more than `~1/n` of the unassigned
//!   ids.
//!
//! The trait lives in `realloc-common` (not the engine crate) so the
//! workload splitter can take a `&dyn Router` without a dependency cycle.

use std::collections::HashMap;

use crate::ObjectId;

/// The SplitMix64 finalizer: the avalanche core shared by [`shard_of`] and
/// [`rendezvous_shard`]. Pure, seedless, fixed for all time.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard in `0..shards` that owns `id` under the stateless hash route.
///
/// A SplitMix64 finalizer over the raw id, reduced by Lemire's multiply-shift
/// trick. Two properties matter to callers:
///
/// * **Stability** — the map is a pure function of `(id, shards)`, fixed for
///   all time (no per-process seed, unlike `DefaultHasher`), so replaying a
///   workload yields byte-identical per-shard streams across runs and
///   builds. The engine's determinism tests rely on this.
/// * **Diffusion** — sequential ids (the common case: workload generators
///   hand them out in order) spread uniformly, so shard volumes stay
///   balanced and the aggregate `(1+ε)Σ V_i` bound is tight in practice,
///   not just in the worst case.
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn shard_of(id: ObjectId, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    let z = mix64(id.0);
    // Multiply-shift maps the hash to [0, shards) without modulo bias.
    (((z as u128) * (shards as u128)) >> 64) as usize
}

/// The shard in `0..shards` that owns `id` under highest-random-weight
/// (rendezvous) hashing: `argmax_s mix64(id ⊕ salt(s))`.
///
/// Unlike [`shard_of`], growing `shards` from `n` to `n+1` re-homes each id
/// with probability only `1/(n+1)` — the consistent-hashing property a
/// live shard-count resize wants, at `O(shards)` per lookup (shard counts
/// are small; routing is not the hot path).
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn rendezvous_shard(id: ObjectId, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (0..shards)
        .max_by_key(|&s| mix64(id.0 ^ mix64(s as u64 + 1)))
        .expect("non-empty shard range")
}

/// A pluggable id → shard map.
///
/// Implementors must be deterministic between mutations: two `route` calls
/// with no intervening `assign`/`unassign`/`set_shards` return the same
/// shard. The serving layer only mutates a router at quiesce barriers, so
/// both requests touching an object (its insert and its delete) route to
/// the same shard and per-object request order is preserved.
pub trait Router: Send {
    /// Number of shards this router targets.
    fn shards(&self) -> usize;

    /// The shard in `0..self.shards()` that owns `id`.
    fn route(&self, id: ObjectId) -> usize;

    /// Where `id` *would* live if the router targeted `shards` shards —
    /// the hypothetical a resize planner asks before committing to
    /// [`set_shards`](Router::set_shards). Must agree with `route` when
    /// `shards == self.shards()`.
    fn route_at(&self, id: ObjectId, shards: usize) -> usize;

    /// Whether [`assign`](Router::assign) can pin ids (i.e. whether a
    /// rebalancer can re-home objects through this router).
    fn supports_assignment(&self) -> bool {
        false
    }

    /// Pins `id` to `shard`, overriding the fallback. Returns `false` for
    /// routers without assignment state (the pin is not recorded).
    ///
    /// # Panics
    /// Implementations with assignment state panic if
    /// `shard >= self.shards()`.
    fn assign(&mut self, id: ObjectId, shard: usize) -> bool {
        let _ = (id, shard);
        false
    }

    /// Drops any explicit assignment for `id` (it reverts to the fallback).
    fn unassign(&mut self, id: ObjectId) {
        let _ = id;
    }

    /// Re-targets the router at `shards` shards. Explicit assignments to
    /// shards `>= shards` are dropped (the caller must have migrated those
    /// objects first).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    fn set_shards(&mut self, shards: usize);

    /// Number of explicit assignments currently held (0 for stateless
    /// routers).
    fn assignments(&self) -> usize {
        0
    }

    /// Every explicit `(id, shard)` assignment currently held, in
    /// unspecified order (empty for stateless routers). This is the state a
    /// durability layer checkpoints: the fallback is a pure function, so
    /// the assignment table *is* the router.
    fn assigned_ids(&self) -> Vec<(ObjectId, usize)> {
        Vec::new()
    }

    /// Short human-readable router name for tables.
    fn name(&self) -> &'static str;
}

/// The stateless default router: [`shard_of`] — a fixed SplitMix64 hash.
///
/// Routing is a pure function of `(id, shards)`, so an engine built on this
/// router behaves byte-identically to the pre-router serving layer. The
/// price of statelessness: no object can be re-homed, so cross-shard
/// rebalancing is not available ([`supports_assignment`](Router::supports_assignment)
/// is `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// A hash router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        HashRouter { shards }
    }
}

impl Router for HashRouter {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, id: ObjectId) -> usize {
        shard_of(id, self.shards)
    }

    fn route_at(&self, id: ObjectId, shards: usize) -> usize {
        shard_of(id, shards)
    }

    fn set_shards(&mut self, shards: usize) {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// An explicit id → shard assignment table over a rendezvous-hash fallback.
///
/// Ids without an assignment route via [`rendezvous_shard`], so a fresh
/// `TableRouter` is as balanced as a hash router; assignments are added by
/// the serving layer's rebalancer (and by resizes) to re-home specific
/// objects. The table is the router's only state — dropping an assignment
/// returns the id to the fallback.
#[derive(Debug, Clone)]
pub struct TableRouter {
    shards: usize,
    table: HashMap<ObjectId, usize>,
}

impl TableRouter {
    /// An empty-table router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        TableRouter {
            shards,
            table: HashMap::new(),
        }
    }

    /// The explicit assignment for `id`, if any.
    pub fn assignment(&self, id: ObjectId) -> Option<usize> {
        self.table.get(&id).copied().filter(|&s| s < self.shards)
    }
}

impl Router for TableRouter {
    fn shards(&self) -> usize {
        self.shards
    }

    fn route(&self, id: ObjectId) -> usize {
        self.route_at(id, self.shards)
    }

    fn route_at(&self, id: ObjectId, shards: usize) -> usize {
        match self.table.get(&id) {
            Some(&s) if s < shards => s,
            _ => rendezvous_shard(id, shards),
        }
    }

    fn supports_assignment(&self) -> bool {
        true
    }

    fn assign(&mut self, id: ObjectId, shard: usize) -> bool {
        assert!(
            shard < self.shards,
            "assignment to shard {shard} of {}",
            self.shards
        );
        // An assignment that matches the fallback is pure table bloat.
        if rendezvous_shard(id, self.shards) == shard {
            self.table.remove(&id);
        } else {
            self.table.insert(id, shard);
        }
        true
    }

    fn unassign(&mut self, id: ObjectId) {
        self.table.remove(&id);
    }

    fn set_shards(&mut self, shards: usize) {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        // Assignments to dead shards are gone; assignments that now match
        // the (changed) fallback are redundant.
        self.table
            .retain(|&id, &mut s| s < shards && rendezvous_shard(id, shards) != s);
    }

    fn assignments(&self) -> usize {
        self.table.len()
    }

    fn assigned_ids(&self) -> Vec<(ObjectId, usize)> {
        self.table.iter().map(|(&id, &s)| (id, s)).collect()
    }

    fn name(&self) -> &'static str {
        "table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..=9 {
            for raw in (0..1_000).chain([u64::MAX - 1, u64::MAX]) {
                let s = shard_of(ObjectId(raw), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ObjectId(raw), shards));
            }
        }
    }

    /// The exact mapping is frozen: changing the hash silently re-homes
    /// every stored object of every deployed engine, so lock a few values.
    /// (Moved here from the deprecated `realloc_engine::route` shim.)
    #[test]
    fn shard_of_mapping_is_frozen() {
        let snapshot: Vec<usize> = (0..16).map(|raw| shard_of(ObjectId(raw), 4)).collect();
        assert_eq!(
            snapshot,
            vec![3, 2, 2, 0, 1, 1, 2, 1, 2, 2, 0, 1, 2, 3, 1, 2]
        );
    }

    #[test]
    fn sequential_ids_balance_under_both_hashes() {
        let shards = 8;
        let (mut hash_counts, mut rdv_counts) = (vec![0usize; shards], vec![0usize; shards]);
        for raw in 0..8_000u64 {
            hash_counts[shard_of(ObjectId(raw), shards)] += 1;
            rdv_counts[rendezvous_shard(ObjectId(raw), shards)] += 1;
        }
        for s in 0..shards {
            assert!(
                (800..1_200).contains(&hash_counts[s]),
                "hash shard {s} got {} of 8000",
                hash_counts[s]
            );
            assert!(
                (800..1_200).contains(&rdv_counts[s]),
                "rendezvous shard {s} got {} of 8000",
                rdv_counts[s]
            );
        }
    }

    #[test]
    fn rendezvous_resize_moves_about_one_nth() {
        // The consistent-hashing property: growing 4 → 5 shards re-homes
        // roughly 1/5 of ids. The multiply-shift hash re-homes every id
        // whose contiguous hash bucket shifts — ~half of them at 4 → 5.
        let n = 10_000u64;
        let mut rdv_moved = 0;
        let mut hash_moved = 0;
        for raw in 0..n {
            let id = ObjectId(raw);
            if rendezvous_shard(id, 4) != rendezvous_shard(id, 5) {
                rdv_moved += 1;
            }
            if shard_of(id, 4) != shard_of(id, 5) {
                hash_moved += 1;
            }
        }
        assert!(
            (1_500..2_500).contains(&rdv_moved),
            "rendezvous re-homed {rdv_moved} of {n} (expected ~2000)"
        );
        assert!(
            hash_moved > 2 * rdv_moved,
            "hash re-homed {hash_moved} of {n}, rendezvous {rdv_moved} — \
             rendezvous should move far fewer"
        );
    }

    #[test]
    fn rendezvous_grow_only_moves_to_the_new_shard() {
        // HRW's defining property: ids re-homed by a grow all land on the
        // newly added shard.
        for raw in 0..5_000u64 {
            let id = ObjectId(raw);
            let (old, new) = (rendezvous_shard(id, 6), rendezvous_shard(id, 7));
            if old != new {
                assert_eq!(new, 6, "{id} re-homed to an existing shard");
            }
        }
    }

    #[test]
    fn hash_router_is_the_stateless_hash() {
        let mut r = HashRouter::new(4);
        for raw in 0..100 {
            let id = ObjectId(raw);
            assert_eq!(r.route(id), shard_of(id, 4));
            assert_eq!(r.route_at(id, 7), shard_of(id, 7));
        }
        assert!(!r.supports_assignment());
        assert!(!r.assign(ObjectId(1), 2), "hash router cannot pin");
        assert_eq!(r.assignments(), 0);
        r.set_shards(2);
        assert_eq!(r.shards(), 2);
        assert_eq!(r.name(), "hash");
    }

    #[test]
    fn table_router_fallback_is_rendezvous() {
        let r = TableRouter::new(5);
        for raw in 0..200 {
            let id = ObjectId(raw);
            assert_eq!(r.route(id), rendezvous_shard(id, 5));
        }
        assert!(r.supports_assignment());
        assert_eq!(r.name(), "table");
    }

    #[test]
    fn assignments_override_and_revert() {
        let mut r = TableRouter::new(4);
        let id = ObjectId(42);
        let fallback = r.route(id);
        let other = (fallback + 1) % 4;
        assert!(r.assign(id, other));
        assert_eq!(r.route(id), other);
        assert_eq!(r.assignment(id), Some(other));
        assert_eq!(r.assignments(), 1);
        assert_eq!(r.assigned_ids(), vec![(id, other)]);
        r.unassign(id);
        assert_eq!(r.route(id), fallback);
        assert_eq!(r.assignments(), 0);
        assert!(r.assigned_ids().is_empty());
    }

    #[test]
    fn assigning_the_fallback_keeps_the_table_empty() {
        let mut r = TableRouter::new(4);
        let id = ObjectId(7);
        assert!(r.assign(id, r.route(id)));
        assert_eq!(r.assignments(), 0, "fallback assignment is not stored");
    }

    #[test]
    fn set_shards_drops_dead_and_redundant_assignments() {
        let mut r = TableRouter::new(6);
        // Pin 100 ids to shard 5, which dies in the resize.
        for raw in 0..100 {
            if r.route(ObjectId(raw)) != 5 {
                r.assign(ObjectId(raw), 5);
            }
        }
        assert!(r.assignments() > 0);
        r.set_shards(4);
        assert_eq!(r.shards(), 4);
        assert_eq!(r.assignments(), 0, "assignments to dead shards dropped");
        for raw in 0..100 {
            let id = ObjectId(raw);
            assert_eq!(r.route(id), rendezvous_shard(id, 4));
        }
    }

    #[test]
    fn route_at_previews_a_resize() {
        let mut r = TableRouter::new(4);
        let id = ObjectId(9);
        let other = (r.route(id) + 1) % 4;
        r.assign(id, other);
        // The assignment survives a preview that keeps its shard alive...
        assert_eq!(r.route_at(id, 6), other);
        // ...but a preview that kills it falls back to rendezvous.
        if other >= 1 {
            assert_eq!(r.route_at(id, 1), 0);
        }
        assert_eq!(r.route_at(id, r.shards()), r.route(id));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        shard_of(ObjectId(1), 0);
    }

    #[test]
    #[should_panic(expected = "assignment to shard 9")]
    fn out_of_range_assignment_rejected() {
        TableRouter::new(4).assign(ObjectId(1), 9);
    }
}
