//! Post-hoc cost accounting for (re)allocator runs.
//!
//! Cost obliviousness is what makes this design possible: the paper's
//! algorithms make identical decisions for every cost function, so a single
//! run can be recorded once and then priced under arbitrarily many cost
//! functions. The ledger stores, per request, the allocation size (if any),
//! the sizes of all objects moved, and the space telemetry needed by the
//! space lemmas.

use crate::Outcome;

/// Which request produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An `INSERTOBJECT` request.
    Insert,
    /// A `DELETEOBJECT` request.
    Delete,
    /// A cross-shard migration leaving this instance (delete-on-source half
    /// of a rebalance/resize transfer). Not a client request: the object
    /// stays alive, just elsewhere, so nothing is allocated or freed from
    /// the client's point of view.
    MigrateOut,
    /// A cross-shard migration arriving at this instance (insert-on-target
    /// half). The transfer itself is a *reallocation* — the object was
    /// already allocated once in its life — so its size belongs in
    /// `moved_sizes`, never in `allocated`.
    MigrateIn,
    /// A Theorem 2.7 defragmentation pass over this instance's live
    /// objects; `moved_sizes` carries the schedule's moves so the pass is
    /// priceable under any cost function like everything else.
    Defrag,
}

/// Ledger entry for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Which request produced this record.
    pub kind: OpKind,
    /// The request's object size `w` (inserted or deleted) — the `w` in
    /// worst-case bounds like Lemma 3.6's `O((1/ε)·w·f(1) + f(∆))`.
    pub request_size: u64,
    /// Size allocated by this request (inserts only).
    pub allocated: Option<u64>,
    /// Sizes of every object reallocated while serving this request.
    pub moved_sizes: Vec<u64>,
    /// Checkpoint barriers emitted by this request.
    pub checkpoints: u32,
    /// Structure size after the request completed.
    pub structure_after: u64,
    /// Peak structure size during the request (overflow/staging included).
    pub peak_during: u64,
    /// Active volume `V` after the request completed.
    pub volume_after: u64,
    /// `∆` so far.
    pub delta_after: u64,
}

impl OpRecord {
    /// Total volume moved by this request.
    pub fn moved_volume(&self) -> u64 {
        self.moved_sizes.iter().sum()
    }
}

/// Accumulated run history, priceable under any cost function after the fact.
#[derive(Debug, Default, Clone)]
pub struct Ledger {
    records: Vec<OpRecord>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Record one completed request.
    ///
    /// `allocated` is `Some(size)` for inserts. `structure_after`,
    /// `volume_after` and `delta_after` come from the reallocator's state
    /// queries immediately after the request.
    #[allow(clippy::too_many_arguments)] // a flat record of one request's telemetry
    pub fn record(
        &mut self,
        kind: OpKind,
        request_size: u64,
        allocated: Option<u64>,
        outcome: &Outcome,
        structure_after: u64,
        volume_after: u64,
        delta_after: u64,
    ) {
        self.records.push(OpRecord {
            kind,
            request_size,
            allocated,
            moved_sizes: outcome.moved_sizes().collect(),
            checkpoints: outcome.checkpoints,
            structure_after,
            peak_during: outcome.peak_structure_size.max(structure_after),
            volume_after,
            delta_after,
        });
    }

    /// Appends a pre-built record. The serve path goes through
    /// [`record`](Self::record); migration and defrag passes build their own
    /// [`OpRecord`]s (their move accounting is not derivable from a single
    /// [`Outcome`] — e.g. a cross-shard transfer adds the object itself to
    /// `moved_sizes`) and push them here.
    pub fn push(&mut self, record: OpRecord) {
        self.records.push(record);
    }

    /// All records in request order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records of `kind` — e.g. how many cross-shard transfers
    /// this instance received (`OpKind::MigrateIn`) or handed off
    /// (`OpKind::MigrateOut`); a fleet is consistent when the two totals
    /// agree across its union of ledgers.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// `Σ f(w)` over every inserted object — the paper's lower bound on any
    /// algorithm's cost and the denominator of its competitive cost ratio.
    pub fn total_alloc_cost(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        self.records.iter().filter_map(|r| r.allocated).map(f).sum()
    }

    /// `Σ f(w)` over every reallocation performed in the run.
    pub fn total_realloc_cost(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        self.records
            .iter()
            .flat_map(|r| r.moved_sizes.iter())
            .map(|&w| f(w))
            .sum()
    }

    /// The paper's cost competitive ratio `b`: reallocation cost divided by
    /// total allocation cost. Returns 0 when nothing was allocated.
    pub fn cost_ratio(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        let alloc = self.total_alloc_cost(f);
        if alloc == 0.0 {
            0.0
        } else {
            self.total_realloc_cost(f) / alloc
        }
    }

    /// Largest reallocation cost charged to a single request (the worst-case
    /// bound of Lemma 3.6 / Lemma 3.7).
    pub fn max_op_realloc_cost(&self, f: &dyn Fn(u64) -> f64) -> f64 {
        self.records
            .iter()
            .map(|r| r.moved_sizes.iter().map(|&w| f(w)).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Largest volume moved by a single request.
    pub fn max_op_moved_volume(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.moved_volume())
            .max()
            .unwrap_or(0)
    }

    /// Total volume moved across the run.
    pub fn total_moved_volume(&self) -> u64 {
        self.records.iter().map(|r| r.moved_volume()).sum()
    }

    /// Total number of reallocations across the run.
    pub fn total_moves(&self) -> usize {
        self.records.iter().map(|r| r.moved_sizes.len()).sum()
    }

    /// Max over requests of `structure_after / volume_after` — the
    /// steady-state footprint competitive ratio `a` (Lemma 2.5).
    pub fn max_settled_space_ratio(&self) -> f64 {
        self.records
            .iter()
            .filter(|r| r.volume_after > 0)
            .map(|r| r.structure_after as f64 / r.volume_after as f64)
            .fold(0.0, f64::max)
    }

    /// Max over requests of `(peak_during - slack·∆) / volume` style ratios
    /// is experiment-specific; expose the raw worst additive form instead:
    /// the max of `peak_during` minus `(1+eps_bound)·V`, in cells. Used to
    /// verify Lemma 3.1's `(1 + O(ε'))V + ∆` envelope.
    pub fn max_peak_excess(&self, space_factor: f64) -> f64 {
        self.records
            .iter()
            .filter(|r| r.volume_after > 0)
            .map(|r| r.peak_during as f64 - space_factor * r.volume_after as f64)
            .fold(f64::MIN, f64::max)
    }

    /// Largest number of checkpoint barriers in a single request.
    pub fn max_op_checkpoints(&self) -> u32 {
        self.records
            .iter()
            .map(|r| r.checkpoints)
            .max()
            .unwrap_or(0)
    }

    /// Total checkpoint barriers across the run.
    pub fn total_checkpoints(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.checkpoints)).sum()
    }

    /// Number of requests that flushed (moved at least one object).
    pub fn requests_with_moves(&self) -> usize {
        self.records
            .iter()
            .filter(|r| !r.moved_sizes.is_empty())
            .count()
    }

    /// Max over requests of `moved_volume / (pump_rate·w + ∆)` — 1.0 or
    /// less means the Lemma 3.6 worst-case volume bound held with pump rate
    /// `pump_rate = 4/ε′`.
    pub fn max_worst_case_utilization(&self, pump_rate: f64) -> f64 {
        self.records
            .iter()
            .map(|r| {
                r.moved_volume() as f64
                    / (pump_rate * r.request_size as f64 + r.delta_after as f64).max(1.0)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Extent, ObjectId, StorageOp};

    fn outcome_with_moves(moves: &[u64], checkpoints: u32, peak: u64) -> Outcome {
        let mut ops = Vec::new();
        let mut at = 0;
        for (i, &w) in moves.iter().enumerate() {
            ops.push(StorageOp::Move {
                id: ObjectId(i as u64),
                from: Extent::new(1000 + at, w),
                to: Extent::new(at, w),
            });
            at += w;
        }
        for _ in 0..checkpoints {
            ops.push(StorageOp::CheckpointBarrier);
        }
        Outcome {
            ops,
            flushed: !moves.is_empty(),
            peak_structure_size: peak,
            checkpoints,
        }
    }

    fn sample_ledger() -> Ledger {
        let mut ledger = Ledger::new();
        // insert of size 4, no moves
        ledger.record(
            OpKind::Insert,
            4,
            Some(4),
            &outcome_with_moves(&[], 0, 4),
            4,
            4,
            4,
        );
        // insert of size 8 that flushed, moving a 4 and an 8
        ledger.record(
            OpKind::Insert,
            8,
            Some(8),
            &outcome_with_moves(&[4, 8], 2, 20),
            13,
            12,
            8,
        );
        // delete, no moves
        ledger.record(
            OpKind::Delete,
            8,
            None,
            &outcome_with_moves(&[], 0, 13),
            13,
            8,
            8,
        );
        ledger
    }

    #[test]
    fn alloc_and_realloc_costs_linear() {
        let ledger = sample_ledger();
        let linear = |w: u64| w as f64;
        assert_eq!(ledger.total_alloc_cost(&linear), 12.0);
        assert_eq!(ledger.total_realloc_cost(&linear), 12.0);
        assert_eq!(ledger.cost_ratio(&linear), 1.0);
    }

    #[test]
    fn alloc_and_realloc_costs_unit() {
        let ledger = sample_ledger();
        let unit = |_w: u64| 1.0;
        assert_eq!(ledger.total_alloc_cost(&unit), 2.0);
        assert_eq!(ledger.total_realloc_cost(&unit), 2.0);
        assert_eq!(ledger.max_op_realloc_cost(&unit), 2.0);
    }

    #[test]
    fn space_telemetry() {
        let ledger = sample_ledger();
        assert_eq!(ledger.max_op_moved_volume(), 12);
        assert_eq!(ledger.total_moved_volume(), 12);
        assert_eq!(ledger.total_moves(), 2);
        // ratios: 4/4, 13/12, 13/8
        assert!((ledger.max_settled_space_ratio() - 13.0 / 8.0).abs() < 1e-12);
        assert_eq!(ledger.max_op_checkpoints(), 2);
        assert_eq!(ledger.total_checkpoints(), 2);
        assert_eq!(ledger.requests_with_moves(), 1);
    }

    #[test]
    fn empty_ledger_is_benign() {
        let ledger = Ledger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.cost_ratio(&|w| w as f64), 0.0);
        assert_eq!(ledger.max_op_moved_volume(), 0);
        assert_eq!(ledger.max_settled_space_ratio(), 0.0);
    }

    #[test]
    fn pushed_migration_records_price_as_reallocations() {
        let mut ledger = sample_ledger();
        // A migrated-in 6-cell object: the transfer is a move, not an
        // allocation, so it lands in realloc cost only.
        ledger.push(OpRecord {
            kind: OpKind::MigrateIn,
            request_size: 6,
            allocated: None,
            moved_sizes: vec![6],
            checkpoints: 0,
            structure_after: 19,
            peak_during: 19,
            volume_after: 14,
            delta_after: 8,
        });
        let linear = |w: u64| w as f64;
        assert_eq!(ledger.total_alloc_cost(&linear), 12.0, "alloc unchanged");
        assert_eq!(ledger.total_realloc_cost(&linear), 18.0);
        assert_eq!(ledger.total_moved_volume(), 18);
        assert_eq!(ledger.len(), 4);
        assert_eq!(ledger.count_kind(OpKind::MigrateIn), 1);
        assert_eq!(ledger.count_kind(OpKind::MigrateOut), 0);
        assert_eq!(ledger.count_kind(OpKind::Insert), 2);
    }

    #[test]
    fn peak_excess_uses_peak_during() {
        let ledger = sample_ledger();
        // record 2: peak 20, V 12 → excess over 1.0·V is 8.
        assert!((ledger.max_peak_excess(1.0) - 8.0).abs() < 1e-12);
    }
}
