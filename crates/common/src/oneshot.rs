//! A hand-rolled one-shot completion slot and a matching `block_on` —
//! the entire async runtime the workspace needs, with zero dependencies.
//!
//! The async front-end ([`realloc-engine`]'s `AsyncEngine`) hands every
//! enqueued request a [`Receiver<T>`]: a [`std::future::Future`] that
//! resolves once a shard worker fulfils the paired [`Sender<T>`] at ack
//! time. No executor is assumed: a receiver can be awaited inside any
//! runtime (it stores whatever [`Waker`] polls it), driven to completion
//! on the current thread with [`block_on`] (a `std::task::Wake`
//! park/unpark loop), or simply dropped — a slot whose receiver is gone
//! turns the send into a no-op instead of an error, which is exactly the
//! fire-and-forget semantics a dropped completion future should have.
//!
//! [`realloc-engine`]: ../../realloc_engine/index.html

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// One slot's lifecycle. `Empty → Filled → (taken)` on the happy path;
/// either side dropping early moves it to a terminal state the other side
/// observes instead of blocking forever.
enum State<T> {
    /// Nothing sent yet; holds the waker of the last poll, if any.
    Empty(Option<Waker>),
    /// Value delivered, receiver has not consumed it yet.
    Filled(T),
    /// The sender was dropped without sending.
    SenderGone,
    /// The receiver was dropped (or already consumed the value).
    Closed,
}

struct Slot<T> {
    state: Mutex<State<T>>,
}

/// The fulfilment half of a one-shot slot, created by [`channel`].
pub struct Sender<T> {
    slot: Arc<Slot<T>>,
}

/// The completion future half of a one-shot slot, created by [`channel`].
///
/// Resolves to `Ok(value)` once the sender delivers, or to
/// `Err(`[`Dropped`]`)` if the sender is dropped unfulfilled. Dropping
/// the receiver before resolution is always safe.
pub struct Receiver<T> {
    slot: Arc<Slot<T>>,
}

/// The sender was dropped without ever sending — the operation it stood
/// for will never complete (e.g. its shard worker is gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dropped;

impl std::fmt::Display for Dropped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "one-shot sender dropped without sending")
    }
}

impl std::error::Error for Dropped {}

/// Creates a connected one-shot pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(State::Empty(None)),
    });
    (Sender { slot: slot.clone() }, Receiver { slot })
}

impl<T> Sender<T> {
    /// Delivers `value`, waking the receiver if it is parked in a poll.
    /// A receiver that was already dropped makes this a silent no-op —
    /// completion slots outlive dropped futures by design.
    pub fn send(self, value: T) {
        let waker = {
            let mut state = self.slot.state.lock().expect("one-shot slot poisoned");
            match std::mem::replace(&mut *state, State::Filled(value)) {
                State::Empty(waker) => waker,
                State::Closed => {
                    // Dropped-before-resolved future: discard the value
                    // (restore Closed so a late poll cannot see it).
                    *state = State::Closed;
                    None
                }
                State::Filled(_) | State::SenderGone => {
                    unreachable!("one-shot sender consumed twice")
                }
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        // Skip the Drop impl: the state is already terminal.
        std::mem::forget(self);
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let waker = {
            let mut state = self.slot.state.lock().expect("one-shot slot poisoned");
            match std::mem::replace(&mut *state, State::SenderGone) {
                State::Empty(waker) => waker,
                // Receiver already gone (or value already delivered via
                // `send`'s forget path — impossible here, but harmless).
                other => {
                    *state = other;
                    None
                }
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, Dropped>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.slot.state.lock().expect("one-shot slot poisoned");
        match std::mem::replace(&mut *state, State::Closed) {
            State::Filled(value) => Poll::Ready(Ok(value)),
            State::SenderGone => Poll::Ready(Err(Dropped)),
            State::Empty(_) => {
                *state = State::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
            State::Closed => unreachable!("one-shot receiver polled after completion"),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.slot.state.lock().expect("one-shot slot poisoned");
        *state = State::Closed;
    }
}

/// The thread-parking waker behind [`block_on`]: `wake` unparks the
/// polling thread (and flags the wake first, closing the race where the
/// unpark lands before the park).
struct ThreadWaker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        *self.ready.lock().expect("waker flag poisoned") = true;
        self.cv.notify_one();
    }
}

/// Drives `future` to completion on the current thread: poll, park until
/// woken, poll again. This is the whole executor — enough to await any
/// combination of one-shot receivers without an async runtime in the
/// dependency tree.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker_state = Arc::new(ThreadWaker {
        ready: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(waker_state.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            return out;
        }
        let mut ready = waker_state.ready.lock().expect("waker flag poisoned");
        while !*ready {
            ready = waker_state.cv.wait(ready).expect("waker flag poisoned");
        }
        *ready = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_block_on_resolves() {
        let (tx, rx) = channel();
        tx.send(7u64);
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn block_on_wakes_across_threads() {
        let (tx, rx) = channel();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("late");
        });
        assert_eq!(block_on(rx), Ok("late"));
        sender.join().unwrap();
    }

    #[test]
    fn dropped_sender_surfaces_as_error() {
        let (tx, rx) = channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(Dropped));
    }

    #[test]
    fn dropped_receiver_makes_send_a_noop() {
        let (tx, rx) = channel();
        drop(rx);
        tx.send(1u8); // must not panic or leak a waker
    }

    #[test]
    fn out_of_order_await_order_is_fine() {
        let (tx_a, rx_a) = channel();
        let (tx_b, rx_b) = channel();
        tx_a.send(1u32);
        tx_b.send(2u32);
        // Await the later-created slot first.
        assert_eq!(block_on(rx_b), Ok(2));
        assert_eq!(block_on(rx_a), Ok(1));
    }

    #[test]
    fn block_on_joins_many_receivers() {
        let pairs: Vec<_> = (0..64u64).map(|_| channel()).collect();
        let mut receivers = Vec::new();
        let mut senders = Vec::new();
        for (tx, rx) in pairs {
            senders.push(tx);
            receivers.push(rx);
        }
        let filler = std::thread::spawn(move || {
            for (i, tx) in senders.into_iter().enumerate() {
                tx.send(i as u64);
            }
        });
        let got = block_on(async {
            let mut out = Vec::new();
            for rx in receivers {
                out.push(rx.await.unwrap());
            }
            out
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        filler.join().unwrap();
    }
}
