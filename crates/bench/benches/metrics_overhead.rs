//! E17 — what does always-on telemetry cost? (our addition; the paper
//! has no serving layer, let alone a metrics one.)
//!
//! The engine records per-batch service latency, prices op streams
//! against an optional device model, and times WAL group commits — all
//! on by default. The claim that justifies "on by default" is that the
//! observer is nearly free: the fast path adds two `Instant::now()`
//! reads and a handful of relaxed atomic increments per *batch* (not per
//! request), so serving throughput with telemetry on must stay within a
//! few percent of telemetry off.
//!
//! Three configurations over the standard churn workload: telemetry off,
//! telemetry on (wall-clock histograms only), and telemetry on with the
//! `disk` device profile (adds op-stream pricing — a float multiply-add
//! per ledgered op). The head-to-head interleaves off/on rounds so slow
//! machine-load drift cancels out of the reported ratio, and prints a
//! PASS/FAIL verdict at the 3% budget.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_common::Reallocator;
use realloc_core::CostObliviousReallocator;
use realloc_engine::{DeviceProfile, Engine, EngineConfig};
use workload_gen::Workload;

const EPS: f64 = 0.25;
const SHARDS: usize = 4;

fn run(w: &Workload, telemetry: bool, device: Option<DeviceProfile>) -> u64 {
    let mut config = EngineConfig::with_shards(SHARDS);
    if !telemetry {
        config = config.without_telemetry();
    }
    config.device = device;
    let mut engine = Engine::new(config, |_| {
        Box::new(CostObliviousReallocator::new(EPS)) as Box<dyn Reallocator + Send>
    });
    engine.drive(w).expect("drive");
    engine.quiesce().expect("quiesce").live_volume()
}

fn metrics_overhead(c: &mut Criterion) {
    let workload = realloc_bench::standard_churn(150_000, 30_000, 4242);
    let n = workload.len() as u64;

    let mut group = c.benchmark_group("metrics_overhead");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("telemetry", "off"), |b| {
        b.iter(|| run(&workload, false, None))
    });
    group.bench_function(BenchmarkId::new("telemetry", "on"), |b| {
        b.iter(|| run(&workload, true, None))
    });
    group.bench_function(BenchmarkId::new("telemetry", "on+disk"), |b| {
        b.iter(|| run(&workload, true, Some(DeviceProfile::Disk)))
    });
    group.finish();

    // Head-to-head: alternate off and on so background-load drift hits
    // both equally, and compare the *best* round of each — the minimum is
    // the standard noise-robust estimator (external load only ever adds
    // time, so the fastest round is the least-perturbed measurement). The
    // gated configuration is the *default* one (telemetry on, no device);
    // device pricing is opt-in extra work, reported but not gated.
    run(&workload, false, None); // warm-up
    run(&workload, true, None);
    const ROUNDS: usize = 9;
    let (mut t_off, mut t_on, mut t_disk) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        run(&workload, false, None);
        t_off = t_off.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run(&workload, true, None);
        t_on = t_on.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run(&workload, true, Some(DeviceProfile::Disk));
        t_disk = t_disk.min(t.elapsed().as_secs_f64());
    }
    let overhead = t_on / t_off - 1.0;
    println!(
        "  metrics_overhead summary: default telemetry costs {:+.2}% \
         ({:.0} vs {:.0} requests/sec, best of {ROUNDS} interleaved rounds) \
         [budget < 3%: {}]; opt-in disk pricing on top: {:+.2}%",
        100.0 * overhead,
        n as f64 / t_on,
        n as f64 / t_off,
        realloc_bench::verdict(overhead < 0.03),
        100.0 * (t_disk / t_off - 1.0),
    );
}

criterion_group!(benches, metrics_overhead);
criterion_main!(benches);
