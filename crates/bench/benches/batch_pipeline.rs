//! E16 — batch-pipeline coalescing: what does planning a batch before
//! applying it buy under delete+reinsert-heavy churn?
//!
//! The workload is `coalescible_churn` at V≈1M on the *strict* substrate
//! (checkpointed variant — the §3 regime where every physical write is
//! database-priced): half the traffic touches a live object by deleting
//! and immediately reinserting the same id, a fifth is born-and-gone
//! transients, the rest plain churn. An uncoalesced engine replays every
//! request against the reallocator; the coalescing engine folds each
//! channel batch first — a touch becomes one resize (or nothing, same
//! size), a transient never exists, resize chains collapse to the last
//! size.
//!
//! The acceptance bar (ISSUE 8): the coalescing engine serves the same
//! stream with **≥ 10% higher ops/s** and **≥ 20% fewer substrate
//! `bytes_written`**, landing byte-identical observable state (checked
//! here; `tests/batch_pipeline.rs` proves it property-wise). Both numbers
//! print with a PASS/FAIL verdict, and the run is exported as
//! `BENCH_batch_pipeline.json` (re-parsed with the strict codec before the
//! bench exits) so the perf trajectory is tracked run-over-run.
//!
//! `BATCH_PIPELINE_SMOKE=1` shrinks the run to one small round and skips
//! the wall-clock gate (CI machines are noisy; the bytes gate is
//! deterministic and still enforced).

use std::process::ExitCode;
use std::time::Instant;

use realloc_bench::{fmt2, fmt_u64, Table};
use realloc_common::Reallocator;
use realloc_core::CheckpointedReallocator;
use realloc_engine::{Engine, EngineConfig, EngineStats, Json, SubstrateConfig, SubstrateRules};
use workload_gen::churn::{coalescible_churn, ChurnConfig};
use workload_gen::dist::SizeDist;
use workload_gen::Workload;

const EPS: f64 = 0.25;
const SHARDS: usize = 4;
const BATCH: usize = 256;

struct Scale {
    target_volume: u64,
    churn_ops: usize,
    /// Timed runs per mode; the comparison uses the median elapsed.
    runs: usize,
    /// Whether the wall-clock gate applies (off in smoke mode).
    gate_throughput: bool,
}

fn scale() -> Scale {
    if std::env::var_os("BATCH_PIPELINE_SMOKE").is_some() {
        Scale {
            target_volume: 50_000,
            churn_ops: 10_000,
            runs: 1,
            gate_throughput: false,
        }
    } else {
        Scale {
            target_volume: 1_000_000,
            churn_ops: 150_000,
            runs: 3,
            gate_throughput: true,
        }
    }
}

struct RunResult {
    elapsed_s: f64,
    stats: EngineStats,
}

fn run(workload: &Workload, coalesce: bool) -> RunResult {
    let mut config = EngineConfig {
        batch: BATCH,
        ..EngineConfig::with_shards(SHARDS)
    }
    .with_substrate(SubstrateConfig {
        mode: SubstrateRules::Strict,
        ..SubstrateConfig::default()
    });
    if coalesce {
        config = config.coalescing();
    }
    let mut engine = Engine::new(config, |_| {
        Box::new(CheckpointedReallocator::new(EPS)) as Box<dyn Reallocator + Send>
    });
    let start = Instant::now();
    engine.drive(workload).expect("drive");
    let stats = engine.quiesce().expect("quiesce");
    let elapsed_s = start.elapsed().as_secs_f64();
    engine.shutdown().expect("shutdown");
    RunResult { elapsed_s, stats }
}

/// Median-by-elapsed of `runs` runs (the deterministic stats are identical
/// across repeats; only the wall clock varies).
fn run_many(workload: &Workload, coalesce: bool, runs: usize) -> RunResult {
    let mut results: Vec<RunResult> = (0..runs).map(|_| run(workload, coalesce)).collect();
    results.sort_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s));
    results.remove(runs / 2)
}

fn export(path: &str, doc: &Json) -> Result<(), String> {
    let text = doc.to_string();
    // Self-validate with the strict parser before anything trusts the file.
    let parsed = Json::parse(&text)?;
    if &parsed != doc {
        return Err("export did not round-trip".into());
    }
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))
}

fn side(r: &RunResult, ops_per_sec: f64) -> Json {
    let mut side = Json::obj();
    side.set("elapsed_s", r.elapsed_s)
        .set("ops_per_sec", ops_per_sec)
        .set("bytes_written", r.stats.bytes_written())
        .set("requests", r.stats.requests())
        .set("requests_coalesced", r.stats.requests_coalesced())
        .set("requests_cancelled", r.stats.requests_cancelled());
    side
}

fn main() -> ExitCode {
    let scale = scale();
    let workload = coalescible_churn(&ChurnConfig {
        dist: SizeDist::Uniform { lo: 16, hi: 128 },
        target_volume: scale.target_volume,
        churn_ops: scale.churn_ops,
        seed: 21,
    });
    assert!(workload.validate_reuse().is_ok(), "generator contract");
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!(
        "engine:   checkpointed × {SHARDS} shards (ε = {EPS}, batch = {BATCH}), \
         strict substrate; median of {} run{}{}\n",
        scale.runs,
        if scale.runs == 1 { "" } else { "s" },
        if scale.gate_throughput {
            ""
        } else {
            " (smoke: wall-clock gate off)"
        }
    );

    let raw = run_many(&workload, false, scale.runs);
    let planned = run_many(&workload, true, scale.runs);

    // Same observable state, or the comparison is meaningless.
    assert_eq!(raw.stats.live_count(), planned.stats.live_count());
    assert_eq!(raw.stats.live_volume(), planned.stats.live_volume());
    assert_eq!(raw.stats.requests(), planned.stats.requests());

    let ops = workload.len() as f64;
    let raw_ops_s = ops / raw.elapsed_s.max(1e-9);
    let planned_ops_s = ops / planned.elapsed_s.max(1e-9);
    let speedup = planned_ops_s / raw_ops_s.max(1e-9) - 1.0;
    let saved =
        1.0 - planned.stats.bytes_written() as f64 / raw.stats.bytes_written().max(1) as f64;

    let mut table = Table::new(
        "batch pipeline: raw replay vs planned batches".to_string(),
        &[
            "mode",
            "ops/s",
            "bytes written",
            "coalesced",
            "cancelled",
            "elapsed s",
        ],
    );
    for (name, r, ops_s) in [
        ("raw", &raw, raw_ops_s),
        ("planned", &planned, planned_ops_s),
    ] {
        table.row(vec![
            name.to_string(),
            fmt_u64(ops_s as u64),
            fmt_u64(r.stats.bytes_written()),
            fmt_u64(r.stats.requests_coalesced()),
            fmt_u64(r.stats.requests_cancelled()),
            fmt2(r.elapsed_s),
        ]);
    }
    table.print();

    let bytes_ok = saved >= 0.20;
    let throughput_ok = !scale.gate_throughput || speedup >= 0.10;
    let pass = bytes_ok && throughput_ok;
    println!(
        "\n  ops/s {:+.1}% (target ≥ +10%{}); bytes written {:.1}% fewer \
         (target ≥ 20%) {}",
        100.0 * speedup,
        if scale.gate_throughput {
            ""
        } else {
            ", not gated in smoke"
        },
        100.0 * saved,
        realloc_bench::verdict(pass),
    );

    let mut doc = Json::obj();
    doc.set("bench", "batch_pipeline")
        .set("smoke", !scale.gate_throughput)
        .set("requests", workload.len())
        .set("raw", side(&raw, raw_ops_s))
        .set("planned", side(&planned, planned_ops_s))
        .set("speedup", speedup)
        .set("bytes_saved_frac", saved)
        .set("pass", pass);
    let path = "BENCH_batch_pipeline.json";
    match export(path, &doc) {
        Ok(()) => println!("  exported {path} (re-parsed OK)"),
        Err(e) => {
            eprintln!("  export failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
