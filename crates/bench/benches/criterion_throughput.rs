//! E12 — CPU throughput of the reallocators themselves (our addition; the
//! paper's model counts movement cost, not planning time).
//!
//! Criterion benchmark: requests/second over the standard churn workload
//! for each algorithm, plus the flush-heavy small-ε case.

use alloc_baselines::{
    FitStrategy, FreeListAllocator, LogCompactAllocator, SizeClassGapsAllocator,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_common::Reallocator;
use realloc_core::{CheckpointedReallocator, CostObliviousReallocator, DeamortizedReallocator};
use workload_gen::{Request, Workload};

fn drive(r: &mut dyn Reallocator, w: &Workload) -> u64 {
    let mut moved = 0;
    for req in &w.requests {
        let out = match *req {
            Request::Insert { id, size } => r.insert(id, size).expect("insert"),
            Request::Delete { id } => r.delete(id).expect("delete"),
        };
        moved += out.moved_volume();
    }
    moved
}

fn throughput(c: &mut Criterion) {
    let workload = realloc_bench::standard_churn(20_000, 10_000, 1234);
    let n = workload.len() as u64;

    let mut group = c.benchmark_group("churn_requests");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("cost-oblivious", "eps=0.5"), |b| {
        b.iter(|| drive(&mut CostObliviousReallocator::new(0.5), &workload))
    });
    group.bench_function(BenchmarkId::new("cost-oblivious", "eps=0.0625"), |b| {
        b.iter(|| drive(&mut CostObliviousReallocator::new(0.0625), &workload))
    });
    group.bench_function(BenchmarkId::new("checkpointed", "eps=0.5"), |b| {
        b.iter(|| drive(&mut CheckpointedReallocator::new(0.5), &workload))
    });
    group.bench_function(BenchmarkId::new("deamortized", "eps=0.5"), |b| {
        b.iter(|| drive(&mut DeamortizedReallocator::new(0.5), &workload))
    });
    group.bench_function(BenchmarkId::new("first-fit", "baseline"), |b| {
        b.iter(|| {
            drive(
                &mut FreeListAllocator::new(FitStrategy::FirstFit),
                &workload,
            )
        })
    });
    group.bench_function(BenchmarkId::new("log-compact", "baseline"), |b| {
        b.iter(|| drive(&mut LogCompactAllocator::new(), &workload))
    });
    group.bench_function(BenchmarkId::new("size-class-gaps", "baseline"), |b| {
        b.iter(|| drive(&mut SizeClassGapsAllocator::new(), &workload))
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
