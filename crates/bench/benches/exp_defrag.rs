//! E6 — Theorem 2.7: the cost-oblivious defragmenter sorts a set of
//! objects by an arbitrary comparison function using at most `(1+ε)V + ∆`
//! space and `O((1/ε) log(1/ε))` moves per object amortized.
//!
//! Compared against the naive two-pass defragmenter, which needs `2V`
//! working space. Move costs are priced under the whole cost-function
//! suite (the machinery is the cost-oblivious reallocator, so one schedule
//! serves all functions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realloc_common::{Extent, ObjectId};
use realloc_core::defragment;

use realloc_bench::{banner, fmt2, fmt_u64, verdict, Table};

/// Builds a fragmented allocation: `n` objects, sizes 1..=max_size, holes
/// so the input occupies ~(1+slack)·V.
fn fragmented_input(n: usize, max_size: u64, slack: f64, seed: u64) -> Vec<(ObjectId, Extent)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes: Vec<u64> = (0..n).map(|_| rng.random_range(1..=max_size)).collect();
    let volume: u64 = sizes.iter().sum();
    let hole_budget = (volume as f64 * slack) as u64;
    let mut at = 0;
    sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let e = Extent::new(at, s);
            at += s + (hole_budget / n as u64).min(hole_budget);
            (ObjectId(i as u64), e)
        })
        .collect()
}

fn main() {
    banner(
        "E6 (exp_defrag)",
        "Theorem 2.7",
        "sort with (1+ε)V + ∆ space (naive needs 2V) and O((1/ε)log(1/ε)) moves per object",
    );

    let suite = cost_model::standard_suite();
    let mut table = Table::new(
        "defragmentation sweep (sort by size)",
        &[
            "n",
            "ε",
            "V",
            "∆",
            "peak space",
            "(1+ε)V+∆ bound",
            "naive 2V",
            "avg moves/obj",
            "max moves/obj",
            "in budget",
        ],
    );
    let mut cost_table = Table::new(
        "defrag cost ratio (move cost / one-allocation-each cost) per cost function",
        &{
            let mut h = vec!["n", "ε"];
            h.extend(suite.iter().map(|f| f.name()));
            h
        },
    );

    for &n in &[200usize, 1_000] {
        for &eps in &[0.5, 0.25, 0.125] {
            let input = fragmented_input(n, 256, eps * 0.9, 7);
            let volume: u64 = input.iter().map(|(_, e)| e.len).sum();
            let delta: u64 = input.iter().map(|(_, e)| e.len).max().unwrap();
            let sizes: std::collections::HashMap<ObjectId, u64> =
                input.iter().map(|&(id, e)| (id, e.len)).collect();

            let report = defragment(&input, eps, |a, b| {
                sizes[&a].cmp(&sizes[&b]).then(a.0.cmp(&b.0))
            })
            .expect("valid input");

            let bound = report.budget + delta;
            let in_budget = report.peak_space <= bound && !report.prefix_suffix_collision;
            // Sorted check.
            let sorted_ok = report
                .sorted
                .windows(2)
                .all(|w| sizes[&w[0].0] <= sizes[&w[1].0]);

            table.row(vec![
                n.to_string(),
                fmt2(eps),
                fmt_u64(volume),
                fmt_u64(delta),
                fmt_u64(report.peak_space),
                fmt_u64(bound),
                fmt_u64(2 * volume),
                fmt2(report.avg_moves_per_object()),
                report.max_moves_per_object.to_string(),
                verdict(in_budget && sorted_ok),
            ]);

            // Price the schedule: numerator = cost of all defrag moves,
            // denominator = cost of allocating each object once.
            let mut row = vec![n.to_string(), fmt2(eps)];
            for f in &suite {
                let moves: f64 = report
                    .ops
                    .iter()
                    .filter_map(|op| match op {
                        realloc_common::StorageOp::Move { to, .. } => Some(f.cost(to.len)),
                        _ => None,
                    })
                    .sum();
                let allocs: f64 = input.iter().map(|(_, e)| f.cost(e.len)).sum();
                row.push(fmt2(moves / allocs));
            }
            cost_table.row(row);
        }
    }
    table.print();
    cost_table.print();

    println!(
        "\nreading: peak space always within (1+ε)V + ∆ — beating the naive 2V even at\n\
         ε = 1/8 — and the per-function cost ratios grow only mildly as ε tightens,\n\
         consistent with O((1/ε)log(1/ε))."
    );
}
