//! E7 — Lemmas 3.1–3.3: the checkpointed reallocator under the database
//! rules.
//!
//! * Lemma 3.1: space during a flush stays within `(1+O(ε′))V + O(∆)`
//!   (we report the measured additive excess over `(1+ε)V` in units of ∆);
//! * Lemma 3.2: every phase's moves are nonoverlapping and never touch
//!   space freed since the last checkpoint — enforced mechanically by
//!   replaying the op stream in a strict-mode substrate;
//! * Lemma 3.3: `O(1/ε)` checkpoints per flush — reported as the max/avg
//!   checkpoints per flush against a `c/ε′` line.
//!
//! A crash is simulated after *every* request on the smaller workload; the
//! durable block-translation map must recover every object each time.

use realloc_core::CheckpointedReallocator;
use storage_realloc::harness::{run_workload, RunConfig};

use realloc_bench::{banner, fmt2, standard_churn, verdict, Table};

fn main() {
    banner(
        "E7 (exp_checkpointed)",
        "Lemmas 3.1, 3.2, 3.3",
        "strict rules hold; space ≤ (1+O(ε'))V + O(∆); checkpoints per flush = O(1/ε)",
    );

    let mut table = Table::new(
        "checkpointed flush sweep (strict substrate, crash after every request)",
        &[
            "ε",
            "1/ε′",
            "flushes",
            "max ckpt/flush",
            "avg ckpt/flush",
            "peak excess (∆ units)",
            "rules + recovery",
        ],
    );

    let workload = standard_churn(30_000, 8_000, 99);
    println!("workload: {} ({} requests)", workload.name, workload.len());

    let mut prev: Option<(f64, f64)> = None; // (1/eps', max ckpt) for shape check
    let mut shape_ok = true;
    for eps in [0.5, 0.25, 0.125, 0.0625] {
        let mut r = CheckpointedReallocator::new(eps);
        let outcome = run_workload(&mut r, &workload, RunConfig::strict_with_crashes());
        let ok = outcome.is_ok();
        let result = outcome.expect("strict rules must hold");

        let flushes = r.flush_count().max(1);
        let max_cp = result.ledger.max_op_checkpoints();
        let avg_cp = result.ledger.total_checkpoints() as f64 / flushes as f64;
        let inv_eps_p = 1.0 / r.eps().prime();
        // Additive excess of the transient peak over (1+ε)V, in ∆ units.
        let excess = result.ledger.max_peak_excess(1.0 + eps).max(0.0) / result.delta.max(1) as f64;

        if let Some((prev_inv, prev_max)) = prev {
            // Lemma 3.3 shape: max checkpoints should grow no faster than
            // ~(1/ε′) does, with generous slack for rounding.
            let growth = max_cp as f64 / prev_max.max(1.0);
            let line = inv_eps_p / prev_inv;
            shape_ok &= growth <= line * 3.0;
        }
        prev = Some((inv_eps_p, max_cp as f64));

        table.row(vec![
            format!("1/{}", (1.0 / eps) as u32),
            fmt2(inv_eps_p),
            flushes.to_string(),
            max_cp.to_string(),
            fmt2(avg_cp),
            fmt2(excess),
            verdict(ok),
        ]);
    }
    table.print();

    println!(
        "\ncheckpoints-per-flush grows like 1/ε (Lemma 3.3 shape): {}",
        verdict(shape_ok)
    );
    println!(
        "peak excess stays a small constant number of ∆ (Lemma 3.1: the paper's additive\n\
         term; our staging guard makes the constant ≈ 2–3 rather than 1, see DESIGN.md)."
    );
}
