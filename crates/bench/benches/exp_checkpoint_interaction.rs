//! E13 — the §3.1 discussion the paper leaves open: "it would be
//! interesting to see how different types of checkpointing interact with
//! reallocation."
//!
//! We price full runs on a simulated disk whose checkpoint latency we sweep.
//! The §3.2/§3.3 algorithms block on `O(1/ε)` checkpoints per flush, so
//! their simulated device time degrades linearly with checkpoint latency
//! and inversely with ε; the §2 algorithm (which a RAM/relaxed setting
//! permits) pays none. The table quantifies the price of durability the
//! paper describes qualitatively — and shows it is tunable through ε.

use cost_model::Affine;
use realloc_common::Reallocator;
use realloc_core::{CheckpointedReallocator, CostObliviousReallocator, DeamortizedReallocator};
use storage_realloc::harness::{run_workload, RunConfig};
use storage_sim::DeviceModel;
use workload_gen::Request;

use realloc_bench::{banner, fmt2, standard_churn, Table};

/// Total simulated device time for a run (transfer + checkpoint stalls).
fn simulated_time(r: &mut dyn Reallocator, w: &workload_gen::Workload, ckpt_latency: f64) -> f64 {
    let device = DeviceModel::new(Box::new(Affine::disk(40.0, 1.0)), ckpt_latency);
    let mut total = 0.0;
    for req in &w.requests {
        let out = match *req {
            Request::Insert { id, size } => r.insert(id, size).expect("insert"),
            Request::Delete { id } => r.delete(id).expect("delete"),
        };
        total += device.time_of_stream(&out.ops);
    }
    total
}

fn main() {
    banner(
        "E13 (exp_checkpoint_interaction)",
        "§3.1 discussion (checkpointing models)",
        "durability costs O(1/ε) checkpoint stalls per flush; the sweep prices that interaction",
    );

    let workload = standard_churn(30_000, 10_000, 77);
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!("device: affine disk (seek 40, 1/cell); time unit = one cell transfer\n");

    let mut table = Table::new(
        "simulated device time (millions) vs checkpoint latency",
        &[
            "algorithm",
            "ε",
            "ckpt=0",
            "ckpt=1k",
            "ckpt=10k",
            "ckpt=100k",
            "stall share @10k",
        ],
    );

    type Mk = (&'static str, f64, Box<dyn Fn() -> Box<dyn Reallocator>>);
    let cases: Vec<Mk> = vec![
        (
            "amortized (§2, no rules)",
            0.25,
            Box::new(|| Box::new(CostObliviousReallocator::new(0.25))),
        ),
        (
            "checkpointed (§3.2)",
            0.5,
            Box::new(|| Box::new(CheckpointedReallocator::new(0.5))),
        ),
        (
            "checkpointed (§3.2)",
            0.25,
            Box::new(|| Box::new(CheckpointedReallocator::new(0.25))),
        ),
        (
            "checkpointed (§3.2)",
            0.125,
            Box::new(|| Box::new(CheckpointedReallocator::new(0.125))),
        ),
        (
            "deamortized (§3.3)",
            0.25,
            Box::new(|| Box::new(DeamortizedReallocator::new(0.25))),
        ),
    ];

    for (name, eps, make) in &cases {
        let mut row = vec![name.to_string(), format!("1/{}", (1.0 / eps) as u32)];
        let mut t0 = 0.0;
        let mut t10k = 0.0;
        for (i, latency) in [0.0, 1_000.0, 10_000.0, 100_000.0].into_iter().enumerate() {
            let mut r = make();
            let t = simulated_time(r.as_mut(), &workload, latency);
            if i == 0 {
                t0 = t;
            }
            if i == 2 {
                t10k = t;
            }
            row.push(fmt2(t / 1e6));
        }
        row.push(format!("{:.0}%", 100.0 * (t10k - t0) / t10k.max(1.0)));
        table.row(row);
    }
    table.print();

    // Checkpoint counts explain the slopes.
    let mut counts = Table::new(
        "why: total checkpoint barriers per run (the §2 algorithm emits none)",
        &["algorithm", "ε", "barriers", "flushes"],
    );
    for (name, eps, make) in &cases {
        let mut r = make();
        let result = run_workload(r.as_mut(), &workload, RunConfig::plain()).expect("run");
        counts.row(vec![
            name.to_string(),
            format!("1/{}", (1.0 / eps) as u32),
            result.ledger.total_checkpoints().to_string(),
            result.ledger.requests_with_moves().to_string(),
        ]);
    }
    counts.print();

    println!(
        "\nreading: with cheap checkpoints durability is nearly free; as checkpoint\n\
         latency grows, stall time comes to dominate and scales with 1/ε (more,\n\
         smaller flushes) — quantifying the paper's remark that an algorithm is\n\
         better the fewer checkpoints it must block on. The deamortized structure\n\
         pays the same total stalls but spreads them across updates."
    );
}
