//! E3 — Figure 3: a worked buffer-flush example.
//!
//! The figure's scenario: starting from a settled two-class layout, the
//! sequence *insert A, delete B, insert C, insert D, delete E* fills the
//! buffers, and *insert F* triggers a flush of the top size classes. We
//! replay an equivalent sequence, print the layout at each step, and check
//! the figure's observable properties: the flush moves each object at most
//! twice, and the flushed classes' buffers are empty afterwards.

use realloc_common::{ObjectId, Reallocator, StorageOp};
use realloc_core::render::render_regions;
use realloc_core::CostObliviousReallocator;

use realloc_bench::{banner, verdict, Table};

fn main() {
    banner(
        "E3 (exp_fig3_flush_trace)",
        "Figure 3",
        "a flush moves each object ≤ 2 times and leaves the flushed buffers empty",
    );

    let mut r = CostObliviousReallocator::new(0.5);
    // Settle a structure whose top-class buffer is roomy enough to hold the
    // figure's update burst (buffers are an ε′ fraction of the payload, so
    // the resident objects must dwarf the burst objects).
    for (n, size) in [(1u64, 480u64), (2, 900), (3, 400), (4, 70), (5, 330)] {
        r.insert(ObjectId(n), size).unwrap();
    }
    println!("\n(i) settled layout:");
    print!("{}", render_regions(&r.region_views(), 8));

    // The figure's update burst. Sizes chosen to land in the two classes'
    // buffers; E = object 4 from the initial set.
    let a = ObjectId(10);
    let b = ObjectId(11);
    let c = ObjectId(12);
    let d = ObjectId(13);

    r.insert(a, 34).unwrap(); // insert A
    r.insert(b, 35).unwrap(); // (B enters so it can be deleted)
    r.delete(b).unwrap(); // delete B -> tombstone in a buffer
    r.insert(c, 40).unwrap(); // insert C
    r.insert(d, 36).unwrap(); // insert D
    r.delete(ObjectId(4)).unwrap(); // delete E -> dummy record

    println!("(ii) after insert A, delete B, insert C, insert D, delete E:");
    print!("{}", render_regions(&r.region_views(), 8));

    // Keep inserting until F triggers the flush.
    let mut f_id = 20u64;
    let flush_outcome = loop {
        let out = r.insert(ObjectId(f_id), 38).unwrap();
        if out.flushed {
            break out;
        }
        f_id += 1;
        assert!(f_id < 40, "flush never triggered");
    };

    println!("(iii-v) insert F (obj#{f_id}) triggers the flush:");
    print!("{}", render_regions(&r.region_views(), 8));

    // Per-object move counts within the flush.
    let mut per_object = std::collections::HashMap::new();
    for op in &flush_outcome.ops {
        if let StorageOp::Move { id, .. } = op {
            *per_object.entry(*id).or_insert(0usize) += 1;
        }
    }
    let max_moves = per_object.values().copied().max().unwrap_or(0);
    let buffers_empty = r.region_views().iter().all(|v| v.buffer_used == 0);

    let mut table = Table::new(
        "flush properties (paper: ≤ 2 moves per object; buffers empty after)",
        &["property", "measured", "verdict"],
    );
    table.row(vec![
        "objects moved by flush".into(),
        per_object.len().to_string(),
        "-".into(),
    ]);
    table.row(vec![
        "max moves per object".into(),
        max_moves.to_string(),
        verdict(max_moves <= 2),
    ]);
    table.row(vec![
        "flushed buffers empty".into(),
        buffers_empty.to_string(),
        verdict(buffers_empty),
    ]);
    table.row(vec![
        "invariants 2.2-2.4".into(),
        r.validate().is_ok().to_string(),
        verdict(r.validate().is_ok()),
    ]);
    table.print();

    println!("\nflush ops in order:");
    for op in &flush_outcome.ops {
        match op {
            StorageOp::Move { id, from, to } => println!("  move  {id}: {from} -> {to}"),
            StorageOp::Allocate { id, to } => println!("  alloc {id} at {to}  (trigger F)"),
            StorageOp::Free { id, at } => println!("  free  {id} at {at}"),
            StorageOp::CheckpointBarrier => println!("  checkpoint barrier"),
        }
    }
}
