//! E2 — Figure 2: the steady-state layout of the data structure — one
//! region per size class, each a payload segment followed by a small
//! buffer segment.
//!
//! We fill the structure with a mixed-size workload, print the rendered
//! layout (the ASCII analogue of the paper's figure), and verify the
//! figure's structural claims: regions in ascending class order, payload
//! space equal to `V(i)` as of the class's last flush, and buffers sized
//! `⌊ε′·V(i)⌋`.

use realloc_common::Reallocator;
use realloc_core::render::render_regions;
use realloc_core::CostObliviousReallocator;
use storage_realloc::harness::{run_workload, RunConfig};

use realloc_bench::{banner, fmt_u64, standard_churn, verdict, Table};

fn main() {
    banner(
        "E2 (exp_fig2_layout)",
        "Figure 2",
        "layout = ascending size-class regions, each payload + ⌊ε′·V(i)⌋ buffer",
    );

    let eps = 0.5;
    let workload = standard_churn(60_000, 5_000, 23);
    let mut r = CostObliviousReallocator::new(eps);
    run_workload(&mut r, &workload, RunConfig::relaxed()).expect("run");

    println!(
        "\nlayout after {} requests (ε = {eps}, ε′ = {:.3}):\n",
        workload.len(),
        r.eps().prime()
    );
    print!("{}", render_regions(&r.region_views(), 64));

    let mut table = Table::new(
        "figure claims vs structure",
        &[
            "class",
            "start",
            "payload",
            "buffer",
            "buffer ≤ ⌊ε′·payload⌋",
            "ascending start",
        ],
    );
    let views = r.region_views();
    let mut prev_start = 0;
    let mut all_ok = true;
    for v in views
        .iter()
        .filter(|v| v.payload_space > 0 || v.buffer_space > 0)
    {
        let quota_ok = v.buffer_space <= (r.eps().prime() * v.payload_space as f64) as u64 + 1;
        let asc_ok = v.start >= prev_start;
        all_ok &= quota_ok && asc_ok;
        table.row(vec![
            v.class.to_string(),
            fmt_u64(v.start),
            fmt_u64(v.payload_space),
            fmt_u64(v.buffer_space),
            verdict(quota_ok),
            verdict(asc_ok),
        ]);
        prev_start = v.start;
    }
    table.print();

    println!(
        "\ninvariants 2.2–2.4: {}",
        verdict(r.validate().is_ok() && all_ok)
    );
    println!(
        "structure {} cells over V = {} live cells (ratio {:.3} ≤ 1+ε = {:.1})",
        fmt_u64(r.structure_size()),
        fmt_u64(r.live_volume()),
        r.structure_size() as f64 / r.live_volume() as f64,
        1.0 + eps
    );
}
