//! E10 — related-work bound (Robson; Luby, Naor, Orda): without
//! reallocation, the footprint competitive ratio grows with the ratio of
//! largest to smallest request — logarithmically many doubling levels each
//! waste Θ(V). The paper's reallocators hold 1+ε on the same adversary.
//!
//! The fragmentation adversary inserts a row of size-2^l objects per level
//! and deletes every other one; the next level's objects fit none of the
//! holes.

use alloc_baselines::{BuddyAllocator, FitStrategy, FreeListAllocator};
use realloc_common::Reallocator;
use realloc_core::CostObliviousReallocator;
use storage_realloc::harness::{run_workload, RunConfig};
use workload_gen::adversarial::nomove_fragmenter;

use realloc_bench::{banner, fmt2, verdict, Table};

fn main() {
    banner(
        "E10 (exp_nomove_ratio)",
        "§1 related work (memory-allocation lower bound)",
        "no-move footprint ratio grows with log(∆); reallocation holds 1+ε flat",
    );

    let mut table = Table::new(
        "final footprint ratio vs number of doubling levels (∆ = 2^(levels-1))",
        &[
            "levels",
            "first-fit",
            "best-fit",
            "next-fit",
            "buddy",
            "cost-oblivious(ε=.5)",
            "realloc ≤ 1.5",
        ],
    );

    let mut gap_series = Vec::new();
    for levels in [2u32, 4, 6, 8, 10] {
        let w = nomove_fragmenter(levels, 1 << 12);
        let mut row = vec![levels.to_string()];
        let mut realloc_ok = true;
        let algs: Vec<Box<dyn Reallocator>> = vec![
            Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
            Box::new(FreeListAllocator::new(FitStrategy::BestFit)),
            Box::new(FreeListAllocator::new(FitStrategy::NextFit)),
            Box::new(BuddyAllocator::new()),
            Box::new(CostObliviousReallocator::new(0.5)),
        ];
        let mut first_fit_ratio = 0.0;
        let mut realloc_ratio = 0.0;
        for (i, mut alg) in algs.into_iter().enumerate() {
            let result = run_workload(alg.as_mut(), &w, RunConfig::plain()).expect("run");
            // Ratio at the end of the run, when the live volume is the full
            // surviving blocker set (mid-run transitions drop V to near zero
            // and would make every ratio look equally terrible).
            let ratio = result.final_space_ratio();
            if i == 0 {
                first_fit_ratio = ratio;
            }
            if i == 4 {
                realloc_ratio = ratio;
                realloc_ok = ratio <= 1.5 + 1e-9;
            }
            row.push(fmt2(ratio));
        }
        gap_series.push(first_fit_ratio / realloc_ratio);
        row.push(verdict(realloc_ok));
        table.row(row);
    }
    table.print();

    let separated = gap_series.iter().all(|&g| g >= 4.0);
    println!(
        "\nno-move allocators waste ≥ 4x more space than the reallocator at every ∆: {}",
        verdict(separated)
    );
    println!(
        "reading: each doubling level strands Θ(V) of blocker-pinned holes that no-move\n\
         allocators can never reuse, while the reallocator compacts them away and never\n\
         leaves 1+ε. (The full Ω(log ∆) *lower-bound* witness against first-fit — Robson\n\
         1974 — is more intricate than this demonstrative adversary: first-fit recycles\n\
         our later levels' blockers into old holes, capping the measured ratio at a\n\
         large constant. Next-fit, which cannot, keeps growing.)"
    );
}
