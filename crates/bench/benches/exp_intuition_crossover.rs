//! E5 — the §2 intuition: each cost-function-specific strategy is good at
//! one end of the subadditive spectrum and bad at the other, while the
//! cost-oblivious algorithm's guarantee is flat everywhere.
//!
//! * **A (unit cost, compaction killer)**: logging-and-compacting pays
//!   `Θ(∆)` *unit* cost per large delete — every compaction drags the small
//!   survivors. The gaps strategy and the cost-oblivious reallocator keep
//!   their per-delete unit cost flat / their competitive ratio `b(unit)`
//!   bounded by a ∆-independent constant.
//! * **B (linear cost, cascades)**: a single unit insert into the gaps
//!   structure can displace one object in *every* size class — `Θ(∆)` moved
//!   volume for an `f(1)` allocation, the blowup underlying its
//!   `Θ(log ∆)`-competitive linear-cost bound. The cost-oblivious
//!   structure's total linear cost stays a constant multiple of the
//!   allocation cost.

use alloc_baselines::{LogCompactAllocator, SizeClassGapsAllocator};
use realloc_common::Reallocator;
use realloc_core::CostObliviousReallocator;
use storage_realloc::harness::{run_workload, RunConfig};
use workload_gen::adversarial::{cascade_trigger, compaction_killer};
use workload_gen::Request;

use realloc_bench::{banner, fmt2, Table};

fn algorithms() -> Vec<Box<dyn Reallocator>> {
    vec![
        Box::new(LogCompactAllocator::new()),
        Box::new(SizeClassGapsAllocator::new()),
        Box::new(CostObliviousReallocator::new(0.5)),
    ]
}

fn main() {
    banner(
        "E5 (exp_intuition_crossover)",
        "§2 intuition (cost-function-specific strategies)",
        "log-compact pays Θ(∆) unit cost per delete; gaps cascades move Θ(∆) per unit insert; cost-oblivious ratios stay flat",
    );

    let deltas = [16u64, 64, 256, 1024];

    // --- Part A: unit cost on the compaction killer. ---
    // "per-del" = total unit reallocation cost / number of deletes (the
    // paper's per-deletion framing); "b" = realloc/alloc competitive ratio
    // (the paper's formal measure — Theorem 2.1 bounds it for the
    // cost-oblivious algorithm by a ∆-independent constant).
    let mut table_a = Table::new(
        "A: compaction-killer, UNIT cost (paper: log-compact = Θ(∆) per delete)",
        &[
            "∆",
            "log-compact per-del",
            "gaps per-del",
            "cost-obl b(unit)",
            "log-compact b(unit)",
            "gaps b(unit)",
        ],
    );
    for &delta in &deltas {
        let w = compaction_killer(delta, 8);
        let deletes = w.stats().deletes.max(1) as f64;
        let mut per_del = Vec::new();
        let mut b_unit = Vec::new();
        for mut alg in algorithms() {
            let result = run_workload(alg.as_mut(), &w, RunConfig::plain()).expect("run");
            per_del.push(result.ledger.total_realloc_cost(&|_| 1.0) / deletes);
            b_unit.push(result.ledger.cost_ratio(&|_| 1.0));
        }
        table_a.row(vec![
            delta.to_string(),
            fmt2(per_del[0]),
            fmt2(per_del[1]),
            fmt2(b_unit[2]),
            fmt2(b_unit[0]),
            fmt2(b_unit[1]),
        ]);
    }
    table_a.print();

    // --- Part B: the cascade — worst single unit-insert under linear cost.
    let mut table_b = Table::new(
        "B: cascade-trigger, LINEAR cost — worst single unit-insert moved volume",
        &[
            "∆",
            "gaps worst insert",
            "gaps worst/∆",
            "cost-obl b(linear)",
            "gaps b(linear)",
        ],
    );
    for &delta in &deltas {
        let w = cascade_trigger(delta, 400);
        // Worst single *unit insert* for the gaps structure.
        let mut gaps = SizeClassGapsAllocator::new();
        let mut worst_unit_insert = 0u64;
        for req in &w.requests {
            match *req {
                Request::Insert { id, size } => {
                    let out = gaps.insert(id, size).expect("insert");
                    if size == 1 {
                        worst_unit_insert = worst_unit_insert.max(out.moved_volume());
                    }
                }
                Request::Delete { id } => {
                    gaps.delete(id).expect("delete");
                }
            }
        }
        let mut gaps2 = SizeClassGapsAllocator::new();
        let rg = run_workload(&mut gaps2, &w, RunConfig::plain()).expect("run");
        let mut co = CostObliviousReallocator::new(0.5);
        let rc = run_workload(&mut co, &w, RunConfig::plain()).expect("run");
        table_b.row(vec![
            delta.to_string(),
            worst_unit_insert.to_string(),
            fmt2(worst_unit_insert as f64 / delta as f64),
            fmt2(rc.ledger.cost_ratio(&|x| x as f64)),
            fmt2(rg.ledger.cost_ratio(&|x| x as f64)),
        ]);
    }
    table_b.print();

    // --- Part C: the full cost-ratio matrix at the largest ∆. ---
    let delta = *deltas.last().unwrap();
    let mut table_c = Table::new(
        format!("C: competitive cost ratio b(f) at ∆ = {delta} (lower is better)"),
        &[
            "algorithm",
            "killer b(unit)",
            "killer b(linear)",
            "cascade b(unit)",
            "cascade b(linear)",
        ],
    );
    let killer = compaction_killer(delta, 8);
    let cascade = cascade_trigger(delta, 400);
    for mut alg in algorithms() {
        let name = alg.name().to_string();
        let rk = run_workload(alg.as_mut(), &killer, RunConfig::plain()).expect("run");
        let mut alg2 = algorithms()
            .into_iter()
            .find(|a| a.name() == name)
            .expect("same roster");
        let rc = run_workload(alg2.as_mut(), &cascade, RunConfig::plain()).expect("run");
        table_c.row(vec![
            name,
            fmt2(rk.ledger.cost_ratio(&|_| 1.0)),
            fmt2(rk.ledger.cost_ratio(&|x| x as f64)),
            fmt2(rc.ledger.cost_ratio(&|_| 1.0)),
            fmt2(rc.ledger.cost_ratio(&|x| x as f64)),
        ]);
    }
    table_c.print();

    println!(
        "\nreading: (A) log-compact's per-delete unit cost is exactly ∆ and grows linearly;\n\
         the cost-oblivious b(unit) column is ∆-independent, as Theorem 2.1 promises.\n\
         (B) the gaps structure's worst unit insert moves ≈ 2∆ volume (worst/∆ ≈ 2):\n\
         an f(1) allocation causing Θ(f(∆)) linear cost — the blowup behind its\n\
         Θ(log ∆)-competitive bound — while the cost-oblivious linear ratio stays flat.\n\
         Neither specialist is safe on both workloads; the cost-oblivious algorithm is."
    );
}
