//! E11 — ablations over the design constants DESIGN.md calls out.
//!
//! * **Buffer fraction ε′** (default ε/3): smaller buffers flush more often
//!   (higher cost, tighter space); larger buffers flush lazily (cheaper,
//!   looser space). The `(1+ε)` guarantee needs `ε′ ≤ ε/(2+ε)`; the sweep
//!   shows the footprint bound breaking when ε′ is pushed past it.
//! * **Deamortized pump factor** (default 4): how much flush work each
//!   update performs. Lemma 3.4 needs ≥ 4; the sweep shows the worst-case
//!   volume budget utilization falling as the factor grows.

use realloc_core::layout::Eps;
use realloc_core::{CostObliviousReallocator, DeamortizedReallocator};
use storage_realloc::harness::{run_workload, RunConfig};

use realloc_bench::{banner, fmt2, fmt3, standard_churn, Table};

fn main() {
    banner(
        "E11 (exp_ablation)",
        "design constants (DESIGN.md §3)",
        "ε′ trades footprint vs flush cost; pump factor trades worst-case latency vs slack",
    );

    let eps = 0.5;
    let workload = standard_churn(60_000, 25_000, 314);
    println!("workload: {} ({} requests)", workload.name, workload.len());

    // --- ε′ sweep ---
    let mut table = Table::new(
        "A: buffer fraction ε′ at fixed ε = 1/2 (default ε/3 ≈ 0.167; guarantee needs ≤ 0.2)",
        &[
            "ε′",
            "max settled ratio",
            "≤ 1+ε?",
            "flushes",
            "b(unit)",
            "b(linear)",
        ],
    );
    for eps_prime in [0.05, 0.1, 1.0 / 6.0, 0.2, 0.3, 0.45] {
        let mut r = CostObliviousReallocator::with_eps(Eps::custom(eps, eps_prime, 4.0));
        let result = run_workload(&mut r, &workload, RunConfig::plain()).expect("run");
        let ratio = result.ledger.max_settled_space_ratio();
        table.row(vec![
            fmt3(eps_prime),
            fmt3(ratio),
            if ratio <= 1.0 + eps + 1e-9 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            r.flush_count().to_string(),
            fmt2(result.ledger.cost_ratio(&|_| 1.0)),
            fmt2(result.ledger.cost_ratio(&|x| x as f64)),
        ]);
    }
    table.print();

    // --- pump factor sweep ---
    let mut table = Table::new(
        "B: deamortized pump factor (Lemma 3.4 requires ≥ 4 for the log to drain in time)",
        &[
            "factor",
            "worst op volume / ((4/ε')w+∆)",
            "max op volume",
            "b(linear)",
            "flushes",
        ],
    );
    for factor in [2.0, 4.0, 8.0, 16.0] {
        let mut r = DeamortizedReallocator::with_eps(Eps::custom(eps, eps / 3.0, factor));
        let result = run_workload(&mut r, &workload, RunConfig::plain()).expect("run");
        // Normalize against the *paper's* budget (factor 4) so the columns
        // are comparable.
        let util = result.ledger.max_worst_case_utilization(4.0 / (eps / 3.0));
        table.row(vec![
            fmt2(factor),
            fmt3(util),
            result.ledger.max_op_moved_volume().to_string(),
            fmt2(result.ledger.cost_ratio(&|x| x as f64)),
            r.flush_count().to_string(),
        ]);
    }
    table.print();

    println!(
        "\nreading: (A) cost falls and footprint rises with ε′, and the 1+ε bound fails\n\
         once ε′ exceeds ε/(2+ε) = 0.2 — ε/3 sits safely inside with near-minimal cost.\n\
         (B) factor 2 under-drains (utilization can exceed 1 only transiently via the\n\
         chained-flush fallback); factor ≥ 4 keeps every update inside the paper's\n\
         budget, and larger factors only re-amortize the work."
    );
}
