//! E17 — tail latency of intake under a skewed multi-tenant storm:
//! what does the async front-end's work stealing buy at p99?
//!
//! Twenty-four tenants share four workers, pinned `t % W` — which
//! co-locates the six hot tenants {0, 4, …, 20} (~90% of ΣV≈1M between
//! them) on worker 0 while eighteen victims trickle elsewhere. That is
//! the adversarial placement for a static assignment: every hot batch
//! waits behind the other five hot tenants' applies on one thread. The
//! storm is driven three ways over identical request streams:
//!
//! * **sync** — one sync `Engine` with one shard per worker and a
//!   `TableRouter` landing tenant `t` on shard `t % W`: the classic
//!   consolidation — one intake thread, all six hot tenants funnelling
//!   into a single shard worker, intake stalling at the bounded channel.
//! * **async** — a `Fleet` hosting each tenant as its own `AsyncEngine`
//!   core, pinned `t % W` (same co-location), stealing off: same
//!   head-of-line blocking, now through the admission bound.
//! * **async+steal** — stealing on: when the hot home is genuinely
//!   stuck (a front task older than the steal patience — in practice,
//!   behind one core's rebuild spike), idle workers pull its queued
//!   batches, so the other hot tenants drain instead of waiting out
//!   the spike.
//!
//! The observable is the *intake stall* histogram — nanoseconds the
//! producer spent blocked because the shard's queue (sync) or the
//! core's admission bound (async) was full — which is exactly the
//! latency a caller feels at `insert`. The acceptance bar (ISSUE 10):
//! **async+steal p99 intake stall ≤ 50% of the sync p99**, PASS/FAIL
//! printed, the run exported as `BENCH_tail_latency.json` (re-parsed
//! with the strict codec before exit).
//!
//! `TAIL_LATENCY_SMOKE=1` shrinks the storm and skips the wall-clock
//! gate (CI machines are noisy); the export and the equivalence checks
//! still run.

use std::process::ExitCode;
use std::time::Instant;

use realloc_bench::{fmt2, fmt_u64, Table};
use realloc_common::{HashRouter, ObjectId, Reallocator, Router, TableRouter};
use realloc_core::CostObliviousReallocator;
use realloc_engine::{
    AsyncEngine, Engine, EngineConfig, Fleet, FleetConfig, HistogramSnapshot, Json, StealStats,
    SubstrateConfig,
};

const EPS: f64 = 0.25;
const WORKERS: usize = 4;
const TENANTS: usize = 24;
const BATCH: usize = 32;
const DEPTH: usize = 2;
/// Requests each hot tenant gets per round-robin round (victims get 1).
const HOT_WEIGHT: usize = 10;
const OBJ_SIZE: u64 = 32;

/// The hot tenants: every tenant whose pin `t % WORKERS` lands on
/// worker 0, so the skew and the co-location compound.
fn hot(t: usize) -> bool {
    t.is_multiple_of(WORKERS)
}

struct Scale {
    /// Inserts per hot tenant; victims each get a 27th of this.
    hot_objects: u64,
    gate: bool,
}

fn scale() -> Scale {
    if std::env::var_os("TAIL_LATENCY_SMOKE").is_some() {
        Scale {
            hot_objects: 500,
            gate: false,
        }
    } else {
        // 6·4_687·32 ≈ 900k hot + 18·173·32 ≈ 100k victims: ΣV ≈ 1M.
        Scale {
            hot_objects: 4_687,
            gate: true,
        }
    }
}

fn factory(_shard: usize) -> Box<dyn Reallocator + Send> {
    Box::new(CostObliviousReallocator::new(EPS))
}

/// Tenant `t`'s `i`-th object — id spaces are disjoint so the sync
/// consolidation and the per-tenant fleets serve identical streams.
fn object(t: usize, i: u64) -> ObjectId {
    ObjectId(((t as u64) << 32) | i)
}

/// The storm, as one interleaved schedule of (tenant, object) inserts:
/// round-robin with each hot tenant taking [`HOT_WEIGHT`] slots per
/// round, so their queue pressure is sustained rather than front-loaded.
fn schedule(scale: &Scale) -> Vec<(usize, ObjectId)> {
    let mut remaining: Vec<u64> = (0..TENANTS)
        .map(|t| {
            if hot(t) {
                scale.hot_objects
            } else {
                scale.hot_objects / 27
            }
        })
        .collect();
    let mut next: Vec<u64> = vec![0; TENANTS];
    let mut plan = Vec::new();
    while remaining.iter().any(|&r| r > 0) {
        for t in 0..TENANTS {
            let want = if hot(t) { HOT_WEIGHT } else { 1 };
            for _ in 0..want.min(remaining[t] as usize) {
                plan.push((t, object(t, next[t])));
                next[t] += 1;
                remaining[t] -= 1;
            }
        }
    }
    plan
}

struct ModeResult {
    elapsed_s: f64,
    stall: HistogramSnapshot,
    live_count: usize,
    live_volume: u64,
    steal: StealStats,
}

fn sync_config() -> EngineConfig {
    EngineConfig {
        batch: BATCH,
        queue_depth: DEPTH,
        ..EngineConfig::with_shards(WORKERS)
    }
    .with_substrate(SubstrateConfig::default())
}

fn tenant_config() -> EngineConfig {
    EngineConfig {
        batch: BATCH,
        queue_depth: DEPTH,
        ..EngineConfig::with_shards(1)
    }
    .with_substrate(SubstrateConfig::default())
}

fn run_sync(plan: &[(usize, ObjectId)]) -> ModeResult {
    let mut router = TableRouter::new(WORKERS);
    for &(t, id) in plan {
        if Router::route(&router, id) != t % WORKERS {
            Router::assign(&mut router, id, t % WORKERS);
        }
    }
    let mut engine = Engine::with_router(sync_config(), Box::new(router), factory);
    let start = Instant::now();
    for &(_, id) in plan {
        engine.insert(id, OBJ_SIZE).expect("insert");
    }
    let stats = engine.quiesce().expect("quiesce");
    let elapsed_s = start.elapsed().as_secs_f64();
    let metrics = engine.metrics().expect("metrics");
    let mut stall = HistogramSnapshot::empty();
    for shard in &metrics.per_shard {
        stall.merge(&shard.intake_stall_ns);
    }
    engine.shutdown().expect("shutdown");
    ModeResult {
        elapsed_s,
        stall,
        live_count: stats.live_count(),
        live_volume: stats.live_volume(),
        steal: StealStats::default(),
    }
}

fn run_async(plan: &[(usize, ObjectId)], stealing: bool) -> ModeResult {
    let fleet = Fleet::new(FleetConfig::with_workers(WORKERS).stealing(stealing));
    let mut tenants: Vec<AsyncEngine> = (0..TENANTS)
        .map(|t| {
            fleet.register_pinned(
                tenant_config(),
                Box::new(HashRouter::new(1)),
                factory,
                t % WORKERS,
            )
        })
        .collect();
    let start = Instant::now();
    for &(t, id) in plan {
        drop(tenants[t].insert(id, OBJ_SIZE));
    }
    let waits: Vec<_> = tenants.iter_mut().map(|t| t.quiesce()).collect();
    let mut live_count = 0;
    let mut live_volume = 0;
    for wait in waits {
        let stats = wait.wait().expect("quiesce");
        live_count += stats.live_count();
        live_volume += stats.live_volume();
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let mut stall = HistogramSnapshot::empty();
    for tenant in tenants.iter_mut() {
        let metrics = tenant.metrics().expect("metrics");
        for shard in &metrics.per_shard {
            stall.merge(&shard.intake_stall_ns);
        }
    }
    let steal = fleet.steal_totals();
    for tenant in tenants {
        tenant.shutdown().expect("shutdown");
    }
    fleet.shutdown();
    ModeResult {
        elapsed_s,
        stall,
        live_count,
        live_volume,
        steal,
    }
}

fn side(r: &ModeResult, ops: f64) -> Json {
    let mut side = Json::obj();
    side.set("elapsed_s", r.elapsed_s)
        .set("ops_per_sec", ops / r.elapsed_s.max(1e-9))
        .set("stalls", r.stall.count)
        .set("stall_p50_ns", r.stall.p50())
        .set("stall_p99_ns", r.stall.p99())
        .set("batches_stolen", r.steal.batches_stolen)
        .set("steal_conflicts", r.steal.steal_conflicts);
    side
}

fn export(path: &str, doc: &Json) -> Result<(), String> {
    let text = doc.to_string();
    let parsed = Json::parse(&text)?;
    if &parsed != doc {
        return Err("export did not round-trip".into());
    }
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))
}

fn main() -> ExitCode {
    let scale = scale();
    let plan = schedule(&scale);
    let volume = plan.len() as u64 * OBJ_SIZE;
    // A p99 over ~10³ stall samples is the ~10th-largest value — one
    // unlucky scheduler preemption moves it. The gate therefore runs the
    // whole storm several times and judges the *median* per-repetition
    // ratio; the table and export show the median repetition.
    let reps = if scale.gate { 5 } else { 1 };
    println!(
        "storm: {} inserts across {TENANTS} tenants (hot share {:.0}%), ΣV = {}",
        fmt_u64(plan.len() as u64),
        100.0 * 6.0 * scale.hot_objects as f64 / plan.len() as f64,
        fmt_u64(volume),
    );
    println!(
        "pool:  {WORKERS} workers, batch = {BATCH}, depth = {DEPTH}, ε = {EPS}, reps = {reps}{}\n",
        if scale.gate {
            ""
        } else {
            " (smoke: latency gate off)"
        }
    );

    let mut runs: Vec<(ModeResult, ModeResult, ModeResult)> = Vec::new();
    for _ in 0..reps {
        let sync = run_sync(&plan);
        let plain = run_async(&plan, false);
        let steal = run_async(&plan, true);
        // All three modes must land the same logical state, or the
        // latency comparison is comparing different work.
        for (name, r) in [("async", &plain), ("async+steal", &steal)] {
            assert_eq!(r.live_count, sync.live_count, "{name}: live set diverged");
            assert_eq!(r.live_volume, sync.live_volume, "{name}: volume diverged");
        }
        runs.push((sync, plain, steal));
    }

    let ratio_of = |sync: &ModeResult, steal: &ModeResult| {
        if sync.stall.p99() > 0.0 {
            steal.stall.p99() / sync.stall.p99()
        } else {
            f64::INFINITY
        }
    };
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (
            ratio_of(&runs[a].0, &runs[a].2),
            ratio_of(&runs[b].0, &runs[b].2),
        );
        ra.partial_cmp(&rb).expect("ratio is never NaN")
    });
    let median = order[order.len() / 2];
    let ratios: Vec<f64> = (0..runs.len())
        .map(|i| ratio_of(&runs[i].0, &runs[i].2))
        .collect();
    let (sync, plain, steal) = &runs[median];
    let ratio = ratios[median];

    let ops = plan.len() as f64;
    let mut table = Table::new(
        "intake stall under the skewed storm (median repetition)".to_string(),
        &["mode", "stalls", "p50 µs", "p99 µs", "elapsed s", "stolen"],
    );
    for (name, r) in [("sync", sync), ("async", plain), ("async+steal", steal)] {
        table.row(vec![
            name.to_string(),
            fmt_u64(r.stall.count),
            fmt2(r.stall.p50() / 1e3),
            fmt2(r.stall.p99() / 1e3),
            fmt2(r.elapsed_s),
            fmt_u64(r.steal.batches_stolen),
        ]);
    }
    table.print();

    println!(
        "\n  per-rep p99 ratios: [{}]",
        ratios
            .iter()
            .map(|r| format!("{:.1}%", 100.0 * r))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let storm_stalls = sync.stall.count > 0;
    let pass = !scale.gate || (storm_stalls && ratio <= 0.50);
    println!(
        "  async+steal p99 = {:.1}% of sync p99 (median rep, target ≤ 50%{}); \
         {} batches stolen, {} conflicts {}",
        100.0 * ratio,
        if scale.gate {
            ""
        } else {
            ", not gated in smoke"
        },
        fmt_u64(steal.steal.batches_stolen),
        fmt_u64(steal.steal.steal_conflicts),
        realloc_bench::verdict(pass),
    );

    let mut doc = Json::obj();
    doc.set("bench", "tail_latency")
        .set("smoke", !scale.gate)
        .set("requests", plan.len())
        .set("reps", reps as u64)
        .set("sync", side(sync, ops))
        .set("async", side(plain, ops))
        .set("async_steal", side(steal, ops))
        .set(
            "p99_ratios",
            Json::Arr(ratios.iter().map(|&r| Json::Num(r)).collect()),
        )
        .set("p99_ratio", ratio)
        .set("pass", pass);
    let path = "BENCH_tail_latency.json";
    match export(path, &doc) {
        Ok(()) => println!("  exported {path} (re-parsed OK)"),
        Err(e) => {
            eprintln!("  export failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
