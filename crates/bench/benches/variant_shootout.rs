//! E17 — variant shootout: every [`VARIANTS`] registry entry head-to-head.
//!
//! Two workload families, both at V≈1M and V≈10M:
//!
//! * **churn storm** — `coalescible_churn`, where half the traffic is
//!   cancelling delete+reinsert touches: the regime the 2024
//!   nearly-quadratic variant targets (hole recycling + tombstone
//!   cancellation stop the flush clock);
//! * **adversarial** — `compaction_killer`, delete-heavy traffic designed
//!   against compacting allocators, where no variant gets its fast path.
//!
//! Every run is priced post-hoc on all three device profiles (`unit`,
//! `disk`, `ssd`) by replaying the emitted op stream through
//! [`DeviceProfile::build`], so the comparison is simulated device time —
//! deterministic, no wall-clock noise — plus moved volume and flush count.
//!
//! The bench also sweeps a cancelling-churn population ladder and reports
//! the **object-count crossover**: the smallest standing population at
//! which the 2024 variant's device time beats *all three* 2014 variants,
//! per profile. Everything is exported as `BENCH_variant_shootout.json`
//! (strict-codec round-trip checked before the bench exits).
//!
//! `VARIANT_SHOOTOUT_SMOKE=1` shrinks both scales and the ladder; the
//! verdict gates stay on (all numbers here are deterministic).

use std::process::ExitCode;

use realloc_engine::{DeviceProfile, Json};
use storage_realloc::prelude::*;
use storage_realloc::workloads::adversarial::compaction_killer;
use storage_realloc::workloads::churn::{coalescible_churn, ChurnConfig};
use storage_realloc::workloads::dist::SizeDist;

use realloc_bench::{fmt_u64, Table};

const EPS: f64 = 0.25;
/// The 2014 variants the crossover is measured against.
const OLD_GUARD: [&str; 3] = ["cost-oblivious", "checkpointed", "deamortized"];

struct Scale {
    volumes: Vec<u64>,
    churn_ops: usize,
    ladder: Vec<u64>,
    smoke: bool,
}

fn scale() -> Scale {
    if std::env::var_os("VARIANT_SHOOTOUT_SMOKE").is_some() {
        Scale {
            volumes: vec![50_000],
            churn_ops: 10_000,
            ladder: vec![64, 128, 256, 512],
            smoke: true,
        }
    } else {
        Scale {
            volumes: vec![1_000_000, 10_000_000],
            churn_ops: 150_000,
            ladder: vec![64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192],
            smoke: false,
        }
    }
}

/// One variant's run, priced on every device profile (indexed like
/// [`DeviceProfile::ALL`]).
struct Priced {
    moved: u64,
    flushes: u64,
    live_count: usize,
    time_us: [f64; 3],
}

/// Serves `workload` on a fresh `variant` instance, pricing the emitted op
/// stream on all three device profiles as it goes (streams are dropped per
/// request, so a V≈10M run stays flat in memory).
fn drive(variant: &str, workload: &Workload) -> Priced {
    let devices: Vec<_> = DeviceProfile::ALL.iter().map(|p| p.build()).collect();
    let mut r = build_variant(variant, EPS).expect("registry name");
    let mut out = Priced {
        moved: 0,
        flushes: 0,
        live_count: 0,
        time_us: [0.0; 3],
    };
    let price = |outcome: &Outcome, out: &mut Priced| {
        out.moved += outcome.moved_volume();
        out.flushes += u64::from(outcome.flushed);
        for (i, dev) in devices.iter().enumerate() {
            out.time_us[i] += dev.time_of_stream(&outcome.ops);
        }
    };
    for req in &workload.requests {
        let outcome = match *req {
            Request::Insert { id, size } => match r.insert(id, size) {
                Ok(o) => o,
                // Deamortized semantics: the touch's delete of this id is
                // still pending in the log — drain (priced) and retry.
                Err(ReallocError::DuplicateId(_)) => {
                    let drained = r.quiesce();
                    price(&drained, &mut out);
                    r.insert(id, size).expect("insert after drain")
                }
                Err(e) => panic!("valid insert: {e}"),
            },
            Request::Delete { id } => r.delete(id).expect("valid delete"),
        };
        price(&outcome, &mut out);
    }
    let outcome = r.quiesce();
    price(&outcome, &mut out);
    out.live_count = r.live_count();
    out
}

/// Pure cancelling churn for the crossover ladder: a standing population
/// of `objects` same-class objects, then `2·objects` delete-oldest +
/// reinsert-same-size rounds.
fn cancelling_ladder_rung(objects: u64) -> Workload {
    let mut requests = Vec::new();
    for i in 0..objects {
        requests.push(Request::Insert {
            id: ObjectId(i),
            size: 64,
        });
    }
    for oldest in 0..2 * objects {
        requests.push(Request::Delete {
            id: ObjectId(oldest),
        });
        requests.push(Request::Insert {
            id: ObjectId(objects + oldest),
            size: 64,
        });
    }
    Workload::new(format!("cancelling({objects} objects)"), requests)
}

fn variant_json(p: &Priced) -> Json {
    let mut doc = Json::obj();
    doc.set("moved_volume", p.moved).set("flushes", p.flushes);
    for (i, profile) in DeviceProfile::ALL.iter().enumerate() {
        doc.set(&format!("time_us_{}", profile.name()), p.time_us[i]);
    }
    doc
}

fn main() -> ExitCode {
    let scale = scale();
    let mut doc = Json::obj();
    doc.set("bench", "variant_shootout")
        .set("smoke", scale.smoke);
    let mut pass = true;

    // -- Head-to-head tables: churn storm + adversarial, per scale. --------
    let mut rounds: Vec<Json> = Vec::new();
    for &volume in &scale.volumes {
        let storm = coalescible_churn(&ChurnConfig {
            dist: SizeDist::Uniform { lo: 16, hi: 128 },
            target_volume: volume,
            churn_ops: scale.churn_ops,
            seed: 17,
        });
        assert!(storm.validate_reuse().is_ok(), "generator contract");
        let killer = compaction_killer(256, (scale.churn_ops / 512).max(8));
        for workload in [&storm, &killer] {
            let mut table = Table::new(
                format!("{} @ V≈{}", workload.name, fmt_u64(volume)),
                &[
                    "variant",
                    "moved volume",
                    "flushes",
                    "unit µs",
                    "disk µs",
                    "ssd µs",
                ],
            );
            let mut round = Json::obj();
            round
                .set("workload", workload.name.as_str())
                .set("target_volume", volume)
                .set("requests", workload.len());
            let mut live = None;
            for variant in VARIANTS {
                let priced = drive(variant, workload);
                // Same observable state across variants, or the price
                // comparison is meaningless.
                let expected = *live.get_or_insert(priced.live_count);
                assert_eq!(priced.live_count, expected, "{variant}: liveness diverged");
                table.row(vec![
                    variant.to_string(),
                    fmt_u64(priced.moved),
                    fmt_u64(priced.flushes),
                    fmt_u64(priced.time_us[0] as u64),
                    fmt_u64(priced.time_us[1] as u64),
                    fmt_u64(priced.time_us[2] as u64),
                ]);
                round.set(variant, variant_json(&priced));
            }
            table.print();
            rounds.push(round);
        }

        // The headline gate: on the churn storm at every scale, the 2024
        // variant's device time beats both 2014 amortized variants (its
        // structural ancestors) on every profile. The deamortized variant
        // is exempt here — its incremental flushing legitimately stays
        // competitive on mixed-size churn — but the crossover below is
        // measured against all three.
        let nq = drive("nearly-quadratic", &storm);
        for old in ["cost-oblivious", "checkpointed"] {
            let o = drive(old, &storm);
            for (i, profile) in DeviceProfile::ALL.iter().enumerate() {
                if nq.time_us[i] >= o.time_us[i] {
                    println!(
                        "  GATE: nearly-quadratic {} µs ≥ {old} {} µs on {} @ V≈{volume}",
                        nq.time_us[i] as u64,
                        o.time_us[i] as u64,
                        profile.name()
                    );
                    pass = false;
                }
            }
        }
    }
    doc.set("rounds", Json::Arr(rounds));

    // -- Object-count crossover on the cancelling ladder. ------------------
    let mut crossover: [Option<u64>; 3] = [None; 3];
    let mut ladder_json: Vec<Json> = Vec::new();
    for &objects in &scale.ladder {
        let rung = cancelling_ladder_rung(objects);
        let nq = drive("nearly-quadratic", &rung);
        let old: Vec<Priced> = OLD_GUARD.iter().map(|v| drive(v, &rung)).collect();
        let mut entry = Json::obj();
        entry.set("objects", objects);
        entry.set("nearly-quadratic", variant_json(&nq));
        for (name, p) in OLD_GUARD.iter().zip(&old) {
            entry.set(name, variant_json(p));
        }
        ladder_json.push(entry);
        for (i, slot) in crossover.iter_mut().enumerate() {
            let beats_all = old.iter().all(|o| nq.time_us[i] < o.time_us[i]);
            if beats_all && slot.is_none() {
                *slot = Some(objects);
            }
        }
    }
    doc.set("ladder", Json::Arr(ladder_json));
    println!("\n  object-count crossover (2024 beats all 2014 variants):");
    let mut crossover_json = Json::obj();
    for (i, profile) in DeviceProfile::ALL.iter().enumerate() {
        match crossover[i] {
            Some(n) => {
                println!("    {:>4}: ≥ {} objects", profile.name(), fmt_u64(n));
                crossover_json.set(profile.name(), n);
            }
            None => {
                println!("    {:>4}: not reached on this ladder", profile.name());
                pass = false;
            }
        }
    }
    doc.set("crossover_objects", crossover_json)
        .set("pass", pass);

    println!("\n  verdict: {}", realloc_bench::verdict(pass));
    let path = "BENCH_variant_shootout.json";
    let text = doc.to_string();
    match Json::parse(&text) {
        Ok(parsed) if parsed == doc => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("  export failed: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("  exported {path} (re-parsed OK)");
        }
        Ok(_) => {
            eprintln!("  export failed: did not round-trip");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("  export failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
