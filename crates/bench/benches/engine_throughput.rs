//! E13 — serving throughput of the sharded engine across shard counts
//! (our addition; the paper has no serving layer).
//!
//! Criterion benchmark: requests/second for the amortized (§2) variant on
//! the standard churn workload behind a 1/2/4/8-shard engine, plus the
//! un-sharded direct-call baseline for reference. The regime is
//! flush-heavy (tight ε = 1/16, V ≈ 200k): buffer flushes dominate, and a
//! flush rebuilds a suffix of the shard's structure — so `N` shards each
//! rebuild a structure `N×` smaller with far better cache locality, a win
//! that needs no second core (and stacks with real parallelism on
//! multi-core hosts). The final summary interleaves 1-shard and 4-shard
//! runs so slow machine-load drift cancels out of the reported ratio.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_common::Reallocator;
use realloc_core::CostObliviousReallocator;
use realloc_engine::{Engine, EngineConfig};
use workload_gen::{Request, Workload};

const EPS: f64 = 0.0625;

fn direct(w: &Workload) -> u64 {
    let mut r = CostObliviousReallocator::new(EPS);
    for req in &w.requests {
        match *req {
            Request::Insert { id, size } => {
                r.insert(id, size).expect("insert");
            }
            Request::Delete { id } => {
                r.delete(id).expect("delete");
            }
        }
    }
    r.live_volume()
}

fn sharded(w: &Workload, shards: usize) -> u64 {
    let mut engine = Engine::new(EngineConfig::with_shards(shards), |_| {
        Box::new(CostObliviousReallocator::new(EPS)) as Box<dyn Reallocator + Send>
    });
    engine.drive(w).expect("drive");
    engine.quiesce().expect("quiesce").live_volume()
}

fn engine_scaling(c: &mut Criterion) {
    let workload = realloc_bench::standard_churn(200_000, 20_000, 1234);
    let n = workload.len() as u64;

    let mut group = c.benchmark_group("engine_churn");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("direct", "unsharded"), |b| {
        b.iter(|| direct(&workload))
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(
            BenchmarkId::new("engine", format!("shards={shards}")),
            |b| b.iter(|| sharded(&workload, shards)),
        );
    }
    group.finish();

    // Head-to-head: alternate the two configurations so slow drift in
    // background load hits both equally, then report the mean ratio.
    let (mut t1, mut t4) = (0.0f64, 0.0f64);
    sharded(&workload, 1); // warm-up
    sharded(&workload, 4);
    const ROUNDS: usize = 5;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        sharded(&workload, 1);
        t1 += t.elapsed().as_secs_f64();
        let t = Instant::now();
        sharded(&workload, 4);
        t4 += t.elapsed().as_secs_f64();
    }
    // Verdict-style reporting, matching the exp_* targets: visible
    // regression signal without a timing-flaky hard failure.
    let speedup = t1 / t4;
    println!(
        "  engine_churn summary: 4-shard speedup over 1 shard = {speedup:.2}x \
         ({:.0} vs {:.0} requests/sec, mean of {ROUNDS} interleaved rounds) \
         [target >= 1.8x: {}]",
        ROUNDS as f64 * n as f64 / t1,
        ROUNDS as f64 * n as f64 / t4,
        realloc_bench::verdict(speedup >= 1.8),
    );
}

criterion_group!(benches, engine_scaling);
criterion_main!(benches);
