//! E1 — Figure 1: moving previously allocated blocks into holes left by
//! deallocations reduces the footprint; allocators that cannot move are
//! stuck with the holes.
//!
//! We run the same fragmentation-heavy workload through a no-move first-fit
//! allocator and the paper's cost-oblivious reallocator and report the
//! footprint over time and at the end. The reallocator's footprint tracks
//! `(1+ε)V`; first-fit's keeps the high-water mark.

use alloc_baselines::{FitStrategy, FreeListAllocator};
use realloc_common::Reallocator;
use realloc_core::CostObliviousReallocator;
use storage_realloc::harness::{run_workload, RunConfig};
use workload_gen::dist::SizeDist;
use workload_gen::trace::sawtooth;

use realloc_bench::{banner, fmt2, fmt_u64, verdict, Table};

fn main() {
    banner(
        "E1 (exp_fig1_footprint)",
        "Figure 1",
        "reallocation squeezes out holes: footprint ≈ V, vs the no-move high-water mark",
    );

    let dist = SizeDist::Uniform { lo: 4, hi: 512 };
    let workload = sawtooth(20_000, 100_000, 3, &dist, 17);
    println!("workload: {} ({} requests)", workload.name, workload.len());

    let mut table = Table::new(
        "footprint summary (cells)",
        &[
            "algorithm",
            "peak",
            "final footprint",
            "final V",
            "final ratio",
            "ratio ≤ 1.5",
        ],
    );

    let mut series: Vec<(&str, Vec<u64>)> = Vec::new();
    let cases: Vec<(Box<dyn Reallocator>, RunConfig, bool)> = vec![
        (
            Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
            RunConfig::plain(),
            false,
        ),
        (
            Box::new(CostObliviousReallocator::new(0.5)),
            RunConfig::relaxed(),
            true,
        ),
    ];
    for (mut r, config, is_realloc) in cases {
        let result = run_workload(r.as_mut(), &workload, config).expect("run");
        let ratio = result.final_space_ratio();
        let peak = result
            .ledger
            .records()
            .iter()
            .map(|rec| rec.structure_after)
            .max()
            .unwrap_or(0);
        let step = (workload.len() / 20).max(1);
        let samples: Vec<u64> = result
            .ledger
            .records()
            .iter()
            .step_by(step)
            .map(|rec| rec.structure_after)
            .collect();
        series.push((result.name, samples));
        table.row(vec![
            result.name.to_string(),
            fmt_u64(peak),
            fmt_u64(result.final_structure),
            fmt_u64(result.final_volume),
            fmt2(ratio),
            verdict(!is_realloc || ratio <= 1.5 + 1e-9),
        ]);
    }
    table.print();

    println!("\nfootprint over time (one sample per 5% of the run):");
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    for (name, samples) in &series {
        let max = *samples.iter().max().unwrap_or(&1) as f64;
        print!("{name:>14}: ");
        for &s in samples {
            let level = (s as f64 / max * 8.0).round() as usize;
            print!("{}", BARS[level.clamp(1, 8) - 1]);
        }
        println!("  (peak {})", fmt_u64(*samples.iter().max().unwrap_or(&0)));
    }
    println!(
        "\nshape check: the reallocator's footprint falls with V on every shrink phase;\n\
         the no-move allocator's footprint only grows (holes are never squeezed out)."
    );
}
