//! E8 — Lemmas 3.4–3.6: the deamortized structure bounds the *worst-case*
//! cost of a single update by `O((1/ε)·w·f(1) + f(∆))` without hurting the
//! amortized bounds.
//!
//! Reported, against the amortized algorithm on identical workloads:
//!
//! * the worst single-request moved volume, normalized by the bound
//!   `(4/ε′)·w + ∆` (utilization ≤ 1 ⇔ Lemma 3.6 holds);
//! * the amortized cost ratios under unit/linear cost (Lemma 3.6's second
//!   half: deamortization keeps them);
//! * the footprint ratio at quiescence (Lemma 3.5).

use realloc_common::Reallocator;
use realloc_core::{CostObliviousReallocator, DeamortizedReallocator};
use storage_realloc::harness::{run_workload, RunConfig};
use workload_gen::adversarial::deamortized_burst;

use realloc_bench::{banner, fmt2, fmt3, fmt_u64, standard_churn, verdict, Table};

fn main() {
    banner(
        "E8 (exp_deamortized)",
        "Lemmas 3.4, 3.5, 3.6",
        "worst-case per-update volume ≤ (4/ε')·w + ∆, amortized cost and footprint unchanged",
    );

    let eps = 0.5;
    let workloads = vec![
        standard_churn(40_000, 15_000, 5),
        deamortized_burst(1024, 4_000),
    ];

    let mut table = Table::new(
        "amortized vs deamortized (ε = 1/2)",
        &[
            "workload",
            "algorithm",
            "worst op volume",
            "bound utilization",
            "b(unit)",
            "b(linear)",
            "max extent ratio*",
            "quiescent ratio",
            "Lemma 3.6",
        ],
    );

    for w in &workloads {
        // Amortized reference.
        {
            let mut r = CostObliviousReallocator::new(eps);
            let result = run_workload(&mut r, w, RunConfig::plain()).expect("run");
            let pump_rate = 4.0 / (eps / 3.0);
            table.row(vec![
                w.name.chars().take(28).collect(),
                result.name.to_string(),
                fmt_u64(result.ledger.max_op_moved_volume()),
                fmt3(result.ledger.max_worst_case_utilization(pump_rate)),
                fmt2(result.ledger.cost_ratio(&|_| 1.0)),
                fmt2(result.ledger.cost_ratio(&|x| x as f64)),
                fmt2(result.ledger.max_settled_space_ratio()),
                fmt2(result.final_space_ratio()),
                "n/a".into(),
            ]);
        }
        // Deamortized: drive to quiescence at the end so the Lemma 3.5
        // "flush not in progress" ratio is measured cleanly.
        {
            let mut r = DeamortizedReallocator::new(eps);
            let result = run_workload(&mut r, w, RunConfig::plain()).expect("run");
            let pump_rate = 4.0 / (eps / 3.0);
            let util = result.ledger.max_worst_case_utilization(pump_rate);
            r.drain();
            let quiescent = r.structure_size() as f64 / r.live_volume() as f64;
            table.row(vec![
                w.name.chars().take(28).collect(),
                result.name.to_string(),
                fmt_u64(result.ledger.max_op_moved_volume()),
                fmt3(util),
                fmt2(result.ledger.cost_ratio(&|_| 1.0)),
                fmt2(result.ledger.cost_ratio(&|x| x as f64)),
                fmt2(result.ledger.max_settled_space_ratio()),
                fmt2(quiescent),
                verdict(util <= 1.0 + 1e-9 && quiescent <= 1.0 + eps + 1e-9),
            ]);
        }
    }
    table.print();
    println!(
        "* for the deamortized structure this includes mid-flush staging/log working\n\
          space, bounded by Lemma 3.5's (1+O(ε'))V + ∆ envelope rather than 1+ε;\n\
          the quiescent column is the Lemma 3.5 no-flush-in-progress ratio."
    );

    // Latency-profile view: distribution of per-request moved volume.
    let mut profile = Table::new(
        "per-request moved volume distribution (standard churn)",
        &["algorithm", "p50", "p99", "p99.9", "max"],
    );
    for mut r in [
        Box::new(CostObliviousReallocator::new(eps)) as Box<dyn Reallocator>,
        Box::new(DeamortizedReallocator::new(eps)),
    ] {
        let result = run_workload(r.as_mut(), &workloads[0], RunConfig::plain()).expect("run");
        let mut vols: Vec<u64> = result
            .ledger
            .records()
            .iter()
            .map(|rec| rec.moved_volume())
            .collect();
        vols.sort_unstable();
        let pct = |p: f64| vols[((vols.len() - 1) as f64 * p) as usize];
        profile.row(vec![
            result.name.to_string(),
            fmt_u64(pct(0.50)),
            fmt_u64(pct(0.99)),
            fmt_u64(pct(0.999)),
            fmt_u64(*vols.last().unwrap()),
        ]);
    }
    profile.print();

    println!(
        "\nreading: the amortized structure shows rare huge spikes (a flush can move\n\
         everything); the deamortized structure's worst request stays under its\n\
         (4/ε')·w + ∆ budget (utilization ≤ 1) at identical amortized cost ratios."
    );
}
