//! E14 — serving throughput under skewed deletes: hash vs table routing,
//! with and without cross-shard rebalancing (our addition; the paper has
//! no serving layer).
//!
//! The skewed-delete churn spares every object routed to shard 0, so the
//! hot shard's volume `V_0` grows while the rest drain — the regime where
//! a stateless hash router is stuck (its map is frozen) and the
//! `TableRouter` + `Engine::rebalance` pairing earns its keep. The
//! criterion group measures the serving cost of each configuration; the
//! printed summary reports the imbalance each one *ends* with, which is
//! the real deliverable: periodic rebalancing holds `max V_i / mean V_i`
//! near 1 for a small migration overhead, while the unbalanced runs drift
//! toward `N`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use realloc_common::{Reallocator, Router, TableRouter};
use realloc_core::CostObliviousReallocator;
use realloc_engine::{shard_of, Engine, EngineConfig, RebalanceOptions};
use workload_gen::churn::{skewed_churn, ChurnConfig};
use workload_gen::dist::SizeDist;
use workload_gen::Workload;

const EPS: f64 = 0.125;
const SHARDS: usize = 4;
/// Requests between rebalances in the rebalancing configurations.
const REBALANCE_EVERY: usize = 4_096;

fn skewed_workload(route_keep: impl FnMut(realloc_common::ObjectId) -> bool) -> Workload {
    skewed_churn(
        &ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            target_volume: 50_000,
            churn_ops: 25_000,
            seed: 77,
        },
        route_keep,
    )
}

fn engine(table: bool) -> Engine {
    let factory =
        |_shard: usize| Box::new(CostObliviousReallocator::new(EPS)) as Box<dyn Reallocator + Send>;
    let config = EngineConfig::with_shards(SHARDS);
    if table {
        Engine::with_router(config, Box::new(TableRouter::new(SHARDS)), factory)
    } else {
        Engine::new(config, factory)
    }
}

/// Serves `workload`, rebalancing every `REBALANCE_EVERY` requests when
/// `rebalance` is set. Returns the final imbalance ratio.
fn run(workload: &Workload, table: bool, rebalance: bool) -> f64 {
    let mut e = engine(table);
    let chunk = if rebalance {
        REBALANCE_EVERY
    } else {
        workload.len().max(1)
    };
    for seg in workload.requests.chunks(chunk) {
        e.drive(&Workload::new("seg", seg.to_vec())).expect("drive");
        if rebalance {
            e.rebalance(RebalanceOptions::default()).expect("rebalance");
        }
    }
    e.quiesce().expect("quiesce").imbalance_ratio()
}

fn rebalance_throughput(c: &mut Criterion) {
    // Each router sees skew keyed to its *own* routing, so both end up with
    // a comparably hot shard 0.
    let hash_workload = skewed_workload(|id| shard_of(id, SHARDS) == 0);
    let probe = TableRouter::new(SHARDS);
    let table_workload = skewed_workload(|id| probe.route(id) == 0);
    let n = hash_workload.len() as u64;

    let mut group = c.benchmark_group("skewed_delete_serving");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("hash", "no-rebalance"), |b| {
        b.iter(|| run(&hash_workload, false, false))
    });
    group.bench_function(BenchmarkId::new("table", "no-rebalance"), |b| {
        b.iter(|| run(&table_workload, true, false))
    });
    group.bench_function(BenchmarkId::new("table", "rebalance"), |b| {
        b.iter(|| run(&table_workload, true, true))
    });
    group.finish();

    let hash_imbalance = run(&hash_workload, false, false);
    let drift_imbalance = run(&table_workload, true, false);
    let held_imbalance = run(&table_workload, true, true);
    println!(
        "  skewed_delete summary: final imbalance — hash {hash_imbalance:.2}, \
         table w/o rebalance {drift_imbalance:.2}, \
         table rebalancing every {REBALANCE_EVERY} reqs {held_imbalance:.2} \
         [targets: drift > 2, held < 1.25: {}]",
        realloc_bench::verdict(hash_imbalance > 2.0 && held_imbalance < 1.25),
    );
}

criterion_group!(benches, rebalance_throughput);
criterion_main!(benches);
