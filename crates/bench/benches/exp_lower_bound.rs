//! E9 — Lemma 3.7: on the sequence ⟨insert ∆; ∆ × insert 1; delete ∆⟩,
//! *any* reallocator that maintains a `(3/2)V` footprint must serve at
//! least one update at reallocation cost `Ω(f(∆))` — even knowing `f` and
//! the future.
//!
//! We run the sequence for a ∆-sweep against every algorithm and report
//! the max single-request cost normalized by `f(∆)` under unit, linear,
//! and sqrt costs. Algorithms that keep the footprint bound show a
//! normalized cost bounded away from 0; no-move allocators dodge the cost
//! by breaking the footprint bound instead — both columns are shown.

use alloc_baselines::{
    BuddyAllocator, FitStrategy, FreeListAllocator, LogCompactAllocator, SizeClassGapsAllocator,
};
use cost_model::CostFn;
use realloc_common::Reallocator;
use realloc_core::{CheckpointedReallocator, CostObliviousReallocator, DeamortizedReallocator};
use storage_realloc::harness::{run_workload, RunConfig};
use workload_gen::adversarial::lemma_3_7;

use realloc_bench::{banner, fmt2, Table};

fn roster() -> Vec<Box<dyn Reallocator>> {
    vec![
        Box::new(CostObliviousReallocator::new(0.5)),
        Box::new(CheckpointedReallocator::new(0.5)),
        Box::new(DeamortizedReallocator::new(0.5)),
        Box::new(LogCompactAllocator::new()),
        Box::new(SizeClassGapsAllocator::new()),
        Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
        Box::new(BuddyAllocator::new()),
    ]
}

fn main() {
    banner(
        "E9 (exp_lower_bound)",
        "Lemma 3.7",
        "keeping footprint ≤ (3/2)V forces some update to cost Ω(f(∆)) — pay in moves or in space",
    );

    let costs: Vec<Box<dyn CostFn>> = vec![
        Box::new(cost_model::Unit),
        Box::new(cost_model::Linear::per_cell(1.0)),
        Box::new(cost_model::SqrtCost),
    ];

    for &delta in &[64u64, 256, 1024, 4096] {
        let w = lemma_3_7(delta);
        let mut table = Table::new(
            format!("∆ = {delta}: max single-request cost / f(∆), and worst footprint ratio"),
            &[
                "algorithm",
                "unit",
                "linear",
                "sqrt",
                "worst space ratio",
                "keeps 3/2·V",
            ],
        );
        for mut alg in roster() {
            let result = run_workload(alg.as_mut(), &w, RunConfig::plain()).expect("run");
            let mut row = vec![result.name.to_string()];
            for f in &costs {
                let worst = result.ledger.max_op_realloc_cost(&|x| f.cost(x));
                row.push(fmt2(worst / f.cost(delta)));
            }
            let space = result.ledger.max_settled_space_ratio();
            row.push(fmt2(space));
            row.push(if space <= 1.5 + 1e-9 { "yes" } else { "no" }.to_string());
            table.row(row);
        }
        table.print();
    }

    println!(
        "\nreading: every algorithm that keeps the (3/2)V footprint shows a single update\n\
         costing a constant fraction of f(∆) under each cost function (the lemma's two\n\
         cases: either a small insert displaced the big object, or its delete dragged\n\
         Ω(∆) unit objects). The no-move allocators keep costs at 0 — but their space\n\
         column breaks the footprint bound instead. There is no third option.\n\
         notes: the deamortized row's space column includes its mid-flush working\n\
         envelope (1+O(ε'))V + O(∆), which dominates on this tiny V ≈ 2∆ instance —\n\
         it still pays the Ω(f(∆)) move, consistent with the lemma; size-class-gaps\n\
         escapes via its 2x slot rounding, which is also a broken footprint bound."
    );
}
