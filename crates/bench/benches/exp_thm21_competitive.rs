//! E4 — Theorem 2.1 (with Lemmas 2.5 and 2.6): the cost-oblivious
//! reallocator is `(1+ε, O((1/ε) log(1/ε)))`-competitive for *every*
//! monotone subadditive cost function simultaneously.
//!
//! One run per ε (the algorithm is cost oblivious, so a single move log is
//! priced under the whole cost-function suite after the fact). Reported:
//!
//! * the max settled space ratio vs the hard `1+ε` bound (Lemma 2.5);
//! * the cost competitive ratio `realloc cost / alloc cost` per cost
//!   function (Lemma 2.6), and its normalization by `(1/ε′)·ln(1/ε′)` —
//!   the paper predicts the normalized column stays bounded by a constant
//!   as ε shrinks.

use realloc_core::CostObliviousReallocator;
use storage_realloc::harness::{run_workload, RunConfig};

use realloc_bench::{banner, fmt2, fmt3, standard_churn, verdict, Table};

fn main() {
    banner(
        "E4 (exp_thm21_competitive)",
        "Theorem 2.1 / Lemmas 2.5, 2.6",
        "footprint ≤ (1+ε)·V always; realloc cost ≤ O((1/ε)log(1/ε)) · alloc cost, ∀f ∈ Fsa",
    );

    let suite = cost_model::standard_suite();
    let workload = standard_churn(80_000, 40_000, 42);
    println!("workload: {} ({} requests)", workload.name, workload.len());

    let mut space_table = Table::new(
        "Lemma 2.5 — footprint competitiveness",
        &[
            "ε",
            "bound 1+ε",
            "max settled ratio",
            "flush count",
            "verdict",
        ],
    );
    let mut cost_table = Table::new(
        "Lemma 2.6 — cost competitive ratio b(f) per cost function (one run, priced post-hoc)",
        &{
            let mut h = vec!["ε", "(1/ε′)ln(1/ε′)"];
            h.extend(suite.iter().map(|f| f.name()));
            h
        },
    );
    let mut norm_table = Table::new(
        "normalized b(f) / ((1/ε′)ln(1/ε′)) — bounded ⇒ the O((1/ε)log(1/ε)) shape holds",
        &{
            let mut h = vec!["ε"];
            h.extend(suite.iter().map(|f| f.name()));
            h
        },
    );

    for eps in [0.5, 0.25, 0.125, 0.0625, 0.03125] {
        let mut r = CostObliviousReallocator::new(eps);
        let result = run_workload(&mut r, &workload, RunConfig::plain()).expect("run");
        let ratio = result.ledger.max_settled_space_ratio();
        space_table.row(vec![
            format!("1/{}", (1.0 / eps) as u32),
            fmt3(1.0 + eps),
            fmt3(ratio),
            r.flush_count().to_string(),
            verdict(ratio <= 1.0 + eps + 1e-9),
        ]);

        let eps_p = r.eps().prime();
        let norm = (1.0 / eps_p) * (1.0 / eps_p).ln();
        let mut cost_row = vec![format!("1/{}", (1.0 / eps) as u32), fmt2(norm)];
        let mut norm_row = vec![format!("1/{}", (1.0 / eps) as u32)];
        for f in &suite {
            let b = result.ledger.cost_ratio(&|w| f.cost(w));
            cost_row.push(fmt2(b));
            norm_row.push(fmt3(b / norm));
        }
        cost_table.row(cost_row);
        norm_table.row(norm_row);
    }

    space_table.print();
    cost_table.print();
    norm_table.print();

    println!(
        "\nreading: every settled ratio sits under its 1+ε bound (hard guarantee), and the\n\
         normalized cost columns stay roughly flat or fall as ε tightens — i.e. measured\n\
         cost grows no faster than the (1/ε)log(1/ε) theory line, for every f at once."
    );
}
