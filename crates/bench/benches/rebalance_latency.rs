//! E15 — rebalance *tail latency*: barrier vs online execution of the same
//! migration plan under sustained churn (our addition; the paper has no
//! serving layer).
//!
//! `rebalance_throughput` (E14) showed that periodic rebalancing holds the
//! imbalance ratio near 1 for a modest aggregate cost. This experiment asks
//! the question a serving front-end actually cares about: *how long does
//! request intake stall while the fleet rebalances?* The workload is a
//! skewed-churn storm that releases halfway — phase one manufactures a >2×
//! imbalance, phase two is sustained neutral churn during which the repair
//! runs. Requests arrive in fixed service batches ("chunks"); the per-chunk
//! wall time is the intake stall a client would see.
//!
//! * **barrier** — `Engine::rebalance` at the trigger chunk: the fleet
//!   quiesces and the whole migration executes inside that one chunk. Its
//!   stall *is* the migration.
//! * **online** — `Engine::rebalance_online` at the same trigger: the plan
//!   drains in bounded batches piggybacked on the following chunks'
//!   serving; each chunk absorbs at most a batch of migrations.
//!
//! The acceptance bar (ISSUE 4): online's worst chunk stall during an
//! active rebalance is **< 10% of the barrier-mode quiesce stall**, while
//! both modes converge to imbalance ≤ 1.25. Both numbers are printed with
//! a PASS/FAIL verdict.

use std::time::{Duration, Instant};

use realloc_bench::{fmt2, fmt_u64, Table};
use realloc_common::{Reallocator, Router, TableRouter};
use realloc_core::CostObliviousReallocator;
use realloc_engine::{Engine, EngineConfig, RebalanceMode, RebalanceOptions};
use workload_gen::churn::{skewed_churn_release, ChurnConfig};
use workload_gen::dist::SizeDist;
use workload_gen::Workload;

const EPS: f64 = 0.125;
const SHARDS: usize = 4;
/// Requests per service batch (the intake granularity being timed).
const CHUNK: usize = 128;
/// Online mode: objects migrated per bounded batch.
const BATCH_OBJECTS: usize = 64;
/// Engine batching, both modes: small channel batches and a shallow queue
/// keep the per-shard in-flight window short — a migrate-out only waits for
/// that window to drain, so this is the knob that bounds an online step's
/// freeze latency (and it costs barrier mode nothing: its stall is the
/// migration itself).
const ENGINE_BATCH: usize = 64;
const QUEUE_DEPTH: usize = 2;
/// Independent runs per mode; the table reports the median-worst run.
const RUNS: usize = 5;
/// Churn ops after the skew releases (the neutral window the repair runs
/// in); the preceding `SKEW_OPS` build the imbalance first.
const NEUTRAL_OPS: usize = 20_000;
const SKEW_OPS: usize = 150_000;

fn workload() -> Workload {
    let probe = TableRouter::new(SHARDS);
    skewed_churn_release(
        &ChurnConfig {
            dist: SizeDist::Uniform { lo: 1, hi: 64 },
            // ~30k live objects: the trigger-time migration plan is several
            // thousand objects, so barrier mode's single stall dwarfs one
            // chunk's serving — the regime the comparison is about.
            target_volume: 1_000_000,
            churn_ops: SKEW_OPS + NEUTRAL_OPS,
            seed: 77,
        },
        |id| probe.route(id) == 0,
        SKEW_OPS,
    )
}

fn engine() -> Engine {
    let factory =
        |_shard: usize| Box::new(CostObliviousReallocator::new(EPS)) as Box<dyn Reallocator + Send>;
    Engine::with_router(
        EngineConfig {
            batch: ENGINE_BATCH,
            queue_depth: QUEUE_DEPTH,
            ..EngineConfig::with_shards(SHARDS)
        },
        Box::new(TableRouter::new(SHARDS)),
        factory,
    )
}

struct RunResult {
    /// Worst chunk stall inside the rebalance window (trigger chunk through
    /// the chunk in which the migration completed).
    worst_stall: Duration,
    /// p99 chunk stall over the whole run.
    p99: Duration,
    /// Chunks in the rebalance window.
    window_chunks: usize,
    /// Imbalance when the rebalance completed (the convergence target).
    imbalance_after: f64,
    imbalance_before: f64,
    migrated_objects: u64,
    batches: u64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Serves the workload in CHUNK-request service batches, triggering one
/// rebalance at the first chunk boundary past the skew phase. Each chunk's
/// wall time includes whatever rebalance work rode on it.
fn run(workload: &Workload, mode: RebalanceMode) -> RunResult {
    let mut e = engine();
    // First chunk boundary at/after the end of the skew phase (the release
    // point is `len - NEUTRAL_OPS` requests in).
    let trigger_chunk = (workload.len() - NEUTRAL_OPS).div_ceil(CHUNK);
    let opts = RebalanceOptions::default().batched(BATCH_OBJECTS);

    let mut stalls: Vec<Duration> = Vec::new();
    let mut window = None; // (first_chunk, last_chunk) of the rebalance
    let mut report = None;
    for (i, chunk) in workload.requests.chunks(CHUNK).enumerate() {
        let seg = Workload::new("chunk", chunk.to_vec());
        let start = Instant::now();
        e.drive(&seg).expect("drive");
        if i == trigger_chunk {
            match mode {
                RebalanceMode::Barrier => {
                    report = Some(e.rebalance(opts).expect("rebalance"));
                    window = Some((i, i));
                }
                RebalanceMode::Online => {
                    e.rebalance_online(opts).expect("plan");
                    window = Some((i, i));
                }
            }
        }
        stalls.push(start.elapsed());
        if report.is_none() {
            if let Some(done) = e.take_rebalance_report() {
                report = Some(done);
                if let Some((_, last)) = &mut window {
                    *last = i;
                }
            }
        }
    }
    // A session still draining at workload end finishes on idle steps, each
    // timed as its own (bounded) stall.
    while report.is_none() {
        let start = Instant::now();
        let active = e.rebalance_step().expect("step");
        stalls.push(start.elapsed());
        if let Some((_, last)) = &mut window {
            *last = stalls.len() - 1;
        }
        if !active {
            report = e.take_rebalance_report();
        }
    }
    let report = report.expect("one rebalance per run");
    let (first, last) = window.expect("trigger inside the workload");
    let worst_stall = stalls[first..=last].iter().copied().max().unwrap();
    let mut sorted = stalls.clone();
    sorted.sort();
    let result = RunResult {
        worst_stall,
        p99: percentile(&sorted, 0.99),
        window_chunks: last - first + 1,
        imbalance_after: report.after.imbalance_ratio(),
        imbalance_before: report.before.imbalance_ratio(),
        migrated_objects: report.migrated_objects,
        batches: report.batches,
    };
    drop(e.shutdown().expect("clean shutdown"));
    result
}

/// Median-by-worst-stall of `RUNS` runs (timings vary; the comparison
/// should not ride on one noisy outlier in either direction).
fn run_many(workload: &Workload, mode: RebalanceMode) -> RunResult {
    let mut results: Vec<RunResult> = (0..RUNS).map(|_| run(workload, mode)).collect();
    results.sort_by_key(|r| r.worst_stall);
    results.remove(RUNS / 2)
}

fn micros(d: Duration) -> String {
    fmt_u64(d.as_micros() as u64)
}

fn main() {
    let workload = workload();
    println!("workload: {} ({} requests)", workload.name, workload.len());
    println!(
        "engine:   cost-oblivious × {SHARDS} shards (ε = {EPS}), table router; \
         {CHUNK}-request service batches, online batches of {BATCH_OBJECTS} objects, \
         median of {RUNS} runs\n"
    );

    let barrier = run_many(&workload, RebalanceMode::Barrier);
    let online = run_many(&workload, RebalanceMode::Online);

    let mut table = Table::new(
        "rebalance intake stalls (µs)".to_string(),
        &[
            "mode",
            "worst stall",
            "p99 chunk",
            "window chunks",
            "batches",
            "migrated",
            "imbalance before",
            "imbalance after",
        ],
    );
    for (name, r) in [("barrier", &barrier), ("online", &online)] {
        table.row(vec![
            name.to_string(),
            micros(r.worst_stall),
            micros(r.p99),
            fmt_u64(r.window_chunks as u64),
            fmt_u64(r.batches),
            fmt_u64(r.migrated_objects),
            fmt2(r.imbalance_before),
            fmt2(r.imbalance_after),
        ]);
    }
    table.print();

    let ratio = online.worst_stall.as_secs_f64() / barrier.worst_stall.as_secs_f64();
    let converged = barrier.imbalance_after <= 1.25 && online.imbalance_after <= 1.25;
    println!(
        "\n  online worst stall = {:.1}% of the barrier quiesce stall \
         (target < 10%); imbalance after: barrier {:.2}, online {:.2} \
         (target ≤ 1.25 both) {}",
        100.0 * ratio,
        barrier.imbalance_after,
        online.imbalance_after,
        realloc_bench::verdict(ratio < 0.10 && converged),
    );
}
