//! Shared utilities for the experiment bench targets.
//!
//! Each `benches/exp_*.rs` target (all `harness = false`) regenerates one
//! figure or theorem-derived experiment of the paper and prints its
//! table/series to stdout; `cargo bench --workspace` therefore reproduces
//! the whole evaluation. This crate holds the table formatter and the
//! standard workloads so every experiment reports numbers the same way.

/// A fixed-width text table. Columns are sized to content; numeric cells
/// should be pre-formatted by the caller (`fmt2`/`fmt_u64` help).
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{cell:>w$} | ", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push_str(&format!(
            "|{}\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2) + "|")
                .collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals (negative zero normalized).
pub fn fmt2(x: f64) -> String {
    let x = if x.abs() < 5e-3 { 0.0 } else { x };
    format!("{x:.2}")
}

/// Formats a float with three decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a u64 with thousands separators.
pub fn fmt_u64(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A PASS/FAIL verdict cell.
pub fn verdict(ok: bool) -> String {
    if ok { "PASS" } else { "FAIL" }.to_string()
}

/// The standard churn workload used by several experiments.
pub fn standard_churn(target_volume: u64, ops: usize, seed: u64) -> workload_gen::Workload {
    workload_gen::churn::churn(&workload_gen::churn::ChurnConfig {
        dist: workload_gen::dist::SizeDist::ClassPowerLaw {
            classes: 10,
            decay: 0.7,
        },
        target_volume,
        churn_ops: ops,
        seed,
    })
}

/// Prints the experiment banner (consistent headings in bench output).
pub fn banner(id: &str, paper_artifact: &str, claim: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{id} — reproduces {paper_artifact}");
    println!("claim: {claim}");
    println!("{}", "=".repeat(78));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["10".into(), "2000".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 4);
        // All data lines have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt2(1.005), "1.00");
        assert_eq!(fmt_u64(1234567), "1,234,567");
        assert_eq!(fmt_u64(999), "999");
        assert_eq!(verdict(true), "PASS");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
