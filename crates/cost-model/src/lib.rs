#![warn(missing_docs)]
//! Cost functions for storage reallocation.
//!
//! The paper's algorithms are *cost oblivious* with respect to `Fsa`, the
//! class of monotonically increasing, subadditive functions
//! (`f(x + y) <= f(x) + f(y)`). This crate supplies the concrete members of
//! `Fsa` used throughout the experiments — each modelling a real storage
//! medium — plus numerical checkers that verify membership in the class.
//!
//! Because the algorithms never consult the cost function, experiment
//! harnesses run the algorithm once and price the recorded move log under
//! every function here (see `realloc_common::Ledger`).

pub mod check;
pub mod functions;

pub use check::{check_membership, MembershipReport};
pub use functions::{
    Affine, Capped, CostFn, Linear, LogCost, SqrtCost, SsdErase, Superlinear, Unit,
};

/// The standard suite of subadditive cost functions used by every
/// experiment table, in display order.
pub fn standard_suite() -> Vec<Box<dyn CostFn>> {
    vec![
        Box::new(Unit),
        Box::new(Linear::per_cell(1.0)),
        Box::new(Affine::disk(64.0, 0.5)),
        Box::new(SqrtCost),
        Box::new(LogCost),
        Box::new(SsdErase::new(128, 8.0, 0.25)),
        Box::new(Capped::new(256.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_members_are_all_in_fsa() {
        for f in standard_suite() {
            let report = check_membership(f.as_ref(), 1 << 16, 4096, 7);
            assert!(
                report.is_member(),
                "{} failed Fsa membership: {report:?}",
                f.name()
            );
        }
    }

    #[test]
    fn standard_suite_has_distinct_names() {
        let suite = standard_suite();
        let mut names: Vec<_> = suite.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
