//! Numerical membership checks for the class `Fsa` of monotonically
//! increasing, subadditive cost functions.
//!
//! These cannot *prove* membership (that's a property over all of `ℕ²`), but
//! they probe a dense deterministic grid plus multiplicative ladders, which
//! in practice catches every non-member we ship (see [`Superlinear`]'s
//! failure in the tests).
//!
//! [`Superlinear`]: crate::functions::Superlinear

use crate::functions::CostFn;

/// Result of probing a cost function for `Fsa` membership.
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipReport {
    /// First `(x, y)` found with `f(x+y) > f(x) + f(y)` (plus tolerance).
    pub subadditivity_violation: Option<(u64, u64)>,
    /// First `x` found with `f(x+1) < f(x)` (minus tolerance).
    pub monotonicity_violation: Option<u64>,
    /// First `x` found with `f(x) <= 0` — the paper assumes every
    /// allocation has positive cost.
    pub positivity_violation: Option<u64>,
}

impl MembershipReport {
    /// Whether no violation was found.
    pub fn is_member(&self) -> bool {
        self.subadditivity_violation.is_none()
            && self.monotonicity_violation.is_none()
            && self.positivity_violation.is_none()
    }
}

const TOL: f64 = 1e-9;

/// Probes `f` for membership in `Fsa` on sizes up to `max_size`.
///
/// * Monotonicity and positivity are checked on `dense_upto` consecutive
///   sizes and then on a doubling ladder up to `max_size`.
/// * Subadditivity is checked on all pairs from a mixed grid of `grid_pts`
///   small values and the doubling ladder — `O((grid_pts + log max)²)`
///   pairs.
pub fn check_membership(
    f: &dyn CostFn,
    max_size: u64,
    dense_upto: u64,
    grid_pts: u64,
) -> MembershipReport {
    let mut report = MembershipReport {
        subadditivity_violation: None,
        monotonicity_violation: None,
        positivity_violation: None,
    };

    // Positivity + monotonicity: dense prefix.
    let dense_hi = dense_upto.min(max_size);
    let mut prev = 0.0f64;
    for x in 1..=dense_hi {
        let fx = f.cost(x);
        if fx <= 0.0 && report.positivity_violation.is_none() {
            report.positivity_violation = Some(x);
        }
        if fx + TOL < prev && report.monotonicity_violation.is_none() {
            report.monotonicity_violation = Some(x - 1);
        }
        prev = fx;
    }
    // ... then a doubling ladder to max_size.
    let mut x = dense_hi.max(1);
    let mut fx = f.cost(x);
    while x < max_size {
        let next = (x * 2).min(max_size);
        let fnext = f.cost(next);
        if fnext + TOL < fx && report.monotonicity_violation.is_none() {
            report.monotonicity_violation = Some(x);
        }
        if fnext <= 0.0 && report.positivity_violation.is_none() {
            report.positivity_violation = Some(next);
        }
        x = next;
        fx = fnext;
    }

    // Subadditivity on a mixed grid.
    let mut grid: Vec<u64> = (1..=grid_pts.min(max_size)).collect();
    let mut v = grid_pts.max(1);
    while v < max_size {
        v = (v * 2).min(max_size);
        grid.push(v);
        if v == max_size {
            break;
        }
    }
    grid.sort_unstable();
    grid.dedup();
    'outer: for (i, &a) in grid.iter().enumerate() {
        for &b in &grid[i..] {
            let Some(sum) = a.checked_add(b) else {
                continue;
            };
            if sum > max_size {
                continue;
            }
            if f.cost(sum) > f.cost(a) + f.cost(b) + TOL {
                report.subadditivity_violation = Some((a, b));
                break 'outer;
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::*;

    #[test]
    fn members_pass() {
        for f in crate::standard_suite() {
            assert!(check_membership(f.as_ref(), 1 << 14, 1024, 7).is_member());
        }
    }

    #[test]
    fn quadratic_fails_subadditivity() {
        let report = check_membership(&Superlinear, 1 << 10, 64, 7);
        assert!(report.subadditivity_violation.is_some());
        assert!(report.monotonicity_violation.is_none());
    }

    #[test]
    fn decreasing_function_fails_monotonicity() {
        struct Decreasing;
        impl CostFn for Decreasing {
            fn cost(&self, w: u64) -> f64 {
                1000.0 / (w as f64)
            }
            fn name(&self) -> &'static str {
                "decreasing"
            }
        }
        let report = check_membership(&Decreasing, 1 << 10, 64, 7);
        assert!(report.monotonicity_violation.is_some());
    }

    #[test]
    fn nonpositive_function_flagged() {
        struct Zero;
        impl CostFn for Zero {
            fn cost(&self, _w: u64) -> f64 {
                0.0
            }
            fn name(&self) -> &'static str {
                "zero"
            }
        }
        let report = check_membership(&Zero, 128, 16, 4);
        assert_eq!(report.positivity_violation, Some(1));
    }

    #[test]
    fn tolerance_permits_linear_equality() {
        // Linear satisfies subadditivity with equality; floating-point noise
        // must not be reported as a violation.
        let report = check_membership(&Linear::per_cell(3.0), 1 << 16, 4096, 16);
        assert!(report.is_member());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::functions::{Affine, SsdErase};
    use proptest::prelude::*;

    proptest! {
        /// Every affine disk model (seek ≥ 0, bandwidth > 0) is in Fsa.
        #[test]
        fn affine_family_is_subadditive(seek in 0.0f64..10_000.0, per_cell in 0.001f64..100.0) {
            let report = check_membership(&Affine::disk(seek, per_cell), 1 << 12, 256, 6);
            prop_assert!(report.is_member(), "{report:?}");
        }

        /// Every SSD erase-block model is in Fsa, staircase and all.
        #[test]
        fn ssd_family_is_subadditive(
            block in 1u64..=512,
            erase in 0.1f64..1_000.0,
            program in 0.0f64..10.0,
        ) {
            let report = check_membership(&SsdErase::new(block, erase, program), 1 << 12, 256, 6);
            prop_assert!(report.is_member(), "{report:?}");
        }

        /// Power functions f(w) = w^p: subadditive iff p ≤ 1 — the checker
        /// must agree on both sides of the boundary.
        #[test]
        fn power_functions_classified_correctly(p in 0.1f64..=2.0) {
            struct Power(f64);
            impl CostFn for Power {
                fn cost(&self, w: u64) -> f64 {
                    (w as f64).powf(self.0)
                }
                fn name(&self) -> &'static str {
                    "power"
                }
            }
            let report = check_membership(&Power(p), 1 << 10, 128, 6);
            if p <= 1.0 {
                prop_assert!(report.is_member(), "w^{p} wrongly rejected: {report:?}");
            } else if p >= 1.05 {
                // Clearly superadditive powers must be caught (we leave the
                // sliver just above 1 to numerical tolerance).
                prop_assert!(
                    report.subadditivity_violation.is_some(),
                    "w^{p} wrongly accepted"
                );
            }
        }
    }
}
