//! Concrete cost functions modelling real storage media.
//!
//! Each type documents which medium it abstracts and why it is subadditive.
//! All functions are normalized so `f(w) > 0` for `w >= 1`, matching the
//! paper's assumption that every allocation has positive cost.

/// A cost function `f(w)` giving the cost of allocating or moving a `w`-cell
/// object.
///
/// The paper's algorithms never call this — that is the whole point of cost
/// obliviousness. Only ledgers and experiment harnesses do.
pub trait CostFn {
    /// Cost of allocating or moving a size-`w` object.
    fn cost(&self, w: u64) -> f64;

    /// Short name for experiment tables, e.g. `"linear"`.
    fn name(&self) -> &'static str;

    /// Whether this function is known to be monotone + subadditive. The one
    /// deliberate outlier ([`Superlinear`]) reports `false`; it exists to
    /// demonstrate what the paper's guarantee does *not* cover.
    fn in_fsa(&self) -> bool {
        true
    }
}

/// `f(w) = 1`: every object costs the same to move regardless of size.
///
/// Models seek-dominated media (one disk seek per object, transfer time
/// negligible) and is one of the two extreme points the paper's intuition
/// section analyses. Constant functions are trivially subadditive.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unit;

impl CostFn for Unit {
    fn cost(&self, _w: u64) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "unit"
    }
}

/// `f(w) = c·w`: cost proportional to object size.
///
/// Models RAM/memcpy-dominated media — the garbage-collection literature's
/// usual assumption. Linear functions are subadditive with equality.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    per_cell: f64,
}

impl Linear {
    /// Linear cost with `per_cell` cost per cell.
    pub fn per_cell(per_cell: f64) -> Self {
        assert!(per_cell > 0.0);
        Linear { per_cell }
    }
}

impl CostFn for Linear {
    fn cost(&self, w: u64) -> f64 {
        self.per_cell * w as f64
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// `f(w) = a + b·w`: a rotating disk — fixed positioning cost `a` (seek +
/// rotational latency) plus bandwidth-limited transfer `b·w`.
///
/// Affine functions with `a >= 0` are subadditive:
/// `a + b(x+y) <= (a + bx) + (a + by)`.
#[derive(Debug, Clone, Copy)]
pub struct Affine {
    seek: f64,
    per_cell: f64,
}

impl Affine {
    /// Disk model with fixed `seek` cost and `per_cell` transfer cost.
    pub fn disk(seek: f64, per_cell: f64) -> Self {
        assert!(seek >= 0.0 && per_cell >= 0.0 && seek + per_cell > 0.0);
        Affine { seek, per_cell }
    }
}

impl CostFn for Affine {
    fn cost(&self, w: u64) -> f64 {
        self.seek + self.per_cell * w as f64
    }
    fn name(&self) -> &'static str {
        "disk-affine"
    }
}

/// `f(w) = √w`: strongly concave, hence subadditive; stresses the regime
/// where small objects are much more expensive per unit size than large
/// ones — exactly the asymmetry the size-class layout exploits.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqrtCost;

impl CostFn for SqrtCost {
    fn cost(&self, w: u64) -> f64 {
        (w as f64).sqrt()
    }
    fn name(&self) -> &'static str {
        "sqrt"
    }
}

/// `f(w) = 1 + log2(w)`: an even flatter concave function (metadata-update
/// dominated cost). Concave + increasing + `f(0)=1>0` ⇒ subadditive.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogCost;

impl CostFn for LogCost {
    fn cost(&self, w: u64) -> f64 {
        1.0 + (w as f64).log2().max(0.0)
    }
    fn name(&self) -> &'static str {
        "log"
    }
}

/// An SSD/flash model: writing `w` cells programs `⌈w / block⌉` erase blocks
/// at `erase` cost each plus `program` per cell.
///
/// `⌈(x+y)/B⌉ <= ⌈x/B⌉ + ⌈y/B⌉` and sums of subadditive functions are
/// subadditive, so this is in `Fsa`. It is *not* concave (staircase), making
/// it a good test that the algorithms rely on subadditivity only.
#[derive(Debug, Clone, Copy)]
pub struct SsdErase {
    block: u64,
    erase: f64,
    program: f64,
}

impl SsdErase {
    /// `block` cells per erase block, `erase` cost per block erase,
    /// `program` cost per cell programmed.
    pub fn new(block: u64, erase: f64, program: f64) -> Self {
        assert!(block > 0);
        assert!(erase >= 0.0 && program >= 0.0 && erase + program > 0.0);
        SsdErase {
            block,
            erase,
            program,
        }
    }
}

impl CostFn for SsdErase {
    fn cost(&self, w: u64) -> f64 {
        let blocks = w.div_ceil(self.block);
        self.erase * blocks as f64 + self.program * w as f64
    }
    fn name(&self) -> &'static str {
        "ssd-erase"
    }
}

/// `f(w) = min(w, cap)`: linear until the transfer saturates some fixed
/// budget (e.g. a prefetch window), constant afterwards. Minimum of
/// subadditive functions is subadditive when both are monotone increasing
/// (here: `min(x+y,C) <= min(x,C)+min(y,C)` holds directly).
#[derive(Debug, Clone, Copy)]
pub struct Capped {
    cap: f64,
}

impl Capped {
    /// Linear up to `cap`, constant afterwards.
    pub fn new(cap: f64) -> Self {
        assert!(cap >= 1.0);
        Capped { cap }
    }
}

impl CostFn for Capped {
    fn cost(&self, w: u64) -> f64 {
        (w as f64).min(self.cap)
    }
    fn name(&self) -> &'static str {
        "capped"
    }
}

/// `f(w) = w²` — **deliberately superadditive**, i.e. *not* in `Fsa`.
///
/// The paper's guarantee is explicitly restricted to subadditive cost
/// functions; this function exists so tests and experiments can show the
/// competitive bound failing outside the class (a negative control).
#[derive(Debug, Clone, Copy, Default)]
pub struct Superlinear;

impl CostFn for Superlinear {
    fn cost(&self, w: u64) -> f64 {
        let w = w as f64;
        w * w
    }
    fn name(&self) -> &'static str {
        "quadratic(!Fsa)"
    }
    fn in_fsa(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_flat() {
        assert_eq!(Unit.cost(1), 1.0);
        assert_eq!(Unit.cost(1 << 40), 1.0);
    }

    #[test]
    fn linear_scales() {
        let f = Linear::per_cell(2.0);
        assert_eq!(f.cost(10), 20.0);
    }

    #[test]
    fn affine_has_fixed_component() {
        let f = Affine::disk(100.0, 1.0);
        assert_eq!(f.cost(1), 101.0);
        assert_eq!(f.cost(1000), 1100.0);
        // Seek dominates small objects: per-cell cost decreasing.
        assert!(f.cost(1) / 1.0 > f.cost(1000) / 1000.0);
    }

    #[test]
    fn ssd_staircase() {
        let f = SsdErase::new(4, 10.0, 1.0);
        assert_eq!(f.cost(1), 11.0);
        assert_eq!(f.cost(4), 14.0);
        assert_eq!(f.cost(5), 25.0); // second erase block
    }

    #[test]
    fn capped_saturates() {
        let f = Capped::new(8.0);
        assert_eq!(f.cost(4), 4.0);
        assert_eq!(f.cost(8), 8.0);
        assert_eq!(f.cost(100), 8.0);
    }

    #[test]
    fn superlinear_flags_itself() {
        assert!(!Superlinear.in_fsa());
        assert!(Unit.in_fsa());
        // And it really is superadditive: f(2) > 2·f(1).
        assert!(Superlinear.cost(2) > 2.0 * Superlinear.cost(1));
    }

    #[test]
    fn log_positive_at_one() {
        assert_eq!(LogCost.cost(1), 1.0);
        assert!(LogCost.cost(2) > LogCost.cost(1));
    }

    #[test]
    #[should_panic]
    fn linear_rejects_nonpositive_slope() {
        Linear::per_cell(0.0);
    }
}
