//! Classical no-move memory allocation over a coalescing free list.

use std::collections::{BTreeMap, HashMap};

use realloc_common::{Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

/// Hole-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitStrategy {
    /// Lowest-address hole that fits.
    FirstFit,
    /// Smallest hole that fits (ties to the lowest address).
    BestFit,
    /// First fitting hole at or after the previous allocation (wrapping).
    NextFit,
}

/// A classical memory allocator: once placed, objects never move, so holes
/// left by deletes can only be reused, never squeezed out. The footprint
/// competitive ratio is `Ω(log ∆)` in the worst case (Luby et al. 1996) —
/// the bound the paper's reallocators escape.
#[derive(Debug, Clone)]
pub struct FreeListAllocator {
    strategy: FitStrategy,
    /// Holes below `top`, offset-keyed, always coalesced.
    holes: BTreeMap<u64, u64>,
    allocated: HashMap<ObjectId, Extent>,
    /// End of the structure; everything at/after `top` is untouched space.
    top: u64,
    /// Next-fit rover.
    rover: u64,
    volume: u64,
    delta: u64,
}

impl FreeListAllocator {
    /// An empty allocator using the given hole-selection policy.
    pub fn new(strategy: FitStrategy) -> Self {
        FreeListAllocator {
            strategy,
            holes: BTreeMap::new(),
            allocated: HashMap::new(),
            top: 0,
            rover: 0,
            volume: 0,
            delta: 0,
        }
    }

    /// The hole-selection policy in use.
    pub fn strategy(&self) -> FitStrategy {
        self.strategy
    }

    /// Picks a hole for `size` per strategy; returns its offset.
    fn pick_hole(&self, size: u64) -> Option<u64> {
        match self.strategy {
            FitStrategy::FirstFit => self
                .holes
                .iter()
                .find(|(_, &len)| len >= size)
                .map(|(&off, _)| off),
            FitStrategy::BestFit => self
                .holes
                .iter()
                .filter(|(_, &len)| len >= size)
                .min_by_key(|(&off, &len)| (len, off))
                .map(|(&off, _)| off),
            FitStrategy::NextFit => self
                .holes
                .range(self.rover..)
                .find(|(_, &len)| len >= size)
                .map(|(&off, _)| off)
                .or_else(|| {
                    self.holes
                        .range(..self.rover)
                        .find(|(_, &len)| len >= size)
                        .map(|(&off, _)| off)
                }),
        }
    }

    /// Carves `size` cells from the hole at `off`.
    fn take_from_hole(&mut self, off: u64, size: u64) {
        let len = self.holes.remove(&off).expect("picked hole exists");
        if len > size {
            self.holes.insert(off + size, len - size);
        }
    }

    /// Inserts a hole and coalesces with neighbours; trims the top.
    fn insert_hole(&mut self, mut off: u64, mut len: u64) {
        // Merge with predecessor.
        if let Some((&p_off, &p_len)) = self.holes.range(..off).next_back() {
            if p_off + p_len == off {
                self.holes.remove(&p_off);
                off = p_off;
                len += p_len;
            }
        }
        // Merge with successor.
        if let Some(&s_len) = self.holes.get(&(off + len)) {
            self.holes.remove(&(off + len));
            len += s_len;
        }
        if off + len == self.top {
            // Trailing hole: the structure shrinks instead.
            self.top = off;
        } else {
            self.holes.insert(off, len);
        }
    }
}

impl Reallocator for FreeListAllocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let offset = match self.pick_hole(size) {
            Some(off) => {
                self.take_from_hole(off, size);
                off
            }
            None => {
                let off = self.top;
                self.top += size;
                off
            }
        };
        if self.strategy == FitStrategy::NextFit {
            self.rover = offset + size;
        }
        let ext = Extent::new(offset, size);
        self.allocated.insert(id, ext);
        self.volume += size;
        self.delta = self.delta.max(size);
        Ok(Outcome {
            ops: vec![StorageOp::Allocate { id, to: ext }],
            flushed: false,
            peak_structure_size: self.top,
            checkpoints: 0,
        })
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let ext = self
            .allocated
            .remove(&id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.volume -= ext.len;
        self.insert_hole(ext.offset, ext.len);
        Ok(Outcome {
            ops: vec![StorageOp::Free { id, at: ext }],
            flushed: false,
            peak_structure_size: self.top,
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.allocated.get(&id).copied()
    }

    fn live_volume(&self) -> u64 {
        self.volume
    }

    fn structure_size(&self) -> u64 {
        self.top
    }

    fn footprint(&self) -> u64 {
        self.top
    }

    fn max_object_size(&self) -> u64 {
        self.delta
    }

    fn name(&self) -> &'static str {
        match self.strategy {
            FitStrategy::FirstFit => "first-fit",
            FitStrategy::BestFit => "best-fit",
            FitStrategy::NextFit => "next-fit",
        }
    }

    fn live_count(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn sequential_allocation_is_compact() {
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        a.insert(id(1), 10).unwrap();
        a.insert(id(2), 20).unwrap();
        assert_eq!(a.extent_of(id(1)), Some(Extent::new(0, 10)));
        assert_eq!(a.extent_of(id(2)), Some(Extent::new(10, 20)));
        assert_eq!(a.footprint(), 30);
    }

    #[test]
    fn first_fit_reuses_lowest_hole() {
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        for n in 0..4 {
            a.insert(id(n), 10).unwrap();
        }
        a.delete(id(0)).unwrap();
        a.delete(id(2)).unwrap();
        a.insert(id(10), 8).unwrap();
        assert_eq!(a.extent_of(id(10)).unwrap().offset, 0);
    }

    #[test]
    fn best_fit_reuses_tightest_hole() {
        let mut a = FreeListAllocator::new(FitStrategy::BestFit);
        a.insert(id(0), 10).unwrap();
        a.insert(id(1), 5).unwrap();
        a.insert(id(2), 8).unwrap();
        a.insert(id(3), 5).unwrap();
        a.delete(id(0)).unwrap(); // hole [0,10)
        a.delete(id(2)).unwrap(); // hole [15,23)
        a.insert(id(10), 7).unwrap();
        assert_eq!(
            a.extent_of(id(10)).unwrap().offset,
            15,
            "chose the size-8 hole"
        );
    }

    #[test]
    fn next_fit_continues_from_rover() {
        let mut a = FreeListAllocator::new(FitStrategy::NextFit);
        for n in 0..6 {
            a.insert(id(n), 10).unwrap();
        }
        a.delete(id(0)).unwrap();
        a.delete(id(3)).unwrap();
        // Rover is at 60; wraps and finds hole at 0?  No: hole at 30 is
        // before rover, hole at 0 too; wrap finds the first from the start.
        a.insert(id(10), 10).unwrap();
        assert_eq!(a.extent_of(id(10)).unwrap().offset, 0);
        // Rover now 10: next allocation takes the hole at 30.
        a.insert(id(11), 10).unwrap();
        assert_eq!(a.extent_of(id(11)).unwrap().offset, 30);
    }

    #[test]
    fn holes_coalesce() {
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        for n in 0..3 {
            a.insert(id(n), 10).unwrap();
        }
        a.insert(id(9), 1).unwrap(); // guard so top doesn't shrink
        a.delete(id(0)).unwrap();
        a.delete(id(2)).unwrap();
        a.delete(id(1)).unwrap(); // merges all three into [0,30)
        a.insert(id(10), 30).unwrap();
        assert_eq!(a.extent_of(id(10)).unwrap().offset, 0);
    }

    #[test]
    fn trailing_delete_shrinks_footprint() {
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        a.insert(id(0), 10).unwrap();
        a.insert(id(1), 10).unwrap();
        a.delete(id(1)).unwrap();
        assert_eq!(a.footprint(), 10);
        a.delete(id(0)).unwrap();
        assert_eq!(a.footprint(), 0);
    }

    #[test]
    fn no_move_fragmentation_inflates_footprint() {
        // The phenomenon the paper's Figure 1 illustrates: holes that can
        // never be reused by bigger objects.
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        for n in 0..10 {
            a.insert(id(n), 1).unwrap();
        }
        for n in (0..10).step_by(2) {
            a.delete(id(n)).unwrap();
        }
        // Five 1-cell holes; a size-2 object fits none of them.
        a.insert(id(100), 2).unwrap();
        assert_eq!(a.extent_of(id(100)).unwrap().offset, 10);
        assert!(a.footprint() as f64 >= 2.0 * a.live_volume() as f64 * 0.85);
    }

    #[test]
    fn errors() {
        let mut a = FreeListAllocator::new(FitStrategy::FirstFit);
        a.insert(id(1), 4).unwrap();
        assert!(matches!(
            a.insert(id(1), 4),
            Err(ReallocError::DuplicateId(_))
        ));
        assert!(matches!(a.delete(id(2)), Err(ReallocError::UnknownId(_))));
        assert!(matches!(a.insert(id(3), 0), Err(ReallocError::ZeroSize)));
    }
}
