//! Knowlton's buddy system (1965) — the classical no-move allocator with
//! power-of-two blocks and buddy coalescing.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use realloc_common::{Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

/// A buddy allocator over a heap that doubles when exhausted. Blocks are
/// powers of two; objects are rounded up, so internal fragmentation alone
/// costs up to 2x. Objects never move.
#[derive(Debug, Clone, Default)]
pub struct BuddyAllocator {
    /// Free blocks per order: `free[k]` holds offsets of free `2^k` blocks.
    free: Vec<BTreeSet<u64>>,
    /// Heap size (power of two, 0 before first insert).
    heap: u64,
    allocated: HashMap<ObjectId, (Extent, u32)>, // placement + block order
    /// Multiset of allocated block end addresses (for O(log n) footprint).
    ends: BTreeMap<u64, usize>,
    volume: u64,
    delta: u64,
}

impl BuddyAllocator {
    /// An empty buddy heap.
    pub fn new() -> Self {
        BuddyAllocator::default()
    }

    fn order_of(size: u64) -> u32 {
        size.next_power_of_two().trailing_zeros()
    }

    fn ensure_order_capacity(&mut self, order: u32) {
        if self.free.len() <= order as usize {
            self.free.resize(order as usize + 1, BTreeSet::new());
        }
    }

    /// Grows the heap until a block of `order` exists.
    fn grow_until(&mut self, order: u32) {
        loop {
            if self.free.iter().skip(order as usize).any(|s| !s.is_empty()) {
                return;
            }
            if self.heap == 0 {
                self.heap = 1u64 << order;
                self.ensure_order_capacity(order);
                self.free[order as usize].insert(0);
            } else {
                // Doubling adds a free block the size of the old heap,
                // which may immediately coalesce with a fully-free old half.
                let k = self.heap.trailing_zeros();
                let old = self.heap;
                self.heap *= 2;
                self.ensure_order_capacity(k);
                self.coalesce(old, k);
            }
        }
    }

    /// Splits a free block of some order `>= order` down to `order`.
    fn carve(&mut self, order: u32) -> u64 {
        let from = (order as usize..self.free.len())
            .find(|&k| !self.free[k].is_empty())
            .expect("grow_until guaranteed a block");
        let off = *self.free[from].iter().next().expect("non-empty");
        self.free[from].remove(&off);
        let mut k = from as u32;
        while k > order {
            k -= 1;
            // Keep the low half, free the high half.
            self.free[k as usize].insert(off + (1u64 << k));
        }
        off
    }

    /// Coalesces the block at `off` of `order` with free buddies upward.
    fn coalesce(&mut self, mut off: u64, mut order: u32) {
        loop {
            let buddy = off ^ (1u64 << order);
            let next = order + 1;
            if (1u64 << next) > self.heap || !self.free[order as usize].remove(&buddy) {
                self.ensure_order_capacity(order);
                self.free[order as usize].insert(off);
                return;
            }
            off = off.min(buddy);
            order = next;
            self.ensure_order_capacity(order);
        }
    }
}

impl Reallocator for BuddyAllocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let order = Self::order_of(size);
        self.ensure_order_capacity(order);
        self.grow_until(order);
        let off = self.carve(order);
        let ext = Extent::new(off, size);
        self.allocated.insert(id, (ext, order));
        *self.ends.entry(off + (1u64 << order)).or_insert(0) += 1;
        self.volume += size;
        self.delta = self.delta.max(size);
        Ok(Outcome {
            ops: vec![StorageOp::Allocate { id, to: ext }],
            flushed: false,
            peak_structure_size: self.footprint(),
            checkpoints: 0,
        })
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let (ext, order) = self
            .allocated
            .remove(&id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.volume -= ext.len;
        let end = ext.offset + (1u64 << order);
        if let Some(n) = self.ends.get_mut(&end) {
            *n -= 1;
            if *n == 0 {
                self.ends.remove(&end);
            }
        }
        self.coalesce(ext.offset, order);
        Ok(Outcome {
            ops: vec![StorageOp::Free { id, at: ext }],
            flushed: false,
            peak_structure_size: self.footprint(),
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.allocated.get(&id).map(|&(e, _)| e)
    }

    fn live_volume(&self) -> u64 {
        self.volume
    }

    fn structure_size(&self) -> u64 {
        self.footprint()
    }

    fn footprint(&self) -> u64 {
        self.ends.keys().next_back().copied().unwrap_or(0)
    }

    fn max_object_size(&self) -> u64 {
        self.delta
    }

    fn name(&self) -> &'static str {
        "buddy"
    }

    fn live_count(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn allocates_power_of_two_blocks() {
        let mut a = BuddyAllocator::new();
        a.insert(id(1), 5).unwrap(); // block of 8
        a.insert(id(2), 8).unwrap(); // block of 8
        assert_eq!(a.extent_of(id(1)).unwrap().offset % 8, 0);
        assert_eq!(a.extent_of(id(2)).unwrap().offset % 8, 0);
        assert_ne!(
            a.extent_of(id(1)).unwrap().offset,
            a.extent_of(id(2)).unwrap().offset
        );
    }

    #[test]
    fn buddies_coalesce_for_reuse() {
        let mut a = BuddyAllocator::new();
        a.insert(id(1), 4).unwrap();
        a.insert(id(2), 4).unwrap();
        let f = a.footprint();
        a.delete(id(1)).unwrap();
        a.delete(id(2)).unwrap();
        // Coalesced back: a size-8 object fits in the same space.
        a.insert(id(3), 8).unwrap();
        assert!(a.footprint() <= f.max(8));
    }

    #[test]
    fn heap_doubles_as_needed() {
        let mut a = BuddyAllocator::new();
        for n in 0..20 {
            a.insert(id(n), 16).unwrap();
        }
        assert_eq!(a.live_count(), 20);
        // All placements disjoint.
        let mut extents: Vec<Extent> = (0..20).map(|n| a.extent_of(id(n)).unwrap()).collect();
        extents.sort_by_key(|e| e.offset);
        for w in extents.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
    }

    #[test]
    fn internal_fragmentation_inflates_footprint() {
        let mut a = BuddyAllocator::new();
        // Size 2^k + 1 wastes almost half of each block.
        for n in 0..8 {
            a.insert(id(n), 17).unwrap();
        }
        let ratio = a.footprint() as f64 / a.live_volume() as f64;
        assert!(
            ratio >= 1.5,
            "expected ≥1.5x internal fragmentation, got {ratio}"
        );
    }

    #[test]
    fn mixed_sizes_remain_disjoint_through_churn() {
        let mut a = BuddyAllocator::new();
        let mut live = Vec::new();
        for n in 0..200u64 {
            a.insert(id(n), 1 + (n * 13) % 60).unwrap();
            live.push(n);
            if n % 3 == 0 {
                let victim = live.remove((n as usize * 7) % live.len());
                a.delete(id(victim)).unwrap();
            }
        }
        let mut extents: Vec<Extent> = live.iter().map(|&n| a.extent_of(id(n)).unwrap()).collect();
        extents.sort_by_key(|e| e.offset);
        for w in extents.windows(2) {
            assert!(!w[0].overlaps(&w[1]), "{} overlaps {}", w[0], w[1]);
        }
    }
}
