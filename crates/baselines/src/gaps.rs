//! The size-class-gaps reallocator sketched in the paper's §2 intuition
//! (after Bender, Fekete, Kamphans, Schweer 2009, *Maintaining Arrays of
//! Contiguous Objects*).
//!
//! Objects are rounded up to power-of-two slots and grouped by ascending
//! size class; between class `i` and the next class there may be gap cells.
//! An insert with no gap available *displaces* the first object of the next
//! nonempty class and recursively reinserts it — a cascade touching at most
//! one object per class. Per insert that is `O(log ∆)` moves of
//! geometrically growing sizes:
//!
//! * under `f(w) = 1` the amortized cost is `O(1)`-ish (most inserts find a
//!   gap; cascades are rare and their per-class costs telescope);
//! * under `f(w) = w` each cascade costs `Θ(∆)` — i.e. `Θ(log ∆)` per unit
//!   inserted — which is exactly why the paper wants cost obliviousness.
//!
//! Deletes (not covered by the paper's sketch) are handled by swapping the
//! class's last object into the hole (one move, same class) and reclaiming
//! the vacated slot as gap; a global compaction rebuilds the layout dense
//! when gap cells exceed the live slot volume.

use std::collections::{HashMap, VecDeque};

use realloc_common::{Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

#[derive(Debug, Clone, Default)]
struct ClassRegion {
    /// Absolute start of the class's slot run.
    start: u64,
    /// Objects in slot order; always dense (no interior holes).
    slots: VecDeque<ObjectId>,
    /// Free cells between this class's last slot and the next class.
    gap_cells: u64,
}

impl ClassRegion {
    fn end(&self, class: u32) -> u64 {
        self.start + ((self.slots.len() as u64) << class)
    }
}

/// The size-class-gaps allocator. Good for unit-like cost functions,
/// logarithmically bad for linear ones.
#[derive(Debug, Clone, Default)]
pub struct SizeClassGapsAllocator {
    classes: Vec<ClassRegion>,
    /// id -> (class, actual size, absolute offset).
    index: HashMap<ObjectId, (u32, u64, u64)>,
    volume: u64,
    /// Σ over objects of their slot size (2^class).
    slot_volume: u64,
    delta: u64,
    compactions: u64,
}

impl SizeClassGapsAllocator {
    /// An empty structure.
    pub fn new() -> Self {
        SizeClassGapsAllocator::default()
    }

    /// Number of global compactions performed.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    fn slot_class(size: u64) -> u32 {
        size.next_power_of_two().trailing_zeros()
    }

    fn ensure_class(&mut self, k: u32) {
        if self.classes.len() <= k as usize {
            let end = self.total_space();
            let old_len = self.classes.len();
            self.classes
                .resize_with(k as usize + 1, ClassRegion::default);
            for c in &mut self.classes[old_len..] {
                c.start = end;
            }
        }
    }

    fn total_space(&self) -> u64 {
        self.classes
            .iter()
            .enumerate()
            .next_back()
            .map(|(k, c)| c.end(k as u32) + c.gap_cells)
            .unwrap_or(0)
    }

    /// Folds the gap cells of empty classes in `(k, next_nonempty)` into
    /// class `k`'s gap — a pure accounting relabel (the cells are physically
    /// contiguous) — and returns the next nonempty class, if any.
    fn relabel_gaps(&mut self, k: u32) -> Option<u32> {
        let mut next = None;
        let mut absorbed = 0;
        for j in (k as usize + 1)..self.classes.len() {
            if self.classes[j].slots.is_empty() {
                absorbed += self.classes[j].gap_cells;
                self.classes[j].gap_cells = 0;
            } else {
                next = Some(j as u32);
                break;
            }
        }
        self.classes[k as usize].gap_cells += absorbed;
        // Keep empty classes' starts consistent with the invariant
        // start_{j+1} = start_j + slots·2^j + gap_j.
        for j in (k as usize + 1)..self.classes.len() {
            let prev_end = self.classes[j - 1].end(j as u32 - 1) + self.classes[j - 1].gap_cells;
            if self.classes[j].slots.is_empty() {
                self.classes[j].start = prev_end;
            } else {
                break;
            }
        }
        next
    }

    /// Places `id` (actual `size`) into class `k`, cascading displacements
    /// upward. The deepest (largest-class) displacement is pushed onto
    /// `chain` first, so the chain is already in the top-down order that
    /// vacates every move's target before it is written.
    fn cascade(
        &mut self,
        k: u32,
        id: ObjectId,
        size: u64,
        chain: &mut Vec<(ObjectId, Extent, u64)>,
    ) {
        let slot = 1u64 << k;
        let next = self.relabel_gaps(k);
        let region_end = self.classes[k as usize].end(k);

        if self.classes[k as usize].gap_cells >= slot {
            // Gap available: place at the class's end.
            self.classes[k as usize].gap_cells -= slot;
        } else if let Some(j) = next {
            // Displace the first object of the next nonempty class.
            let jslot = 1u64 << j;
            let victim = self.classes[j as usize]
                .slots
                .pop_front()
                .expect("nonempty");
            let (vclass, vsize, voffset) = self.index[&victim];
            debug_assert_eq!(vclass, j);
            debug_assert_eq!(voffset, self.classes[j as usize].start);
            self.classes[j as usize].start += jslot;
            self.classes[k as usize].gap_cells += jslot;
            self.classes[k as usize].gap_cells -= slot;
            // Recursively reinsert the victim into its own class (it keeps
            // its class; only its position changes).
            self.cascade(j, victim, vsize, chain);
            chain.push((victim, Extent::new(voffset, vsize), self.index[&victim].2));
        } else {
            // Largest nonempty class: extend the structure.
            let have = self.classes[k as usize].gap_cells;
            self.classes[k as usize].gap_cells = have.saturating_sub(slot);
        }

        self.classes[k as usize].slots.push_back(id);
        self.index.insert(id, (k, size, region_end));
        self.fix_starts_above(k);
    }

    /// Restores `start` consistency for classes above `k` after class `k`
    /// changed extent.
    fn fix_starts_above(&mut self, k: u32) {
        for j in (k as usize + 1)..self.classes.len() {
            let prev_end = self.classes[j - 1].end(j as u32 - 1) + self.classes[j - 1].gap_cells;
            if self.classes[j].slots.is_empty() {
                self.classes[j].start = prev_end;
            } else {
                debug_assert!(self.classes[j].start >= prev_end);
                break;
            }
        }
    }

    /// Rebuilds the layout dense (zero gaps), emitting the necessary moves.
    fn compact(&mut self, ops: &mut Vec<StorageOp>) {
        let mut cursor = 0u64;
        for k in 0..self.classes.len() {
            let slot = 1u64 << k;
            let ids: Vec<ObjectId> = self.classes[k].slots.iter().copied().collect();
            self.classes[k].start = cursor;
            self.classes[k].gap_cells = 0;
            for id in ids {
                let (class, size, offset) = self.index[&id];
                debug_assert_eq!(class as usize, k);
                if offset != cursor {
                    ops.push(StorageOp::Move {
                        id,
                        from: Extent::new(offset, size),
                        to: Extent::new(cursor, size),
                    });
                    self.index.insert(id, (class, size, cursor));
                }
                cursor += slot;
            }
        }
        self.compactions += 1;
    }
}

impl Reallocator for SizeClassGapsAllocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.index.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let k = Self::slot_class(size);
        self.ensure_class(k);

        let mut chain = Vec::new();
        self.cascade(k, id, size, &mut chain);
        // `chain` is already top-down (the deepest recursion pushes first),
        // which is the order that vacates every target before it is written.
        let mut ops: Vec<StorageOp> = chain
            .iter()
            .map(|&(oid, from, to_off)| StorageOp::Move {
                id: oid,
                from,
                to: Extent::new(to_off, from.len),
            })
            .collect();
        ops.push(StorageOp::Allocate {
            id,
            to: Extent::new(self.index[&id].2, size),
        });

        self.volume += size;
        self.slot_volume += 1u64 << k;
        self.delta = self.delta.max(size);
        Ok(Outcome {
            flushed: !chain.is_empty(),
            peak_structure_size: self.total_space(),
            checkpoints: 0,
            ops,
        })
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let (k, size, offset) = self.index.remove(&id).ok_or(ReallocError::UnknownId(id))?;
        let slot = 1u64 << k;
        let region = &mut self.classes[k as usize];
        let idx = ((offset - region.start) / slot) as usize;
        let last = region.slots.len() - 1;

        let mut ops = vec![StorageOp::Free {
            id,
            at: Extent::new(offset, size),
        }];
        if idx != last {
            // Swap the class's last object into the hole: one same-class move.
            let mover = *region.slots.back().expect("nonempty");
            region.slots[idx] = mover;
            region.slots.pop_back();
            let (mclass, msize, moffset) = self.index[&mover];
            ops.push(StorageOp::Move {
                id: mover,
                from: Extent::new(moffset, msize),
                to: Extent::new(offset, msize),
            });
            self.index.insert(mover, (mclass, msize, offset));
        } else {
            region.slots.pop_back();
        }
        region.gap_cells += slot;
        self.volume -= size;
        self.slot_volume -= slot;
        self.fix_starts_above(k);

        let peak = self.total_space();
        let compacted = self.slot_volume > 0 && self.total_space() > 2 * self.slot_volume;
        if compacted {
            self.compact(&mut ops);
        } else if self.slot_volume == 0 {
            self.compact(&mut Vec::new()); // resets starts/gaps to zero
        }
        Ok(Outcome {
            ops,
            flushed: compacted,
            peak_structure_size: peak,
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.index
            .get(&id)
            .map(|&(_, size, offset)| Extent::new(offset, size))
    }

    fn live_volume(&self) -> u64 {
        self.volume
    }

    fn structure_size(&self) -> u64 {
        self.total_space()
    }

    fn footprint(&self) -> u64 {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.slots.is_empty())
            .map(|(k, c)| c.end(k as u32))
            .max()
            .unwrap_or(0)
    }

    fn max_object_size(&self) -> u64 {
        self.delta
    }

    fn name(&self) -> &'static str {
        "size-class-gaps"
    }

    fn live_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    /// Replays ops, checking chained extents and non-clobbering.
    fn check_stream(live: &mut HashMap<ObjectId, Extent>, ops: &[StorageOp]) {
        for op in ops {
            match *op {
                StorageOp::Allocate { id, to } => {
                    for (&o, &e) in live.iter() {
                        assert!(!e.overlaps(&to), "alloc {id} at {to} clobbers {o} at {e}");
                    }
                    live.insert(id, to);
                }
                StorageOp::Move { id, from, to } => {
                    assert_eq!(live[&id], from, "{id} from-extent mismatch");
                    live.remove(&id);
                    for (&o, &e) in live.iter() {
                        assert!(!e.overlaps(&to), "move {id} to {to} clobbers {o} at {e}");
                    }
                    live.insert(id, to);
                }
                StorageOp::Free { id, at } => {
                    assert_eq!(live.remove(&id), Some(at));
                }
                StorageOp::CheckpointBarrier => {}
            }
        }
    }

    #[test]
    fn classes_laid_out_ascending() {
        let mut a = SizeClassGapsAllocator::new();
        a.insert(id(1), 16).unwrap();
        a.insert(id(2), 2).unwrap();
        a.insert(id(3), 8).unwrap();
        let e1 = a.extent_of(id(1)).unwrap();
        let e2 = a.extent_of(id(2)).unwrap();
        let e3 = a.extent_of(id(3)).unwrap();
        assert!(
            e2.offset < e3.offset && e3.offset < e1.offset,
            "{e2} {e3} {e1}"
        );
    }

    #[test]
    fn cascade_displaces_one_object_per_class() {
        let mut a = SizeClassGapsAllocator::new();
        let mut live = HashMap::new();
        // Seed classes 0..=4 (one object each, no gaps after compact state).
        for (n, size) in [(0u64, 16u64), (1, 8), (2, 4), (3, 2), (4, 1)] {
            let out = a.insert(id(n), size).unwrap();
            check_stream(&mut live, &out.ops);
        }
        // Seeding leaves a one-cell gap after class 0; the first extra unit
        // insert consumes it, the second must cascade.
        let out = a.insert(id(9), 1).unwrap();
        check_stream(&mut live, &out.ops);
        let out = a.insert(id(10), 1).unwrap();
        check_stream(&mut live, &out.ops);
        assert!(out.flushed, "expected a cascade");
        // At most one displacement per class above class 0.
        assert!(out.move_count() <= 5, "{} moves", out.move_count());
        // All objects still addressable and disjoint.
        let mut extents: Vec<Extent> = live.values().copied().collect();
        extents.sort_by_key(|e| e.offset);
        for w in extents.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
    }

    #[test]
    fn cascade_cost_scales_with_delta_under_linear_f() {
        // The paper's point: a unit insert can move Θ(∆) volume.
        let run = |top_class: u32| -> u64 {
            let mut a = SizeClassGapsAllocator::new();
            for k in 0..=top_class {
                a.insert(id(k as u64), 1u64 << k).unwrap();
            }
            // Unit inserts; measure the worst moved volume.
            let mut worst = 0;
            for n in 0..50u64 {
                let out = a.insert(id(100 + n), 1).unwrap();
                worst = worst.max(out.moved_volume());
            }
            worst
        };
        let small = run(4);
        let large = run(8);
        assert!(
            large >= 2 * small,
            "cascade volume should grow with ∆: {small} vs {large}"
        );
    }

    #[test]
    fn delete_swaps_last_into_hole() {
        let mut a = SizeClassGapsAllocator::new();
        let mut live = HashMap::new();
        for n in 0..5u64 {
            let out = a.insert(id(n), 4).unwrap();
            check_stream(&mut live, &out.ops);
        }
        let first = a.extent_of(id(0)).unwrap();
        let out = a.delete(id(0)).unwrap();
        check_stream(&mut live, &out.ops);
        assert_eq!(out.move_count(), 1);
        // The last object now sits where object 0 was.
        assert_eq!(a.extent_of(id(4)).unwrap(), first);
    }

    #[test]
    fn footprint_stays_bounded_through_churn() {
        let mut a = SizeClassGapsAllocator::new();
        let mut live = HashMap::new();
        let mut alive = Vec::new();
        for n in 0..400u64 {
            let out = a.insert(id(n), 1 + (n * 7) % 50).unwrap();
            check_stream(&mut live, &out.ops);
            alive.push(n);
            if n % 2 == 1 {
                let v = alive.remove(((n as usize) * 13) % alive.len());
                let out = a.delete(id(v)).unwrap();
                check_stream(&mut live, &out.ops);
            }
            // Slot rounding ≤ 2x, gaps ≤ slot volume (compaction) ⇒ ≤ 4x+.
            if a.live_volume() > 0 {
                let ratio = a.structure_size() as f64 / a.live_volume() as f64;
                assert!(ratio <= 4.5, "footprint ratio {ratio}");
            }
        }
    }

    #[test]
    fn empties_then_refills() {
        let mut a = SizeClassGapsAllocator::new();
        for n in 0..10u64 {
            a.insert(id(n), 8).unwrap();
        }
        for n in 0..10u64 {
            a.delete(id(n)).unwrap();
        }
        assert_eq!(a.live_volume(), 0);
        assert_eq!(a.footprint(), 0);
        a.insert(id(100), 3).unwrap();
        assert_eq!(a.extent_of(id(100)).unwrap().offset, 0);
    }
}
