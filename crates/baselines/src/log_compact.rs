//! The logging-and-compacting reallocator from the paper's §2 intuition.
//!
//! Allocate left to right; deletes leave holes; when a deallocation pushes
//! the footprint to `2·V`, compact everything. `(2, 2)`-competitive when
//! the cost function is linear — the `V` cells of reallocation are paid for
//! by the `V` cells deleted since the last compaction — but **terrible**
//! for unit cost: deleting `Θ(V/∆)` large objects forces a compaction that
//! moves every small object, i.e. `Θ(∆)` amortized unit cost per delete.
//! This asymmetry is half of the paper's case for cost obliviousness (the
//! size-class-gaps strategy is the other half).

use std::collections::HashMap;

use realloc_common::{Extent, ObjectId, Outcome, ReallocError, Reallocator, StorageOp};

/// Logging-and-compacting storage reallocator.
#[derive(Debug, Clone, Default)]
pub struct LogCompactAllocator {
    allocated: HashMap<ObjectId, Extent>,
    /// Log cursor: next allocation offset (= footprint).
    top: u64,
    volume: u64,
    delta: u64,
    compactions: u64,
}

impl LogCompactAllocator {
    /// An empty log.
    pub fn new() -> Self {
        LogCompactAllocator::default()
    }

    /// Number of full compactions performed.
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// Packs every live object to the front, in address order.
    fn compact(&mut self, ops: &mut Vec<StorageOp>) {
        let mut order: Vec<(ObjectId, Extent)> =
            self.allocated.iter().map(|(&id, &e)| (id, e)).collect();
        order.sort_unstable_by_key(|(_, e)| e.offset);
        let mut cursor = 0;
        for (id, from) in order {
            if from.offset != cursor {
                let to = Extent::new(cursor, from.len);
                ops.push(StorageOp::Move { id, from, to });
                self.allocated.insert(id, to);
            }
            cursor += from.len;
        }
        self.top = cursor;
        self.compactions += 1;
    }
}

impl Reallocator for LogCompactAllocator {
    fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
        if size == 0 {
            return Err(ReallocError::ZeroSize);
        }
        if self.allocated.contains_key(&id) {
            return Err(ReallocError::DuplicateId(id));
        }
        let ext = Extent::new(self.top, size);
        self.top += size;
        self.allocated.insert(id, ext);
        self.volume += size;
        self.delta = self.delta.max(size);
        Ok(Outcome {
            ops: vec![StorageOp::Allocate { id, to: ext }],
            flushed: false,
            peak_structure_size: self.top,
            checkpoints: 0,
        })
    }

    fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
        let ext = self
            .allocated
            .remove(&id)
            .ok_or(ReallocError::UnknownId(id))?;
        self.volume -= ext.len;
        let mut ops = vec![StorageOp::Free { id, at: ext }];
        let peak = self.top;
        // Trailing hole: the log shrinks for free (interior holes wait for
        // a compaction).
        if ext.end() == self.top {
            self.top = self.allocated.values().map(Extent::end).max().unwrap_or(0);
        }
        let compacted = self.volume > 0 && self.top >= 2 * self.volume;
        if compacted {
            self.compact(&mut ops);
        }
        Ok(Outcome {
            ops,
            flushed: compacted,
            peak_structure_size: peak,
            checkpoints: 0,
        })
    }

    fn extent_of(&self, id: ObjectId) -> Option<Extent> {
        self.allocated.get(&id).copied()
    }

    fn live_volume(&self) -> u64 {
        self.volume
    }

    fn structure_size(&self) -> u64 {
        self.top
    }

    fn footprint(&self) -> u64 {
        self.top
    }

    fn max_object_size(&self) -> u64 {
        self.delta
    }

    fn name(&self) -> &'static str {
        "log-compact"
    }

    fn live_count(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn appends_at_the_end() {
        let mut a = LogCompactAllocator::new();
        a.insert(id(1), 10).unwrap();
        a.insert(id(2), 5).unwrap();
        assert_eq!(a.extent_of(id(2)).unwrap().offset, 10);
        assert_eq!(a.footprint(), 15);
    }

    #[test]
    fn footprint_never_exceeds_twice_volume_after_requests() {
        let mut a = LogCompactAllocator::new();
        for n in 0..100 {
            a.insert(id(n), 1 + n % 20).unwrap();
        }
        for n in (0..100).step_by(2) {
            a.delete(id(n)).unwrap();
            assert!(
                a.footprint() <= 2 * a.live_volume().max(1),
                "footprint {} > 2V {}",
                a.footprint(),
                a.live_volume()
            );
        }
    }

    #[test]
    fn compaction_moves_every_survivor() {
        let mut a = LogCompactAllocator::new();
        a.insert(id(0), 50).unwrap();
        for n in 1..=10 {
            a.insert(id(n), 1).unwrap();
        }
        // Deleting the big head forces footprint 60 vs volume 10 → compact.
        let out = a.delete(id(0)).unwrap();
        assert!(out.flushed, "compaction expected");
        assert_eq!(out.move_count(), 10, "all small objects moved");
        assert_eq!(a.footprint(), 10);
    }

    #[test]
    fn trailing_deletes_are_free() {
        let mut a = LogCompactAllocator::new();
        a.insert(id(0), 10).unwrap();
        a.insert(id(1), 10).unwrap();
        let out = a.delete(id(1)).unwrap();
        assert_eq!(out.move_count(), 0);
        assert_eq!(a.footprint(), 10);
    }

    #[test]
    fn unit_cost_disaster_shape() {
        // The §2 intuition: with many size-1 survivors and a FIFO of large
        // objects churning interior holes, every compaction drags all the
        // small survivors along.
        // Interleave: each ∆-sized object sits *below* a batch of small
        // survivors, so deleting the large objects leaves holes that only a
        // compaction dragging the smalls can reclaim.
        let mut a = LogCompactAllocator::new();
        let rounds = 4u64;
        for r in 0..rounds {
            a.insert(id(1000 + r), 64).unwrap();
            for n in 0..64 {
                a.insert(id(r * 64 + n), 1).unwrap();
            }
        }
        let mut moves = 0usize;
        for r in 0..rounds {
            let out = a.delete(id(1000 + r)).unwrap();
            moves += out.move_count();
        }
        // The compaction drags (almost) every small object: Θ(∆) unit cost
        // per large delete.
        assert!(
            moves as u64 >= rounds * 64 / 2,
            "expected the compaction to drag the small survivors, saw {moves} moves"
        );
    }
}
