#![warn(missing_docs)]
//! Baseline allocators the paper compares against (explicitly or via its
//! related-work discussion), all implementing the same
//! [`realloc_common::Reallocator`] trait as the paper's
//! algorithms so harnesses can drive them interchangeably.
//!
//! * [`FreeListAllocator`] — classical *memory allocation* (objects never
//!   move): first-fit, best-fit, next-fit placement. Subject to the
//!   logarithmic footprint lower bound of Robson / Luby et al. that
//!   motivates reallocation.
//! * [`BuddyAllocator`] — Knowlton's buddy system, also no-move.
//! * [`LogCompactAllocator`] — the logging-and-compacting strategy from the
//!   paper's §2 intuition: `(2, 2)`-competitive for linear cost, but
//!   `Θ(∆)` amortized per delete under unit cost.
//! * [`SizeClassGapsAllocator`] — the constant-reallocation-cost strategy
//!   sketched from Bender et al. 2009: ascending size classes with
//!   inter-class gaps and cascading displacement. `O(1)` amortized moves
//!   per insert, but `Θ(log ∆)` competitive under linear cost.
//!
//! The last two are *cost-function-specific*: each is good for exactly one
//! end of the subadditive spectrum, which is the paper's motivation for a
//! cost-oblivious algorithm.

pub mod buddy;
pub mod free_list;
pub mod gaps;
pub mod log_compact;

pub use buddy::BuddyAllocator;
pub use free_list::{FitStrategy, FreeListAllocator};
pub use gaps::SizeClassGapsAllocator;
pub use log_compact::LogCompactAllocator;

use realloc_common::Reallocator;

// Baselines ride in the sharded serving layer too; keep them `Send`.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<BuddyAllocator>();
    assert_send::<FreeListAllocator>();
    assert_send::<SizeClassGapsAllocator>();
    assert_send::<LogCompactAllocator>();
};

/// Constructs the full comparison roster (paper's algorithms excluded),
/// used by experiment tables.
pub fn baseline_roster() -> Vec<Box<dyn Reallocator>> {
    vec![
        Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
        Box::new(FreeListAllocator::new(FitStrategy::BestFit)),
        Box::new(FreeListAllocator::new(FitStrategy::NextFit)),
        Box::new(BuddyAllocator::new()),
        Box::new(LogCompactAllocator::new()),
        Box::new(SizeClassGapsAllocator::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_distinct_names() {
        let roster = baseline_roster();
        let mut names: Vec<_> = roster.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), roster.len());
    }
}
