//! Deterministic object-id → shard routing.

use realloc_common::ObjectId;

/// The shard in `0..shards` that owns `id`.
///
/// A SplitMix64 finalizer over the raw id, reduced by Lemire's multiply-shift
/// trick. Two properties matter to callers:
///
/// * **Stability** — the map is a pure function of `(id, shards)`, fixed for
///   all time (no per-process seed, unlike `DefaultHasher`), so replaying a
///   workload yields byte-identical per-shard streams across runs and
///   builds. The determinism tests rely on this.
/// * **Diffusion** — sequential ids (the common case: [`workload_gen`]
///   generators hand them out in order) spread uniformly, so shard volumes
///   stay balanced and the aggregate `(1+ε)Σ V_i` bound is tight in
///   practice, not just in the worst case.
///
/// # Panics
/// Panics if `shards` is zero.
#[inline]
pub fn shard_of(id: ObjectId, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Multiply-shift maps the hash to [0, shards) without modulo bias.
    (((z as u128) * (shards as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_stable_across_calls() {
        for raw in [0u64, 1, 7, u64::MAX] {
            assert_eq!(shard_of(ObjectId(raw), 8), shard_of(ObjectId(raw), 8));
        }
    }

    #[test]
    fn one_shard_takes_everything() {
        for raw in 0..100 {
            assert_eq!(shard_of(ObjectId(raw), 1), 0);
        }
    }

    #[test]
    fn sequential_ids_balance_across_shards() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for raw in 0..8_000u64 {
            counts[shard_of(ObjectId(raw), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (800..1_200).contains(&c),
                "shard {s} got {c} of 8000 ids (expected ~1000)"
            );
        }
    }

    #[test]
    fn results_always_in_range() {
        for shards in 1..=9 {
            for raw in (0..1_000).chain([u64::MAX - 1, u64::MAX]) {
                assert!(shard_of(ObjectId(raw), shards) < shards);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        shard_of(ObjectId(1), 0);
    }
}
