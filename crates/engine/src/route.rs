//! Deterministic object-id → shard routing — **deprecated re-export shim**.
//!
//! The hash itself moved to [`realloc_common::router`] when routing became
//! a pluggable layer — the workload splitter and the router implementations
//! both need it without depending on this crate. This module only remains
//! so `realloc_engine::route::shard_of` keeps resolving for one deprecation
//! cycle; the crate root now re-exports [`shard_of`] straight from
//! `realloc_common`, and no code inside the workspace goes through this
//! path anymore; its frozen-mapping lock tests already moved to
//! `realloc-common` beside the hash they lock. Removal plan (also recorded
//! in `ARCHITECTURE.md`): the module is deleted in the PR after next.
//!
//! [`shard_of`]: realloc_common::router::shard_of

pub use realloc_common::router::shard_of;
