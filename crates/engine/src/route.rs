//! Deterministic object-id → shard routing (re-exported).
//!
//! The hash itself moved to [`realloc_common::router`] when routing became
//! a pluggable layer — the workload splitter and the router implementations
//! both need it without depending on this crate. This module remains so
//! `realloc_engine::route::shard_of` (and the crate-root re-export) keep
//! working; see [`crate::router`] for the full routing layer.

pub use realloc_common::router::shard_of;

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_common::ObjectId;

    #[test]
    fn routes_are_stable_across_calls() {
        for raw in [0u64, 1, 7, u64::MAX] {
            assert_eq!(shard_of(ObjectId(raw), 8), shard_of(ObjectId(raw), 8));
        }
    }

    #[test]
    fn one_shard_takes_everything() {
        for raw in 0..100 {
            assert_eq!(shard_of(ObjectId(raw), 1), 0);
        }
    }

    #[test]
    fn sequential_ids_balance_across_shards() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for raw in 0..8_000u64 {
            counts[shard_of(ObjectId(raw), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (800..1_200).contains(&c),
                "shard {s} got {c} of 8000 ids (expected ~1000)"
            );
        }
    }

    #[test]
    fn results_always_in_range() {
        for shards in 1..=9 {
            for raw in (0..1_000).chain([u64::MAX - 1, u64::MAX]) {
                assert!(shard_of(ObjectId(raw), shards) < shards);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        shard_of(ObjectId(1), 0);
    }

    /// The exact mapping is frozen: changing the hash silently re-homes
    /// every stored object of every deployed engine, so lock a few values.
    #[test]
    fn mapping_is_frozen() {
        assert_eq!(shard_of(ObjectId(0), 4), shard_of(ObjectId(0), 4));
        let snapshot: Vec<usize> = (0..16).map(|raw| shard_of(ObjectId(raw), 4)).collect();
        assert_eq!(
            snapshot,
            vec![3, 2, 2, 0, 1, 1, 2, 1, 2, 2, 0, 1, 2, 3, 1, 2]
        );
    }
}
