//! Per-shard storage substrates: real byte-carrying replay behind the
//! sharded engine.
//!
//! Without a substrate the engine's workers do *accounting*: a request's
//! [`Outcome`](realloc_common::Outcome) updates the ledger and is discarded,
//! so the `storage-sim` data-integrity rules (checksummed object bytes,
//! non-overlapping placements, no lost writes) are only ever checked on the
//! unsharded `run_workload` path. A [`SubstrateConfig`] closes that gap:
//! every worker owns a [`DataStore`] over a disjoint
//! [`AddressWindow`] (shard *i*'s slice of one global device) and replays
//! every physical op it performs — inserts write the object's pattern
//! bytes, deletes free, buffer flushes perform their scheduled copies, and
//! a cross-shard migration becomes a genuine cross-address-space transfer
//! whose bytes are checksummed on arrival. A corrupted or truncated
//! transfer fails the receiving shard's ack, which drives the engine's
//! existing abort-after-pin path: completed transfers stay pinned, the
//! rest of the plan stays home, and routing still matches physical
//! ownership.
//!
//! Verification (extent agreement with the shard's reallocator, plus a
//! checksum pass over every live object's bytes) runs at the configured
//! [`VerifyCadence`]; overlap and address-window containment are enforced
//! by the store on every single write regardless of cadence.

use realloc_common::{Extent, ObjectId, StorageOp};
use storage_sim::{checksum, AddressWindow, DataStore, Mode};

/// How often a substrate-backed shard re-verifies its full state (extent
/// agreement with the reallocator + a checksum pass over every live
/// object's bytes — an `O(V)` scan).
///
/// Per-write rule checking (overlap, freed-space, window containment) is
/// *always* on; the cadence only controls the full scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyCadence {
    /// Verify only at shutdown (and on an explicit
    /// [`Engine::verify_substrate`](crate::Engine::verify_substrate)):
    /// one `O(V)` scan per shard for the whole run — cheapest, but a
    /// divergence is only pinpointed to "somewhere before the end".
    Final,
    /// Additionally verify at every `quiesce`/`snapshot` barrier: one
    /// `O(V)` scan per shard per barrier. The default — barriers are
    /// already fleet-wide synchronization points, so the scan hides in
    /// their shadow.
    #[default]
    Quiesce,
    /// Additionally verify after every served request batch: one `O(V)`
    /// scan per shard per channel batch. Orders of magnitude more scans
    /// than `Quiesce` — a debugging cadence that localizes a divergence to
    /// one batch, not a serving configuration.
    Batch,
}

impl VerifyCadence {
    /// Whether this cadence verifies at quiesce/snapshot barriers.
    pub fn at_barriers(self) -> bool {
        matches!(self, VerifyCadence::Quiesce | VerifyCadence::Batch)
    }

    /// Whether this cadence verifies after every served batch.
    pub fn at_batches(self) -> bool {
        matches!(self, VerifyCadence::Batch)
    }
}

impl std::fmt::Display for VerifyCadence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerifyCadence::Final => "final",
            VerifyCadence::Quiesce => "quiesce",
            VerifyCadence::Batch => "batch",
        })
    }
}

/// Declarative factory for per-shard substrates: how each worker's
/// [`DataStore`] is built (shard *i* gets the address window
/// `[i·window_span, (i+1)·window_span)`) and how often it fully
/// re-verifies. Install it with
/// [`EngineConfig::substrate`](crate::EngineConfig) (see
/// [`EngineConfig::with_substrate`](crate::EngineConfig::with_substrate)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstrateConfig {
    /// Rule mode every shard store enforces. [`Mode::Relaxed`] (memmove
    /// semantics) suits any variant; [`Mode::Strict`] (database rules)
    /// suits the §3 checkpointed/deamortized variants — the §2 amortized
    /// variant legitimately violates strict rules, which is the reason §3
    /// exists.
    pub mode: Mode,
    /// Cells in each shard's address window. A shard whose structure
    /// (including transient staging space) outgrows its window fails
    /// verification rather than silently bleeding into a neighbour's
    /// addresses.
    pub window_span: u64,
    /// When each shard runs its full extent + byte verification scan.
    pub verify: VerifyCadence,
}

impl Default for SubstrateConfig {
    /// Relaxed rules, a `2^32`-cell window per shard, verification at
    /// every barrier.
    fn default() -> Self {
        SubstrateConfig {
            mode: Mode::Relaxed,
            window_span: 1 << 32,
            verify: VerifyCadence::Quiesce,
        }
    }
}

impl SubstrateConfig {
    /// The default configuration (relaxed rules — valid for every
    /// variant).
    pub fn relaxed() -> Self {
        SubstrateConfig::default()
    }

    /// The default configuration under the full §3.1 database rules
    /// (nonoverlapping moves, freed-space rule). Only the checkpointed and
    /// deamortized variants obey them.
    pub fn strict() -> Self {
        SubstrateConfig {
            mode: Mode::Strict,
            ..SubstrateConfig::default()
        }
    }

    /// This configuration with the given verification cadence.
    pub fn cadence(mut self, verify: VerifyCadence) -> Self {
        self.verify = verify;
        self
    }

    /// This configuration with `span`-cell per-shard windows.
    pub fn window_span(mut self, span: u64) -> Self {
        self.window_span = span;
        self
    }

    /// Builds shard `shard`'s substrate — its store owns the `shard`-th
    /// disjoint window of the global device.
    pub(crate) fn build(&self, shard: usize) -> ShardSubstrate {
        ShardSubstrate {
            store: DataStore::windowed(
                self.mode,
                AddressWindow::for_shard(shard, self.window_span),
            ),
            verify: self.verify,
            bytes_written: 0,
            bytes_migrated_in: 0,
            bytes_migrated_out: 0,
            verifications: 0,
        }
    }
}

/// One shard's substrate verification summary, as returned by
/// [`Engine::verify_substrate`](crate::Engine::verify_substrate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateReport {
    /// The shard that verified.
    pub shard: usize,
    /// The address window its store owns.
    pub window: AddressWindow,
    /// Live objects whose extents and bytes were checked.
    pub objects: usize,
    /// Total volume of those objects, in cells.
    pub bytes: u64,
    /// The first verification failure, if any (also surfaced as
    /// [`EngineError::Substrate`](crate::EngineError::Substrate)).
    pub error: Option<String>,
}

/// One shard's live objects with their physical bytes, sorted by id — the
/// per-shard element of
/// [`Engine::substrate_contents`](crate::Engine::substrate_contents).
pub type ShardBytes = Vec<(ObjectId, Vec<u8>)>;

/// The payload of one cross-shard transfer: the object's bytes as read
/// from the source shard's store, plus the checksum the source computed
/// over them. The receiving store re-checksums on arrival
/// ([`DataStore::adopt`]), so any in-flight damage fails the ack.
#[derive(Debug, Clone)]
pub(crate) struct TransferPayload {
    pub bytes: Vec<u8>,
    pub checksum: u64,
}

/// One object handed from a source shard to a target shard: the migrate-out
/// ack (`id` + released size), carrying the physical bytes when the fleet
/// is substrate-backed.
#[derive(Debug, Clone)]
pub(crate) struct Transfer {
    pub id: ObjectId,
    pub size: u64,
    /// Globally unique transfer sequence number, assigned by the engine
    /// when the plan is dispatched. The WAL journals it on both ends
    /// (`MigrateOut` on the source, `MigrateIn` + `RouteFlip` on the
    /// target), so recovery can pair the halves of a transfer that a crash
    /// cut in two.
    pub xfer: u64,
    /// `Some` iff the source shard runs a substrate.
    pub payload: Option<TransferPayload>,
}

/// A worker's substrate state: the windowed byte store plus the physical
/// I/O counters that feed [`ShardStats`](crate::ShardStats).
pub(crate) struct ShardSubstrate {
    store: DataStore,
    verify: VerifyCadence,
    pub bytes_written: u64,
    pub bytes_migrated_in: u64,
    pub bytes_migrated_out: u64,
    pub verifications: u64,
}

impl ShardSubstrate {
    pub fn cadence(&self) -> VerifyCadence {
        self.verify
    }

    pub fn window(&self) -> AddressWindow {
        self.store.window().expect("shard substrates are windowed")
    }

    /// Replays one request's (or drain's) physical ops, counting the cells
    /// written. Any rule violation — overlap, freed-space reuse, a write
    /// escaping the shard's window — surfaces as the error.
    pub fn apply_ops(&mut self, ops: &[StorageOp]) -> Result<(), String> {
        for op in ops {
            self.store.apply(op).map_err(|v| v.to_string())?;
            if let Some(written) = op.written_extent() {
                self.bytes_written += written.len;
            }
        }
        Ok(())
    }

    /// Reads a departing object's bytes (and their checksum) for a
    /// cross-shard transfer. Must run *before* the reallocator deletes the
    /// object — afterwards the store has freed the extent. Does NOT count
    /// `bytes_migrated_out`: the release may still be refused by the
    /// reallocator, so the caller counts via
    /// [`note_released`](Self::note_released) only once the object has
    /// actually left.
    pub fn release(&mut self, id: ObjectId) -> Option<TransferPayload> {
        let bytes = self.store.bytes_of(id)?.to_vec();
        let sum = checksum(&bytes);
        Some(TransferPayload {
            bytes,
            checksum: sum,
        })
    }

    /// Counts a successfully released transfer's cells as physically
    /// copied out of this window. Keeping the counter here (rather than in
    /// [`release`](Self::release)) keeps `bytes_migrated_out` equal to the
    /// ledgered migrate-out volume even when a reallocator refuses a
    /// delete after the bytes were read.
    pub fn note_released(&mut self, payload: &TransferPayload) {
        self.bytes_migrated_out += payload.bytes.len() as u64;
    }

    /// The adopting half of a transfer: writes the *shipped* bytes at the
    /// extent the reallocator chose, after the store re-verifies their
    /// checksum. (Callers verify the payload before inserting into the
    /// reallocator at all; this second check is the store's own guarantee.)
    pub fn adopt(
        &mut self,
        id: ObjectId,
        to: Extent,
        payload: &TransferPayload,
    ) -> Result<(), String> {
        self.store
            .adopt(id, to, &payload.bytes, payload.checksum)
            .map_err(|v| v.to_string())?;
        self.bytes_written += to.len;
        self.bytes_migrated_in += to.len;
        Ok(())
    }

    /// Whether a payload would survive adoption at `size` — checked before
    /// the reallocator inserts, so a damaged transfer is refused without
    /// polluting the serving structure. Same
    /// [`transfer_checksum`](storage_sim::transfer_checksum) the store
    /// itself re-checks in [`DataStore::adopt`].
    pub fn payload_intact(payload: &TransferPayload, size: u64) -> bool {
        storage_sim::transfer_checksum(&payload.bytes, size) == payload.checksum
    }

    /// The full verification scan: every reallocator-live object present in
    /// the store at the same extent (and vice versa — same live count), and
    /// every live object's bytes matching its registered checksum. Overlap
    /// and window containment need no scan: the store enforced them on
    /// every write.
    pub fn verify(
        &mut self,
        extent_of: impl Fn(ObjectId) -> Option<Extent>,
        physical_live: usize,
    ) -> Result<(), String> {
        self.verifications += 1;
        self.store.rules().verify_matches(&extent_of)?;
        let in_store = self.store.rules().live_count();
        if in_store != physical_live {
            return Err(format!(
                "store holds {in_store} live objects, reallocator holds {physical_live}"
            ));
        }
        self.store.verify_all()
    }

    /// Fault injection (testing): flips one byte of the lowest-id live
    /// object's cells, checksum left intact, so the next verification
    /// scan must fail. Returns the damaged id, or `None` for an empty
    /// store. See [`Engine::inject_substrate_corruption`](crate::Engine::inject_substrate_corruption).
    pub fn corrupt_first_object(&mut self) -> Option<ObjectId> {
        let id = self
            .store
            .rules()
            .live_spans()
            .into_iter()
            .map(|(_, id)| id)
            .min()?;
        self.store.corrupt_object(id).then_some(id)
    }

    /// Live object bytes, sorted by id (the
    /// [`Engine::substrate_contents`](crate::Engine::substrate_contents)
    /// debugging barrier).
    pub fn contents(&self) -> Vec<(ObjectId, Vec<u8>)> {
        let mut objects: Vec<(ObjectId, Vec<u8>)> = self
            .store
            .rules()
            .live_spans()
            .into_iter()
            .map(|(_, id)| (id, self.store.bytes_of(id).unwrap_or_default().to_vec()))
            .collect();
        objects.sort_by_key(|&(id, _)| id);
        objects
    }

    /// Validates a defrag schedule by *performing* its copies on real
    /// bytes: a sandbox store is seeded with the schedule's input objects
    /// (bytes lifted from this store), the schedule replays under memmove
    /// semantics, and every object must land byte-intact at its sorted
    /// placement. The serving structure is untouched — this proves the
    /// schedule a substrate would apply is physically executable.
    pub fn validate_schedule(
        &self,
        input: &[(ObjectId, Extent)],
        ops: &[StorageOp],
        sorted: &[(ObjectId, Extent)],
    ) -> Result<(), String> {
        let mut sandbox = DataStore::new(Mode::Relaxed);
        for &(id, ext) in input {
            let bytes = self
                .store
                .bytes_of(id)
                .ok_or_else(|| format!("{id} scheduled but not in the store"))?;
            let sum = checksum(bytes);
            sandbox
                .adopt(id, ext, bytes, sum)
                .map_err(|v| format!("seeding sandbox: {v}"))?;
        }
        sandbox
            .apply_all(ops)
            .map_err(|v| format!("schedule replay: {v}"))?;
        sandbox.verify_all()?;
        for &(id, ext) in sorted {
            match sandbox.rules().extent_of(id) {
                Some(e) if e == ext => {}
                other => return Err(format!("{id} ended at {other:?}, schedule promised {ext}")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_ladder() {
        assert!(!VerifyCadence::Final.at_barriers());
        assert!(!VerifyCadence::Final.at_batches());
        assert!(VerifyCadence::Quiesce.at_barriers());
        assert!(!VerifyCadence::Quiesce.at_batches());
        assert!(VerifyCadence::Batch.at_barriers());
        assert!(VerifyCadence::Batch.at_batches());
        assert_eq!(VerifyCadence::default(), VerifyCadence::Quiesce);
        assert_eq!(VerifyCadence::Batch.to_string(), "batch");
    }

    #[test]
    fn config_builders() {
        let cfg = SubstrateConfig::strict()
            .cadence(VerifyCadence::Batch)
            .window_span(1 << 20);
        assert_eq!(cfg.mode, Mode::Strict);
        assert_eq!(cfg.window_span, 1 << 20);
        assert_eq!(cfg.verify, VerifyCadence::Batch);
        assert_eq!(SubstrateConfig::relaxed().mode, Mode::Relaxed);
    }

    #[test]
    fn shard_windows_are_disjoint_and_ordered() {
        let cfg = SubstrateConfig::default().window_span(1 << 16);
        let a = cfg.build(0).window();
        let b = cfg.build(1).window();
        assert_eq!(a.base + a.span, b.base);
    }

    #[test]
    fn release_adopt_round_trip_counts_bytes() {
        let cfg = SubstrateConfig::default().window_span(1 << 16);
        let mut source = cfg.build(0);
        source
            .apply_ops(&[StorageOp::Allocate {
                id: ObjectId(1),
                to: Extent::new(0, 64),
            }])
            .unwrap();
        assert_eq!(source.bytes_written, 64);

        let payload = source.release(ObjectId(1)).unwrap();
        // Reading the bytes is not yet a migration — only a release the
        // reallocator actually honoured counts.
        assert_eq!(source.bytes_migrated_out, 0);
        source.note_released(&payload);
        assert_eq!(source.bytes_migrated_out, 64);
        assert!(ShardSubstrate::payload_intact(&payload, 64));
        assert!(!ShardSubstrate::payload_intact(&payload, 63));

        let mut target = cfg.build(1);
        target
            .adopt(ObjectId(1), Extent::new(0, 64), &payload)
            .unwrap();
        assert_eq!(target.bytes_migrated_in, 64);
        assert_eq!(target.bytes_written, 64);

        // Damage en route: both the pre-check and the store refuse.
        let mut damaged = payload.clone();
        damaged.bytes[7] ^= 0xff;
        assert!(!ShardSubstrate::payload_intact(&damaged, 64));
        assert!(target
            .adopt(ObjectId(2), Extent::new(100, 64), &damaged)
            .is_err());
    }
}
