//! The engine front-end: routing, batching, barriers, aggregation,
//! cross-shard rebalancing, and live shard-count resizing.

use std::collections::HashSet;
use std::sync::mpsc::{self, SyncSender};
use std::thread::JoinHandle;

use realloc_common::{BoxedReallocator, Extent, HashRouter, ObjectId, ReallocError, Router};
use workload_gen::{Request, Workload};

use crate::rebalance::{
    plan_rebalance, Migration, RebalanceOptions, RebalanceReport, ResizeReport,
};
use crate::shard::{Command, ShardError, ShardFinal, ShardReply, ShardWorker};
use crate::stats::EngineStats;

/// Sizing knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (worker threads). Each owns an independent
    /// reallocator, so the aggregate footprint bound is `(1+ε)·Σ V_i`.
    /// Changes at runtime through [`Engine::resize_shards`].
    pub shards: usize,
    /// Requests per channel message. Larger batches amortize channel
    /// overhead; smaller ones reduce barrier latency. One channel round
    /// trip per `batch` requests is the same amortization play the paper's
    /// buffer segments make for moves.
    pub batch: usize,
    /// Bounded channel depth, in batches. A full queue blocks the
    /// enqueueing caller — backpressure, not unbounded buffering.
    pub queue_depth: usize,
    /// Keep a full per-request [`Ledger`](realloc_common::Ledger) on every
    /// shard (the post-hoc cost-pricing record). On by default; a
    /// throughput-critical deployment can turn it off — the ledger grows
    /// without bound and its append is the worker's largest per-request
    /// fixed cost. Aggregate stats (including the settled-space ratio) are
    /// maintained incrementally either way.
    pub record_ledger: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch: 256,
            queue_depth: 4,
            record_ledger: true,
        }
    }
}

impl EngineConfig {
    /// The default configuration with `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// This configuration with per-request ledgers disabled (stats only).
    pub fn ledgerless(mut self) -> Self {
        self.record_ledger = false;
        self
    }
}

/// Errors surfaced by the engine's handle API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A shard's reallocator rejected a request. Reported at the first
    /// barrier after it happened; `index` counts the shard's own stream.
    Request {
        /// Shard that rejected the request.
        shard: usize,
        /// Index in that shard's request stream (0-based).
        index: u64,
        /// The underlying rejection.
        error: ReallocError,
    },
    /// A shard's worker thread is gone (its channel disconnected).
    ShardDown {
        /// The dead shard.
        shard: usize,
    },
    /// [`Engine::rebalance`] was asked to re-home objects through a router
    /// with no assignment table (e.g. the stateless hash router, whose map
    /// is frozen). Build the engine with [`Engine::with_router`] and a
    /// [`TableRouter`](realloc_common::TableRouter) to rebalance.
    FixedRouting {
        /// `Router::name()` of the router that cannot pin ids.
        router: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Request {
                shard,
                index,
                error,
            } => {
                write!(f, "shard {shard} rejected its request #{index}: {error}")
            }
            EngineError::ShardDown { shard } => write!(f, "shard {shard} worker is gone"),
            EngineError::FixedRouting { router } => {
                write!(
                    f,
                    "router {router:?} cannot pin ids to shards; rebalancing needs a table router"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Internal result of executing a migration plan (see [`Engine::migrate`]).
#[derive(Default)]
struct MigrationOutcome {
    /// `(id, size, target)` of every transfer whose outbound *and* inbound
    /// halves completed.
    completed: Vec<(ObjectId, u64, usize)>,
    /// `(id, source)` of every transfer whose source refused to release the
    /// object — it still physically lives there, and callers that changed
    /// the routing basis must re-pin it.
    stranded: Vec<(ObjectId, usize)>,
    /// First rejection observed across both phases (if any). Surfaced by
    /// the caller only after the routing table matches physical ownership.
    first_error: Option<(usize, ShardError)>,
}

impl MigrationOutcome {
    fn note_error(&mut self, shard: usize, error: Option<ShardError>) {
        if self.first_error.is_none() {
            if let Some(err) = error {
                self.first_error = Some((shard, err));
            }
        }
    }

    fn surface(&self) -> Result<(), EngineError> {
        match self.first_error {
            Some((shard, err)) => Err(EngineError::Request {
                shard,
                index: err.index,
                error: err.error,
            }),
            None => Ok(()),
        }
    }

    fn totals(&self) -> (u64, u64) {
        (
            self.completed.len() as u64,
            self.completed.iter().map(|&(_, size, _)| size).sum(),
        )
    }
}

/// A sharded, multi-threaded reallocation service.
///
/// See the [crate docs](crate) for the architecture. Construct with
/// [`Engine::new`] (stateless hash routing) or [`Engine::with_router`]
/// (any [`Router`]), feed with [`insert`](Engine::insert) /
/// [`delete`](Engine::delete) (or [`drive`](Engine::drive) for a whole
/// workload), observe with [`snapshot`](Engine::snapshot) /
/// [`quiesce`](Engine::quiesce), re-home volume with
/// [`rebalance`](Engine::rebalance) / [`resize_shards`](Engine::resize_shards),
/// and finish with [`shutdown`](Engine::shutdown) to collect per-shard
/// ledgers. Dropping an engine without `shutdown` joins its workers and
/// discards results.
pub struct Engine {
    config: EngineConfig,
    router: Box<dyn Router>,
    senders: Vec<SyncSender<Command>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard batch under construction (not yet sent).
    pending: Vec<Vec<Request>>,
    /// Finals of shards retired by a shrinking resize, so their ledgers and
    /// stats survive until [`shutdown`](Engine::shutdown).
    retired: Vec<ShardFinal>,
}

impl Engine {
    /// Spawns `config.shards` worker threads behind the default stateless
    /// [`HashRouter`]; `factory(shard)` builds each shard's reallocator
    /// (any `Reallocator + Send` — paper variants, baselines, or a mix).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch` is zero.
    pub fn new<F>(config: EngineConfig, factory: F) -> Engine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        Engine::with_router(config, Box::new(HashRouter::new(config.shards)), factory)
    }

    /// Like [`Engine::new`], but routing through `router` (whose shard
    /// count must match `config.shards`). Pass a
    /// [`TableRouter`](realloc_common::TableRouter) to enable
    /// [`rebalance`](Engine::rebalance).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch` is zero, or if the
    /// router targets a different shard count.
    pub fn with_router<F>(config: EngineConfig, router: Box<dyn Router>, mut factory: F) -> Engine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.batch > 0, "batch size must be positive");
        assert_eq!(
            router.shards(),
            config.shards,
            "router and config disagree on the shard count"
        );
        let mut engine = Engine {
            config,
            router,
            senders: Vec::with_capacity(config.shards),
            workers: Vec::with_capacity(config.shards),
            pending: Vec::with_capacity(config.shards),
            retired: Vec::new(),
        };
        for shard in 0..config.shards {
            engine.spawn_shard(shard, factory(shard));
        }
        engine
    }

    fn spawn_shard(&mut self, shard: usize, realloc: BoxedReallocator) {
        let (tx, rx) = mpsc::sync_channel(self.config.queue_depth.max(1));
        let worker = ShardWorker::new(shard, realloc, self.config.record_ledger);
        let handle = std::thread::Builder::new()
            .name(format!("realloc-shard-{shard}"))
            .spawn(move || worker.run(rx))
            .expect("spawn shard worker");
        self.senders.push(tx);
        self.workers.push(handle);
        self.pending.push(Vec::with_capacity(self.config.batch));
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The engine's configuration (reflects any resize).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The routing layer, for inspection (`name`, `assignments`, …).
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// The shard that owns `id` right now. Stable between barriers; a
    /// [`rebalance`](Engine::rebalance) or
    /// [`resize_shards`](Engine::resize_shards) may re-home the id.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.router.route(id)
    }

    /// Enqueues `〈INSERTOBJECT, id, size〉` on the owning shard.
    ///
    /// `Ok` means *accepted for serving*, not *served*: a rejection by the
    /// shard's reallocator (e.g. a duplicate id) surfaces at the next
    /// barrier. `Err` here only ever means the shard is down.
    pub fn insert(&mut self, id: ObjectId, size: u64) -> Result<(), EngineError> {
        self.enqueue(Request::Insert { id, size })
    }

    /// Enqueues `〈DELETEOBJECT, id〉` on the owning shard. Same contract as
    /// [`insert`](Engine::insert).
    pub fn delete(&mut self, id: ObjectId) -> Result<(), EngineError> {
        self.enqueue(Request::Delete { id })
    }

    fn enqueue(&mut self, req: Request) -> Result<(), EngineError> {
        let shard = self.router.route(req.id());
        self.pending[shard].push(req);
        if self.pending[shard].len() >= self.config.batch {
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Vec::with_capacity(self.config.batch),
            );
            self.send(shard, Command::Batch(batch))?;
        }
        Ok(())
    }

    fn send(&self, shard: usize, cmd: Command) -> Result<(), EngineError> {
        self.senders[shard]
            .send(cmd)
            .map_err(|_| EngineError::ShardDown { shard })
    }

    /// Pushes every partially filled batch to its shard. Called implicitly
    /// by all barriers; only needed directly to cap latency when trickling
    /// requests below the batch size.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        for shard in 0..self.senders.len() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, Command::Batch(batch))?;
            }
        }
        Ok(())
    }

    /// Barrier: flush, send one command per shard, await all replies.
    fn barrier<T>(
        &mut self,
        make: impl Fn(mpsc::Sender<T>) -> Command,
    ) -> Result<Vec<T>, EngineError> {
        self.flush()?;
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = mpsc::channel();
            self.send(shard, make(tx))?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| rx.recv().map_err(|_| EngineError::ShardDown { shard }))
            .collect()
    }

    /// The error-surfacing rule every barrier shares: the first rejected
    /// request of the lowest-numbered shard that saw one wins.
    fn surface_first_error<'a>(
        replies: impl Iterator<Item = (usize, &'a Option<ShardError>)>,
    ) -> Result<(), EngineError> {
        for (shard, first_error) in replies {
            if let Some(err) = first_error {
                return Err(EngineError::Request {
                    shard,
                    index: err.index,
                    error: err.error,
                });
            }
        }
        Ok(())
    }

    fn aggregate(replies: Vec<ShardReply>) -> Result<EngineStats, EngineError> {
        Self::surface_first_error(replies.iter().map(|r| (r.stats.shard, &r.first_error)))?;
        Ok(EngineStats {
            per_shard: replies.into_iter().map(|r| r.stats).collect(),
        })
    }

    /// Waits until every enqueued request has been served and all deferred
    /// work is complete (each shard runs `Reallocator::quiesce`, draining
    /// e.g. the deamortized structure's in-progress flush), then returns
    /// the aggregated stats. Surfaces the first request-level error, if
    /// any shard saw one.
    pub fn quiesce(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(Command::Quiesce)?;
        Self::aggregate(replies)
    }

    /// Waits until every enqueued request has been served and returns the
    /// aggregated stats, without forcing deferred work. Surfaces the first
    /// request-level error, if any shard saw one.
    pub fn snapshot(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(Command::Snapshot)?;
        Self::aggregate(replies)
    }

    /// Current placements of all live objects, per shard, sorted by id.
    /// (A barrier, like `snapshot`.) Objects whose delete is deferred
    /// inside a quiescing structure are not listed.
    pub fn extents(&mut self) -> Result<Vec<Vec<(ObjectId, Extent)>>, EngineError> {
        self.barrier(Command::Extents)
    }

    /// Replays a whole workload: splits it into per-shard streams with
    /// [`workload_gen::shard::split_with`] under the engine's router
    /// (per-object request order is preserved — an object's requests all
    /// route to the same shard, in sequence order) and feeds the streams
    /// round-robin, one batch per shard per round, so every queue stays
    /// busy instead of one shard draining while the rest idle.
    ///
    /// Returns when everything is *enqueued*; follow with
    /// [`quiesce`](Engine::quiesce) or [`snapshot`](Engine::snapshot) to
    /// wait for completion and check for request errors.
    pub fn drive(&mut self, workload: &Workload) -> Result<(), EngineError> {
        // Order wrt. anything already trickled in via insert/delete.
        self.flush()?;
        let shards = self.senders.len();
        let router = self.router.as_ref();
        let parts = workload_gen::shard::split_with(workload, shards, |id| router.route(id));
        let batch = self.config.batch;
        let mut cursor = vec![0usize; shards];
        loop {
            let mut done = true;
            for (shard, part) in parts.iter().enumerate() {
                let reqs = &part.requests;
                if cursor[shard] < reqs.len() {
                    done = false;
                    let end = (cursor[shard] + batch).min(reqs.len());
                    self.send(shard, Command::Batch(reqs[cursor[shard]..end].to_vec()))?;
                    cursor[shard] = end;
                }
            }
            if done {
                return Ok(());
            }
        }
    }

    /// Cross-shard rebalance: quiesces, measures per-shard live volumes,
    /// plans migrations that equalize them (greedy largest-first from over-
    /// to under-full shards — see [`crate::rebalance`]), executes them as
    /// migrate-out/migrate-in barriers, updates the routing table for every
    /// moved id at the closing barrier, then optionally has each shard run
    /// the Theorem 2.7 defragmenter over its post-migration layout. The
    /// defrag pass *plans and prices*: it computes the cost-oblivious
    /// compaction schedule (the moves a substrate replay would apply),
    /// records those moves in the shard ledger, and reports the
    /// `(1+ε)V + ∆` space bound in [`RebalanceReport::defrag`] — the
    /// serving structure itself stays as Theorem 2.1 maintains it, so
    /// [`EngineStats::footprint`] does not shrink from the pass.
    ///
    /// Requires a router with an assignment table (see
    /// [`Engine::with_router`]); fails with [`EngineError::FixedRouting`]
    /// otherwise. Per-object request order is preserved: the engine is
    /// quiesced throughout, and requests arriving after the rebalance route
    /// to the object's new owner.
    ///
    /// # Panics
    /// Panics if `opts.defrag_eps` is outside the paper's `0 < ε ≤ 1/2`.
    pub fn rebalance(&mut self, opts: RebalanceOptions) -> Result<RebalanceReport, EngineError> {
        if let Some(eps) = opts.defrag_eps {
            assert!(
                eps > 0.0 && eps <= 0.5,
                "the paper requires 0 < ε ≤ 1/2, got {eps}"
            );
        }
        let before = self.quiesce()?;
        let extents = self.extents()?;
        let shards: Vec<Vec<(ObjectId, u64)>> = extents
            .iter()
            .map(|list| list.iter().map(|&(id, e)| (id, e.len)).collect())
            .collect();
        let plan = plan_rebalance(&shards);
        if !plan.is_empty() && !self.router.supports_assignment() {
            return Err(EngineError::FixedRouting {
                router: self.router.name(),
            });
        }
        let outcome = self.migrate(&plan)?;
        // The routing-table update is atomic with respect to serving: the
        // engine is quiesced, so no request can observe a half-applied map.
        // Only completed transfers are pinned, and pinning happens before
        // any error surfaces, so routing always matches physical ownership
        // even if a broken reallocator rejects one transfer mid-plan.
        for &(id, _, to) in &outcome.completed {
            self.router.assign(id, to);
        }
        outcome.surface()?;
        let (migrated_objects, migrated_volume) = outcome.totals();
        let defrag = match opts.defrag_eps {
            Some(eps) => self.barrier(|reply| Command::Defrag { eps, reply })?,
            None => Vec::new(),
        };
        let after = self.quiesce()?;
        Ok(RebalanceReport {
            before,
            after,
            migrated_objects,
            migrated_volume,
            defrag,
        })
    }

    /// Resizes the live engine to `shards` shards, reusing the rebalance
    /// migration machinery: quiesces, spawns workers for any new shards
    /// (built by `factory`, like at construction), migrates every object
    /// whose route changes under the new shard count (for a
    /// [`TableRouter`](realloc_common::TableRouter) the rendezvous fallback
    /// keeps that near `1/n` of the population on grows), re-targets the
    /// router, and retires drained workers on shrinks — their stats and
    /// ledgers are returned by the eventual [`shutdown`](Engine::shutdown).
    ///
    /// Works with any router (shrinking a hash-routed engine simply migrates
    /// more objects). Per-object request order is preserved: everything
    /// happens inside one quiesce barrier.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn resize_shards<F>(
        &mut self,
        shards: usize,
        mut factory: F,
    ) -> Result<ResizeReport, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(shards > 0, "engine needs at least one shard");
        let from = self.config.shards;
        self.quiesce()?;
        if shards == from {
            return Ok(ResizeReport {
                from,
                to: shards,
                migrated_objects: 0,
                migrated_volume: 0,
            });
        }
        let extents = self.extents()?;
        let mut plan = Vec::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, e) in list {
                let to = self.router.route_at(id, shards);
                debug_assert!(to < shards, "router resize preview out of range");
                if to != shard {
                    plan.push(Migration {
                        id,
                        size: e.len,
                        from: shard,
                        to,
                    });
                }
            }
        }
        for shard in from..shards {
            self.spawn_shard(shard, factory(shard));
        }
        let outcome = self.migrate(&plan)?;
        if outcome.first_error.is_some() {
            // Partial failure (only possible with a broken reallocator):
            // routing must be made to match physical ownership before the
            // error surfaces, and the fleet cannot shrink — a dying shard
            // may still hold what it refused to release. Adopt the larger
            // of the two counts so every owner stays routable, then pin
            // both the transfers that landed (to their targets) and the
            // objects whose source refused to let go (back to it, since
            // the re-targeted fallback may now point elsewhere). A router
            // without an assignment table cannot be reconciled — the
            // affected ids route wrongly until shutdown; their extents and
            // ledgers remain readable.
            let keep = shards.max(from);
            self.router.set_shards(keep);
            self.config.shards = keep;
            if self.router.supports_assignment() {
                for &(id, _, to) in &outcome.completed {
                    if self.router.route(id) != to {
                        self.router.assign(id, to);
                    }
                }
                for &(id, source) in &outcome.stranded {
                    if self.router.route(id) != source {
                        self.router.assign(id, source);
                    }
                }
            }
            outcome.surface()?;
        }
        self.router.set_shards(shards);
        for &(id, _, to) in &outcome.completed {
            // Pin only where the new fallback disagrees (keeps the table
            // minimal; a fresh TableRouter stays assignment-free).
            if self.router.route(id) != to {
                self.router.assign(id, to);
            }
        }
        let (migrated_objects, migrated_volume) = outcome.totals();
        // Retire drained workers (highest shard first, so indices stay
        // aligned with the vectors we pop from).
        for shard in (shards..from).rev() {
            let (tx, rx) = mpsc::channel();
            self.send(shard, Command::Finish(tx))?;
            let fin = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            debug_assert_eq!(fin.stats.live_count, 0, "retired shard still holds objects");
            self.retired.push(fin);
            self.senders.pop();
            if let Some(worker) = self.workers.pop() {
                let _ = worker.join();
            }
            let leftover = self.pending.pop();
            debug_assert!(leftover.is_none_or(|p| p.is_empty()));
        }
        self.config.shards = shards;
        Ok(ResizeReport {
            from,
            to: shards,
            migrated_objects,
            migrated_volume,
        })
    }

    /// Executes a migration plan: all migrate-outs first (each source shard
    /// drains before replying, so no id is ever live on two shards), then
    /// migrate-ins for exactly the objects their sources released. Both
    /// halves are barriers with per-object acks, so one broken reallocator
    /// cannot desync the fleet: unreleased objects stay home (reported as
    /// `stranded`, so callers that changed the routing basis can re-pin
    /// them), and everything else completes. The first rejection is
    /// remembered in the outcome — the caller surfaces it only *after*
    /// making the routing table match physical ownership.
    fn migrate(&mut self, plan: &[Migration]) -> Result<MigrationOutcome, EngineError> {
        let mut outcome = MigrationOutcome::default();
        if plan.is_empty() {
            return Ok(outcome);
        }
        let n = self.senders.len();
        let mut outs: Vec<Vec<ObjectId>> = vec![Vec::new(); n];
        for m in plan {
            outs[m.from].push(m.id);
        }
        let mut waiting = Vec::new();
        for (shard, ids) in outs.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.send(shard, Command::MigrateOut { ids, reply: tx })?;
            waiting.push((shard, rx));
        }
        let mut released = HashSet::new();
        for (shard, rx) in waiting {
            let (reply, ids) = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            outcome.note_error(shard, reply.first_error);
            released.extend(ids);
        }

        let mut ins: Vec<Vec<(ObjectId, u64)>> = vec![Vec::new(); n];
        for m in plan {
            if released.contains(&m.id) {
                ins[m.to].push((m.id, m.size));
            }
        }
        let mut waiting = Vec::new();
        for (shard, objects) in ins.into_iter().enumerate() {
            if objects.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.send(shard, Command::MigrateIn { objects, reply: tx })?;
            waiting.push((shard, rx));
        }
        let mut adopted = HashSet::new();
        for (shard, rx) in waiting {
            let (reply, ids) = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            outcome.note_error(shard, reply.first_error);
            adopted.extend(ids);
        }

        for m in plan {
            if adopted.contains(&m.id) {
                outcome.completed.push((m.id, m.size, m.to));
            } else if !released.contains(&m.id) {
                outcome.stranded.push((m.id, m.from));
            }
        }
        Ok(outcome)
    }

    /// Final barrier: serves everything still queued, stops all workers,
    /// joins their threads, and returns each shard's stats *and full
    /// ledger* — the per-shard move logs that post-hoc cost pricing needs.
    /// Shards retired by a shrinking [`resize_shards`](Engine::resize_shards)
    /// follow the live shards, so no history is lost. Surfaces the first
    /// request-level error instead, if any shard saw one.
    pub fn shutdown(mut self) -> Result<Vec<ShardFinal>, EngineError> {
        let mut finals = self.barrier(Command::Finish)?;
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        finals.append(&mut self.retired);
        Self::surface_first_error(finals.iter().map(|f| (f.stats.shard, &f.first_error)))?;
        Ok(finals)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the channels so workers fall out of their loops, then
        // join to avoid leaking threads past the engine's lifetime.
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_common::{Outcome, Reallocator, TableRouter};
    use std::collections::HashMap;

    /// A minimal in-test reallocator: bump allocation, never moves, never
    /// reuses space. Enough to exercise every engine path deterministically.
    #[derive(Default)]
    struct Bump {
        extents: HashMap<ObjectId, Extent>,
        end: u64,
        volume: u64,
        delta: u64,
    }

    impl Reallocator for Bump {
        fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
            if size == 0 {
                return Err(ReallocError::ZeroSize);
            }
            if self.extents.contains_key(&id) {
                return Err(ReallocError::DuplicateId(id));
            }
            self.extents.insert(id, Extent::new(self.end, size));
            self.end += size;
            self.volume += size;
            self.delta = self.delta.max(size);
            Ok(Outcome::empty())
        }
        fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
            let e = self
                .extents
                .remove(&id)
                .ok_or(ReallocError::UnknownId(id))?;
            self.volume -= e.len;
            Ok(Outcome::empty())
        }
        fn extent_of(&self, id: ObjectId) -> Option<Extent> {
            self.extents.get(&id).copied()
        }
        fn live_volume(&self) -> u64 {
            self.volume
        }
        fn structure_size(&self) -> u64 {
            self.end
        }
        fn footprint(&self) -> u64 {
            self.end
        }
        fn max_object_size(&self) -> u64 {
            self.delta
        }
        fn name(&self) -> &'static str {
            "bump"
        }
        fn live_count(&self) -> usize {
            self.extents.len()
        }
    }

    fn bump_engine(shards: usize) -> Engine {
        Engine::new(EngineConfig::with_shards(shards), |_| {
            Box::new(Bump::default())
        })
    }

    fn table_engine(shards: usize) -> Engine {
        Engine::with_router(
            EngineConfig::with_shards(shards),
            Box::new(TableRouter::new(shards)),
            |_| Box::new(Bump::default()),
        )
    }

    #[test]
    fn serves_and_aggregates() {
        let mut e = bump_engine(3);
        for i in 0..100u64 {
            e.insert(ObjectId(i), 1 + i % 7).unwrap();
        }
        for i in 0..50u64 {
            e.delete(ObjectId(i)).unwrap();
        }
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.shards(), 3);
        assert_eq!(stats.requests(), 150);
        assert_eq!(stats.live_count(), 50);
        let expect: u64 = (50..100).map(|i| 1 + i % 7).sum();
        assert_eq!(stats.live_volume(), expect);
        assert_eq!(stats.errors(), 0);
        // Every request landed on the shard its id hashes to.
        let per_shard_requests: u64 = stats.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(per_shard_requests, 150);
    }

    #[test]
    fn small_batches_flush_at_barriers() {
        // 5 requests with batch=256 stay pending until the barrier.
        let mut e = bump_engine(2);
        for i in 0..5u64 {
            e.insert(ObjectId(i), 8).unwrap();
        }
        let stats = e.snapshot().unwrap();
        assert_eq!(stats.requests(), 5);
        assert_eq!(stats.live_volume(), 40);
    }

    #[test]
    fn request_errors_surface_at_barriers_and_do_not_kill_shards() {
        let mut e = bump_engine(2);
        e.insert(ObjectId(1), 8).unwrap();
        e.insert(ObjectId(1), 8).unwrap(); // duplicate — same shard by hash
        e.insert(ObjectId(2), 4).unwrap();
        let err = e.snapshot().unwrap_err();
        match err {
            EngineError::Request {
                error: ReallocError::DuplicateId(id),
                ..
            } => {
                assert_eq!(id, ObjectId(1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The shard kept serving past the bad request.
        let shard1 = e.shard_of(ObjectId(1));
        let finals = e.shutdown().unwrap_err();
        assert!(matches!(finals, EngineError::Request { shard, .. } if shard == shard1));
    }

    #[test]
    fn extents_match_routing() {
        let mut e = bump_engine(4);
        for i in 0..40u64 {
            e.insert(ObjectId(i), 4).unwrap();
        }
        let extents = e.extents().unwrap();
        assert_eq!(extents.len(), 4);
        let mut seen = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, extent) in list {
                assert_eq!(e.shard_of(id), shard, "{id} listed on wrong shard");
                assert_eq!(extent.len, 4);
                seen += 1;
            }
            // Sorted by id within the shard.
            assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(seen, 40, "every live object listed exactly once");
    }

    #[test]
    fn shutdown_returns_per_shard_ledgers() {
        let mut e = bump_engine(2);
        for i in 0..20u64 {
            e.insert(ObjectId(i), 2).unwrap();
        }
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 2);
        let total: usize = finals.iter().map(|f| f.ledger.len()).sum();
        assert_eq!(total, 20, "every request ledgered on exactly one shard");
        for f in &finals {
            assert_eq!(f.ledger.len() as u64, f.stats.requests);
        }
    }

    #[test]
    fn ledgerless_engine_keeps_stats_but_not_history() {
        let drive = |config: EngineConfig| {
            let mut e = Engine::new(config, |_| Box::new(Bump::default()) as _);
            for i in 0..60u64 {
                e.insert(ObjectId(i), 1 + i % 5).unwrap();
            }
            for i in 0..30u64 {
                e.delete(ObjectId(i)).unwrap();
            }
            e.shutdown().unwrap()
        };
        let with = drive(EngineConfig::with_shards(2));
        let without = drive(EngineConfig::with_shards(2).ledgerless());
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(
                a.stats, b.stats,
                "stats must not depend on ledger recording"
            );
            assert_eq!(a.ledger.len() as u64, a.stats.requests);
            assert!(b.ledger.is_empty(), "ledgerless shard kept history");
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.shards > 0 && c.batch > 0 && c.queue_depth > 0);
        assert_eq!(EngineConfig::with_shards(7).shards, 7);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::with_shards(0);
    }

    #[test]
    fn error_display() {
        let e = EngineError::Request {
            shard: 2,
            index: 7,
            error: ReallocError::UnknownId(ObjectId(9)),
        };
        assert_eq!(
            e.to_string(),
            "shard 2 rejected its request #7: obj#9 is not active"
        );
        assert_eq!(
            EngineError::ShardDown { shard: 1 }.to_string(),
            "shard 1 worker is gone"
        );
        assert_eq!(
            EngineError::FixedRouting { router: "hash" }.to_string(),
            "router \"hash\" cannot pin ids to shards; rebalancing needs a table router"
        );
    }

    /// Loads shard 0 of a table-routed engine far above the others by
    /// deleting everything routed elsewhere.
    fn skew_toward_shard_zero(e: &mut Engine, ids: u64) {
        for i in 0..ids {
            e.insert(ObjectId(i), 8).unwrap();
        }
        let doomed: Vec<ObjectId> = (0..ids)
            .map(ObjectId)
            .filter(|&id| e.shard_of(id) != 0)
            .collect();
        for id in doomed {
            e.delete(id).unwrap();
        }
    }

    #[test]
    fn rebalance_equalizes_table_routed_volumes() {
        let mut e = table_engine(4);
        skew_toward_shard_zero(&mut e, 400);
        let before = e.quiesce().unwrap();
        assert!(
            before.imbalance_ratio() > 2.0,
            "skew failed: {}",
            before.imbalance_ratio()
        );
        let live_before = before.live_count();

        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert!(report.migrated_objects > 0);
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "imbalance after rebalance: {}",
            report.after.imbalance_ratio()
        );
        assert_eq!(report.after.live_count(), live_before, "objects conserved");
        assert_eq!(report.after.live_volume(), before.live_volume());
        assert_eq!(report.after.migrations(), report.migrated_objects);

        // Routing follows the moved objects: deleting everything must
        // succeed, which requires every id to route to its current owner.
        let extents = e.extents().unwrap();
        for list in &extents {
            for &(id, _) in list {
                e.delete(id).unwrap();
            }
        }
        let empty = e.quiesce().unwrap();
        assert_eq!(empty.live_count(), 0);
        assert_eq!(empty.errors(), 0, "a migrated id routed to a stale shard");
    }

    #[test]
    fn rebalance_on_hash_router_is_rejected() {
        let mut e = bump_engine(3);
        skew_toward_shard_zero(&mut e, 300);
        match e.rebalance(RebalanceOptions::default()) {
            Err(EngineError::FixedRouting { router: "hash" }) => {}
            other => panic!("expected FixedRouting, got {other:?}"),
        }
        // The engine stays serviceable after the refusal.
        e.insert(ObjectId(10_000), 4).unwrap();
        assert_eq!(e.quiesce().unwrap().errors(), 0);
    }

    #[test]
    fn balanced_engine_rebalance_is_a_no_op_even_on_hash() {
        // No migrations planned ⇒ no assignment support needed.
        let mut e = bump_engine(1);
        e.insert(ObjectId(1), 8).unwrap();
        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert_eq!(report.migrated_objects, 0);
    }

    #[test]
    fn resize_grow_and_shrink_conserve_objects() {
        let mut e = table_engine(2);
        for i in 0..200u64 {
            e.insert(ObjectId(i), 1 + i % 9).unwrap();
        }
        let before = e.quiesce().unwrap();

        let grow = e.resize_shards(5, |_| Box::new(Bump::default())).unwrap();
        assert_eq!((grow.from, grow.to), (2, 5));
        assert_eq!(e.shards(), 5);
        let grown = e.quiesce().unwrap();
        assert_eq!(grown.shards(), 5);
        assert_eq!(grown.live_count(), before.live_count());
        assert_eq!(grown.live_volume(), before.live_volume());
        // The rendezvous fallback keeps a grow from reshuffling everything.
        assert!(
            grow.migrated_objects < 200,
            "grow re-homed {} of 200",
            grow.migrated_objects
        );

        let shrink = e.resize_shards(3, |_| Box::new(Bump::default())).unwrap();
        assert_eq!((shrink.from, shrink.to), (5, 3));
        let shrunk = e.quiesce().unwrap();
        assert_eq!(shrunk.shards(), 3);
        assert_eq!(shrunk.live_count(), before.live_count());
        assert_eq!(shrunk.live_volume(), before.live_volume());

        // Every id routes to a live shard that actually owns it.
        let extents = e.extents().unwrap();
        let mut seen = 0usize;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard);
                seen += 1;
            }
        }
        assert_eq!(seen, before.live_count());

        // Retired shards' ledgers survive to shutdown.
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 3 + 2, "3 live + 2 retired shards");
        let requests: u64 = finals.iter().map(|f| f.stats.requests).sum();
        assert_eq!(requests, 200, "client requests served exactly once");
    }

    #[test]
    fn resize_same_count_is_a_no_op() {
        let mut e = bump_engine(3);
        e.insert(ObjectId(7), 4).unwrap();
        let report = e.resize_shards(3, |_| Box::new(Bump::default())).unwrap();
        assert_eq!(report.migrated_objects, 0);
        assert_eq!(e.shards(), 3);
    }

    #[test]
    fn resize_hash_router_engine_works_by_mass_migration() {
        let mut e = bump_engine(2);
        for i in 0..100u64 {
            e.insert(ObjectId(i), 4).unwrap();
        }
        e.resize_shards(4, |_| Box::new(Bump::default())).unwrap();
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.shards(), 4);
        assert_eq!(stats.live_count(), 100);
        // Hash routing after the resize is simply shard_of at 4 shards.
        let extents = e.extents().unwrap();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(crate::route::shard_of(id, 4), shard);
            }
        }
    }

    #[test]
    fn migrations_are_ledgered_as_migrations() {
        use realloc_common::OpKind;
        let mut e = table_engine(2);
        skew_toward_shard_zero(&mut e, 60);
        e.rebalance(RebalanceOptions::default()).unwrap();
        let finals = e.shutdown().unwrap();
        let (mut ins, mut outs) = (0u64, 0u64);
        for f in &finals {
            for r in f.ledger.records() {
                match r.kind {
                    OpKind::MigrateIn => {
                        ins += 1;
                        assert_eq!(r.allocated, None, "a transfer is not an allocation");
                        assert_eq!(r.moved_sizes.first(), Some(&r.request_size));
                    }
                    OpKind::MigrateOut => outs += 1,
                    _ => {}
                }
            }
            assert_eq!(f.stats.migrations_in, {
                f.ledger
                    .records()
                    .iter()
                    .filter(|r| r.kind == OpKind::MigrateIn)
                    .count() as u64
            });
        }
        assert!(ins > 0, "rebalance must have migrated something");
        assert_eq!(ins, outs, "every transfer has both halves");
    }

    #[test]
    fn partial_migration_failure_keeps_routing_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        /// A Bump whose inserts can be switched off — stands in for a
        /// broken reallocator rejecting migrate-ins mid-rebalance.
        struct FlakyBump {
            inner: Bump,
            fail_inserts: Arc<AtomicBool>,
        }
        impl Reallocator for FlakyBump {
            fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
                if self.fail_inserts.load(Ordering::Relaxed) {
                    return Err(ReallocError::ZeroSize);
                }
                self.inner.insert(id, size)
            }
            fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
                self.inner.delete(id)
            }
            fn extent_of(&self, id: ObjectId) -> Option<Extent> {
                self.inner.extent_of(id)
            }
            fn live_volume(&self) -> u64 {
                self.inner.live_volume()
            }
            fn structure_size(&self) -> u64 {
                self.inner.structure_size()
            }
            fn footprint(&self) -> u64 {
                self.inner.footprint()
            }
            fn max_object_size(&self) -> u64 {
                self.inner.max_object_size()
            }
            fn name(&self) -> &'static str {
                "flaky-bump"
            }
            fn live_count(&self) -> usize {
                self.inner.live_count()
            }
        }

        let fail = Arc::new(AtomicBool::new(false));
        let fail_factory = Arc::clone(&fail);
        let mut e = Engine::with_router(
            EngineConfig::with_shards(2),
            Box::new(TableRouter::new(2)),
            move |shard| {
                if shard == 1 {
                    Box::new(FlakyBump {
                        inner: Bump::default(),
                        fail_inserts: Arc::clone(&fail_factory),
                    })
                } else {
                    Box::new(Bump::default())
                }
            },
        );
        // Skew all volume onto shard 0, so the rebalance plan targets the
        // (soon to be broken) shard 1.
        skew_toward_shard_zero(&mut e, 60);
        let before = e.quiesce().unwrap();
        assert!(before.imbalance_ratio() > 1.5);

        fail.store(true, Ordering::Relaxed);
        let err = e.rebalance(RebalanceOptions::default()).unwrap_err();
        assert!(
            matches!(err, EngineError::Request { shard: 1, .. }),
            "expected shard 1's rejection, got {err:?}"
        );

        // The objects shard 1 rejected are lost (their sources released
        // them), but nothing is desynced: every surviving object routes to
        // the shard that actually owns it, and no id is on two shards.
        let extents = e.extents().unwrap();
        let mut survivors = 0;
        let mut seen = std::collections::HashSet::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard, "{id} routed to a stale shard");
                assert!(seen.insert(id), "{id} live on two shards");
                survivors += 1;
            }
        }
        assert!(survivors < before.live_count(), "rejections lose objects");
        assert!(survivors > 0, "unaffected objects survive");
        // The sticky shard error keeps surfacing at barriers, as for any
        // rejected request.
        assert!(matches!(
            e.quiesce().unwrap_err(),
            EngineError::Request { shard: 1, .. }
        ));
    }

    #[test]
    fn rebalance_defrag_pass_reports_space_bounds() {
        let mut e = table_engine(2);
        skew_toward_shard_zero(&mut e, 80);
        let report = e.rebalance(RebalanceOptions::with_defrag(0.5)).unwrap();
        assert_eq!(report.defrag.len(), 2);
        for d in &report.defrag {
            assert!(d.error.is_none(), "shard {}: {:?}", d.shard, d.error);
            assert!(d.within_budget, "shard {} blew (1+ε)V + ∆", d.shard);
        }
        assert!(report.after.defrag_moves() > 0);
    }
}
