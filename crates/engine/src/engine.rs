//! The engine front-end: routing, batching, barriers, aggregation,
//! cross-shard rebalancing, and live shard-count resizing.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, SyncSender};
use std::thread::JoinHandle;

use realloc_common::{BoxedReallocator, Extent, HashRouter, ObjectId, ReallocError, Router};
use realloc_telemetry::{EventJournal, Histogram};
use workload_gen::{Request, Workload};

use crate::metrics::{DeviceProfile, MetricsSnapshot, StealStats};
use crate::rebalance::{
    plan_rebalance, Migration, OnlinePlan, RebalanceMode, RebalanceOptions, RebalancePolicy,
    RebalanceReport, ResizeReport,
};
use crate::shard::{Command, ShardError, ShardFinal, ShardReply, ShardWorker};
use crate::stats::EngineStats;
use crate::substrate::{SubstrateConfig, SubstrateReport, Transfer};

/// Sizing knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (worker threads). Each owns an independent
    /// reallocator, so the aggregate footprint bound is `(1+ε)·Σ V_i`.
    /// Changes at runtime through [`Engine::resize_shards`].
    pub shards: usize,
    /// Requests per channel message. Larger batches amortize channel
    /// overhead; smaller ones reduce barrier latency. One channel round
    /// trip per `batch` requests is the same amortization play the paper's
    /// buffer segments make for moves.
    pub batch: usize,
    /// Bounded channel depth, in batches. A full queue blocks the
    /// enqueueing caller — backpressure, not unbounded buffering.
    pub queue_depth: usize,
    /// Keep a full per-request [`Ledger`](realloc_common::Ledger) on every
    /// shard (the post-hoc cost-pricing record). On by default; a
    /// throughput-critical deployment can turn it off — the ledger grows
    /// without bound and its append is the worker's largest per-request
    /// fixed cost. Aggregate stats (including the settled-space ratio) are
    /// maintained incrementally either way.
    pub record_ledger: bool,
    /// Give every shard a byte-carrying storage substrate over its own
    /// disjoint address window (see [`crate::substrate`]): each worker
    /// replays its physical ops into a
    /// [`DataStore`](storage_sim::DataStore), cross-shard migrations ship
    /// and checksum real bytes, and barriers verify extents + bytes at the
    /// configured cadence. `None` (the default) keeps the accounting-only
    /// fast path.
    pub substrate: Option<SubstrateConfig>,
    /// Record the observability surface ([`Engine::metrics`]): per-shard
    /// latency/stall/commit histograms, the structural event journal, and —
    /// with a [`device`](Self::device) — simulated device time. On by
    /// default; [`without_telemetry`](Self::without_telemetry) turns it off
    /// for overhead-sensitive runs (scrapes then return zeroed metrics).
    pub telemetry: bool,
    /// Price every shard's physical op stream against this simulated
    /// device ([`DeviceProfile::build`] runs inside each worker thread).
    /// `None` (the default) records counts and wall-clock only.
    pub device: Option<DeviceProfile>,
    /// Fold every batch through the intra-batch coalescing planner
    /// ([`crate::plan`]) before it touches the reallocator: delete +
    /// reinsert chains collapse to a single resize (or nothing, at an
    /// unchanged size) and insert + delete chains are cancelled outright.
    /// Off by default — coalescing elides work, so per-request ledgers
    /// record the *planned* stream, not the raw one.
    pub coalesce: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch: 256,
            queue_depth: 4,
            record_ledger: true,
            substrate: None,
            telemetry: true,
            device: None,
            coalesce: false,
        }
    }
}

impl EngineConfig {
    /// The default configuration with `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// This configuration with per-request ledgers disabled (stats only).
    pub fn ledgerless(mut self) -> Self {
        self.record_ledger = false;
        self
    }

    /// This configuration with per-shard substrates enabled.
    pub fn with_substrate(mut self, substrate: SubstrateConfig) -> Self {
        self.substrate = Some(substrate);
        self
    }

    /// This configuration with telemetry recording disabled.
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry = false;
        self
    }

    /// This configuration pricing op streams against `device`.
    pub fn with_device(mut self, device: DeviceProfile) -> Self {
        self.device = Some(device);
        self
    }

    /// This configuration with intra-batch coalescing enabled (see
    /// [`coalesce`](Self::coalesce)).
    pub fn coalescing(mut self) -> Self {
        self.coalesce = true;
        self
    }
}

/// Errors surfaced by the engine's handle API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A shard's reallocator rejected a request. Reported at the first
    /// barrier after it happened; `index` counts the shard's own stream.
    Request {
        /// Shard that rejected the request.
        shard: usize,
        /// Index in that shard's request stream (0-based).
        index: u64,
        /// The underlying rejection.
        error: ReallocError,
    },
    /// A shard's worker thread is gone (its channel disconnected).
    ShardDown {
        /// The dead shard.
        shard: usize,
    },
    /// [`Engine::rebalance`] was asked to re-home objects through a router
    /// with no assignment table (e.g. the stateless hash router, whose map
    /// is frozen). Build the engine with [`Engine::with_router`] and a
    /// [`TableRouter`](realloc_common::TableRouter) to rebalance.
    FixedRouting {
        /// `Router::name()` of the router that cannot pin ids.
        router: &'static str,
    },
    /// [`Engine::rebalance_online`] was called while a previous online
    /// session is still draining. Step the active session to completion
    /// (serving traffic does so automatically) before planning a new one.
    RebalanceInProgress,
    /// A shard's substrate failed: a physical write violated the storage
    /// rules (overlap, freed-space reuse, a write escaping the shard's
    /// address window), or a verification scan found extents diverging
    /// from the reallocator or bytes failing their checksum. Sticky, like
    /// request errors: it keeps surfacing at barriers — an integrity
    /// violation does not heal.
    Substrate {
        /// The shard whose substrate failed.
        shard: usize,
        /// Human-readable description of the first failure.
        detail: String,
    },
    /// The durability layer failed: a write-ahead log or checkpoint could
    /// not be opened or written, or [`Engine::recover`] found logs whose
    /// surviving records are inconsistent (a digest that does not match the
    /// object's regenerated content, a corrupt checkpoint).
    Wal {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Request {
                shard,
                index,
                error,
            } => {
                write!(f, "shard {shard} rejected its request #{index}: {error}")
            }
            EngineError::ShardDown { shard } => write!(f, "shard {shard} worker is gone"),
            EngineError::FixedRouting { router } => {
                write!(
                    f,
                    "router {router:?} cannot pin ids to shards; rebalancing needs a table router"
                )
            }
            EngineError::RebalanceInProgress => {
                write!(f, "an online rebalance session is already in progress")
            }
            EngineError::Substrate { shard, detail } => {
                write!(f, "shard {shard} substrate failure: {detail}")
            }
            EngineError::Wal { detail } => write!(f, "durability failure: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Internal result of executing a migration plan (see [`Engine::migrate`]).
#[derive(Default)]
struct MigrationOutcome {
    /// `(id, size, target)` of every transfer whose outbound *and* inbound
    /// halves completed. `size` is the size the source *acked*, which in
    /// online mode may differ from the planner's snapshot (the object can
    /// be deleted and re-inserted at a new size while the session drains).
    completed: Vec<(ObjectId, u64, usize)>,
    /// `(id, source)` of every transfer whose source refused to release the
    /// object — it still physically lives there, and callers that changed
    /// the routing basis must re-pin it.
    stranded: Vec<(ObjectId, usize)>,
    /// First rejection observed across both phases (if any). Surfaced by
    /// the caller only after the routing table matches physical ownership.
    first_error: Option<(usize, ShardError)>,
}

impl MigrationOutcome {
    fn note_error(&mut self, shard: usize, error: Option<ShardError>) {
        if self.first_error.is_none() {
            if let Some(err) = error {
                self.first_error = Some((shard, err));
            }
        }
    }

    fn surface(&self) -> Result<(), EngineError> {
        match self.first_error {
            Some((shard, err)) => Err(EngineError::Request {
                shard,
                index: err.index,
                error: err.error,
            }),
            None => Ok(()),
        }
    }

    fn totals(&self) -> (u64, u64) {
        (
            self.completed.len() as u64,
            self.completed.iter().map(|&(_, size, _)| size).sum(),
        )
    }
}

/// State of one in-progress online rebalance (see
/// [`Engine::rebalance_online`]): the remaining migration plan plus the
/// telemetry the completion report needs.
struct OnlineSession {
    /// Migrations not yet executed, in plan order.
    plan: VecDeque<Migration>,
    /// Most objects one step migrates.
    batch_objects: usize,
    /// Defrag slack to apply at completion (`RebalanceOptions::defrag_eps`).
    defrag_eps: Option<f64>,
    /// Aggregate stats at planning time.
    before: EngineStats,
    batches: u64,
    migrated_objects: u64,
    migrated_volume: u64,
}

/// A sharded, multi-threaded reallocation service.
///
/// See the [crate docs](crate) for the architecture. Construct with
/// [`Engine::new`] (stateless hash routing) or [`Engine::with_router`]
/// (any [`Router`]), feed with [`insert`](Engine::insert) /
/// [`delete`](Engine::delete) (or [`drive`](Engine::drive) for a whole
/// workload), observe with [`snapshot`](Engine::snapshot) /
/// [`quiesce`](Engine::quiesce), re-home volume with
/// [`rebalance`](Engine::rebalance) /
/// [`rebalance_online`](Engine::rebalance_online) /
/// [`resize_shards`](Engine::resize_shards) (or let a
/// [`RebalancePolicy`] trigger that automatically — see
/// [`set_auto_rebalance`](Engine::set_auto_rebalance)), and finish with
/// [`shutdown`](Engine::shutdown) to collect per-shard ledgers. Dropping an
/// engine without `shutdown` joins its workers and discards results.
///
/// # Quickstart
///
/// Build a table-routed fleet, drive a workload, rebalance it online while
/// serving, and shut down:
///
/// ```
/// use alloc_baselines::{FitStrategy, FreeListAllocator};
/// use realloc_common::{ObjectId, TableRouter};
/// use realloc_engine::{Engine, EngineConfig, RebalanceOptions};
/// use workload_gen::{Request, Workload};
///
/// // Build: four first-fit shards behind a table router (re-homeable ids).
/// let mut engine = Engine::with_router(
///     EngineConfig::with_shards(4),
///     Box::new(TableRouter::new(4)),
///     |_shard| Box::new(FreeListAllocator::new(FitStrategy::FirstFit)),
/// );
///
/// // Drive: replay a workload (or trickle insert/delete directly).
/// let requests = (0..256)
///     .map(|i| Request::Insert { id: ObjectId(i), size: 1 + i % 16 })
///     .collect();
/// engine.drive(&Workload::new("quickstart", requests)).unwrap();
///
/// // Rebalance online: plan once, then migrate in bounded batches — serving
/// // continues between steps (here we just step the session dry).
/// let plan = engine.rebalance_online(RebalanceOptions::default()).unwrap();
/// while engine.rebalance_step().unwrap() {}
/// let report = engine.take_rebalance_report().unwrap();
/// assert_eq!(report.migrated_objects, plan.objects);
/// assert!(report.after.imbalance_ratio() <= report.before.imbalance_ratio());
///
/// // Shutdown: collect per-shard stats and ledgers.
/// let finals = engine.shutdown().unwrap();
/// assert_eq!(finals.len(), 4);
/// assert_eq!(finals.iter().map(|f| f.stats.live_count).sum::<usize>(), 256);
/// ```
pub struct Engine {
    config: EngineConfig,
    router: Box<dyn Router>,
    senders: Vec<SyncSender<Command>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard batch under construction (not yet sent).
    pending: Vec<Vec<Request>>,
    /// Finals of shards retired by a shrinking resize, so their ledgers and
    /// stats survive until [`shutdown`](Engine::shutdown).
    retired: Vec<ShardFinal>,
    /// The in-progress online rebalance, if any.
    session: Option<OnlineSession>,
    /// Report of the most recently *completed* online session, until
    /// claimed by [`take_rebalance_report`](Engine::take_rebalance_report).
    finished: Option<RebalanceReport>,
    /// The auto-rebalance policy and the options its triggers use.
    auto: Option<(RebalancePolicy, RebalanceOptions)>,
    /// Fault injection (testing): damage one byte of the next transfer
    /// payload that passes through [`Engine::migrate`], after the source
    /// acked it. See [`Engine::inject_transfer_corruption`].
    corrupt_next_transfer: bool,
    /// Directory of the per-shard write-ahead logs, when durability is on
    /// (see [`Engine::with_wal`]). `None` keeps the journal-free fast path.
    wal_dir: Option<PathBuf>,
    /// Next cross-shard transfer sequence number. Every planned migration
    /// consumes one; the source journals it in its `MigrateOut` and the
    /// target in its `MigrateIn`/`RouteFlip`, so recovery can pair the two
    /// halves of a transfer across independently truncated logs.
    xfer_seq: u64,
    /// Engine-side intake-stall observations, one histogram per shard: how
    /// long a send blocked on that shard's full channel. Recorded only when
    /// `try_send` finds the queue full, so the uncontended path pays no
    /// clock read. Empty when telemetry is off.
    stalls: Vec<Histogram>,
    /// The bounded structural event journal: rebalance/resize spans and
    /// recovery stages. Scraped (never drained) by [`Engine::metrics`].
    events: EventJournal,
    /// Number of completed [`Engine::metrics`] scrapes.
    scrapes: u64,
    /// The previous scrape, for [`Engine::metrics_delta`].
    last_metrics: Option<MetricsSnapshot>,
}

impl Engine {
    /// Spawns `config.shards` worker threads behind the default stateless
    /// [`HashRouter`]; `factory(shard)` builds each shard's reallocator
    /// (any `Reallocator + Send` — paper variants, baselines, or a mix).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch` is zero.
    pub fn new<F>(config: EngineConfig, factory: F) -> Engine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        Engine::with_router(config, Box::new(HashRouter::new(config.shards)), factory)
    }

    /// Like [`Engine::new`], but routing through `router` (whose shard
    /// count must match `config.shards`). Pass a
    /// [`TableRouter`](realloc_common::TableRouter) to enable
    /// [`rebalance`](Engine::rebalance).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch` is zero, or if the
    /// router targets a different shard count.
    pub fn with_router<F>(config: EngineConfig, router: Box<dyn Router>, factory: F) -> Engine
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        Engine::build(config, router, factory, None, 0)
            .expect("spawning shards without a WAL cannot fail")
    }

    /// Like [`Engine::with_router`], but with durability: each shard
    /// journals its physical ops and route flips into a write-ahead log
    /// under `wal_dir` (one group commit per command), checkpoints at
    /// quiesce/shutdown barriers, and a crashed fleet can be rebuilt with
    /// [`Engine::recover`]. Stale `*.wal`/`*.ckpt` files under `wal_dir`
    /// are removed first — a fresh engine's history starts now; to resume
    /// from existing logs, call [`Engine::recover`] instead.
    ///
    /// # Errors
    /// [`EngineError::Wal`] if the directory or a shard's log cannot be
    /// created.
    ///
    /// # Panics
    /// Panics like [`Engine::with_router`] on a zero shard/batch count or a
    /// router/config shard-count mismatch.
    pub fn with_wal<F>(
        config: EngineConfig,
        router: Box<dyn Router>,
        factory: F,
        wal_dir: impl AsRef<Path>,
    ) -> Result<Engine, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        let dir = wal_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| EngineError::Wal {
            detail: format!("create {}: {e}", dir.display()),
        })?;
        let entries = std::fs::read_dir(&dir).map_err(|e| EngineError::Wal {
            detail: format!("scan {}: {e}", dir.display()),
        })?;
        for entry in entries.flatten() {
            let path = entry.path();
            let stale = path
                .extension()
                .is_some_and(|ext| ext == "wal" || ext == "ckpt");
            if stale {
                std::fs::remove_file(&path).map_err(|e| EngineError::Wal {
                    detail: format!("remove stale {}: {e}", path.display()),
                })?;
            }
        }
        Engine::build(config, router, factory, Some(dir), 0)
    }

    /// The constructor all public fronts share. `wal_dir: Some(..)` opens
    /// each shard's journal at the epoch of its current checkpoint (fresh
    /// directories start at 0); `recoveries` seeds every worker's recovery
    /// counter (1 when [`Engine::recover`] rebuilds a fleet, 0 otherwise).
    pub(crate) fn build<F>(
        config: EngineConfig,
        router: Box<dyn Router>,
        mut factory: F,
        wal_dir: Option<PathBuf>,
        recoveries: u64,
    ) -> Result<Engine, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.batch > 0, "batch size must be positive");
        assert_eq!(
            router.shards(),
            config.shards,
            "router and config disagree on the shard count"
        );
        let mut engine = Engine {
            config,
            router,
            senders: Vec::with_capacity(config.shards),
            workers: Vec::with_capacity(config.shards),
            pending: Vec::with_capacity(config.shards),
            retired: Vec::new(),
            session: None,
            finished: None,
            auto: None,
            corrupt_next_transfer: false,
            wal_dir,
            xfer_seq: 1,
            stalls: Vec::with_capacity(config.shards),
            events: EventJournal::new(512),
            scrapes: 0,
            last_metrics: None,
        };
        for shard in 0..config.shards {
            engine.spawn_shard(shard, factory(shard), recoveries)?;
        }
        Ok(engine)
    }

    fn spawn_shard(
        &mut self,
        shard: usize,
        realloc: BoxedReallocator,
        recoveries: u64,
    ) -> Result<(), EngineError> {
        let (tx, rx) = mpsc::sync_channel(self.config.queue_depth.max(1));
        let worker = ShardWorker::build(
            &self.config,
            shard,
            realloc,
            self.wal_dir.as_deref(),
            recoveries,
        )?;
        let handle = std::thread::Builder::new()
            .name(format!("realloc-shard-{shard}"))
            .spawn(move || worker.run(rx))
            .expect("spawn shard worker");
        self.senders.push(tx);
        self.workers.push(handle);
        self.pending.push(Vec::with_capacity(self.config.batch));
        if self.config.telemetry {
            self.stalls.push(Histogram::new());
        }
        Ok(())
    }

    /// The write-ahead-log directory, when durability is on.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal_dir.as_deref()
    }

    /// Seeds the transfer sequence counter past everything a replayed log
    /// already consumed (recovery only — a fresh engine starts at 1).
    pub(crate) fn set_xfer_seq(&mut self, next: u64) {
        self.xfer_seq = next;
    }

    /// Replaces the structural event journal (recovery only — the recovery
    /// stages run before the engine exists, so their spans are recorded
    /// into a standalone journal and installed here).
    pub(crate) fn install_events(&mut self, events: EventJournal) {
        self.events = events;
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The engine's configuration (reflects any resize).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The routing layer, for inspection (`name`, `assignments`, …).
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// The shard that owns `id` right now. Stable between barriers; a
    /// [`rebalance`](Engine::rebalance) or
    /// [`resize_shards`](Engine::resize_shards) may re-home the id.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.router.route(id)
    }

    /// Enqueues `〈INSERTOBJECT, id, size〉` on the owning shard.
    ///
    /// `Ok` means *accepted for serving*, not *served*: a rejection by the
    /// shard's reallocator (e.g. a duplicate id) surfaces at the next
    /// barrier. `Err` here only ever means the shard is down.
    pub fn insert(&mut self, id: ObjectId, size: u64) -> Result<(), EngineError> {
        self.enqueue(Request::Insert { id, size })
    }

    /// Enqueues `〈DELETEOBJECT, id〉` on the owning shard. Same contract as
    /// [`insert`](Engine::insert).
    pub fn delete(&mut self, id: ObjectId) -> Result<(), EngineError> {
        self.enqueue(Request::Delete { id })
    }

    fn enqueue(&mut self, req: Request) -> Result<(), EngineError> {
        let shard = self.router.route(req.id());
        self.pending[shard].push(req);
        if self.pending[shard].len() >= self.config.batch {
            // Fast path: a full buffer ships whole, no planning needed.
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Vec::with_capacity(self.config.batch),
            );
            self.send(shard, Command::Batch(batch))?;
            // Online rebalancing rides the serving cadence: one bounded
            // migration batch per dispatched serving batch, so per-call
            // latency stays bounded and migration bandwidth scales with
            // traffic instead of stalling it.
            if self.session.is_some() {
                self.step_session()?;
            }
            return Ok(());
        }
        self.plan_flush()
    }

    /// Planned flush scheduling across the whole pending set — the Bε-tree
    /// `plan_flush` idiom applied to shard buffers: nothing ships while
    /// total buffered work is below the watermark (half the fleet's batch
    /// capacity); past it, the *fullest* buffer flushes, and never below
    /// half a batch. Skewed traffic thus stops hoarding its backlog until
    /// the full-batch fast path triggers, while uniform trickles still
    /// build usefully sized batches instead of degenerating to per-request
    /// sends.
    fn plan_flush(&mut self) -> Result<(), EngineError> {
        let watermark = (self.senders.len() * self.config.batch / 2).max(1);
        let total: usize = self.pending.iter().map(Vec::len).sum();
        if total < watermark {
            return Ok(());
        }
        let Some(shard) = (0..self.pending.len()).max_by_key(|&s| self.pending[s].len()) else {
            return Ok(());
        };
        let Some(take) = Self::planned_take(self.pending[shard].len(), self.config.batch) else {
            return Ok(());
        };
        let batch: Vec<Request> = self.pending[shard].drain(..take).collect();
        self.send(shard, Command::Batch(batch))?;
        // Same session pacing rule as the full-batch fast path.
        if self.session.is_some() {
            self.step_session()?;
        }
        Ok(())
    }

    /// How much of an `n`-request buffer a planned flush ships: nothing
    /// below half a batch (let it keep filling), at most one batch, and
    /// everything in between ships whole.
    pub(crate) fn planned_take(n: usize, batch: usize) -> Option<usize> {
        if n < batch / 2 {
            None
        } else {
            Some(n.min(batch))
        }
    }

    fn send(&self, shard: usize, cmd: Command) -> Result<(), EngineError> {
        // Fast path first: only a send that actually finds the queue full
        // pays a clock read, and only then does the stall histogram get an
        // observation — so stall count == number of blocked sends.
        match self.senders[shard].try_send(cmd) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(cmd)) => {
                let stall = self.stalls.get(shard);
                let started = stall.map(|_| std::time::Instant::now());
                let result = self.senders[shard]
                    .send(cmd)
                    .map_err(|_| EngineError::ShardDown { shard });
                if let (Some(stall), Some(started)) = (stall, started) {
                    stall.record(started.elapsed().as_nanos() as u64);
                }
                result
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(EngineError::ShardDown { shard }),
        }
    }

    /// Pushes every partially filled batch to its shard. Called implicitly
    /// by all barriers; only needed directly to cap latency when trickling
    /// requests below the batch size.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        for shard in 0..self.senders.len() {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Pushes one shard's partially filled batch, if any.
    fn flush_shard(&mut self, shard: usize) -> Result<(), EngineError> {
        if !self.pending[shard].is_empty() {
            let batch = std::mem::take(&mut self.pending[shard]);
            self.send(shard, Command::Batch(batch))?;
        }
        Ok(())
    }

    /// Barrier: flush, send one command per shard (the closure sees the
    /// shard index, for commands with per-shard payloads like checkpoint
    /// pins), await all replies.
    fn barrier<T>(
        &mut self,
        make: impl Fn(usize, mpsc::Sender<T>) -> Command,
    ) -> Result<Vec<T>, EngineError> {
        self.flush()?;
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = mpsc::channel();
            self.send(shard, make(shard, tx))?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| rx.recv().map_err(|_| EngineError::ShardDown { shard }))
            .collect()
    }

    /// The error-surfacing rule every barrier shares: the first rejected
    /// request of the lowest-numbered shard that saw one wins.
    pub(crate) fn surface_first_error<'a>(
        replies: impl Iterator<Item = (usize, &'a Option<ShardError>)>,
    ) -> Result<(), EngineError> {
        for (shard, first_error) in replies {
            if let Some(err) = first_error {
                return Err(EngineError::Request {
                    shard,
                    index: err.index,
                    error: err.error,
                });
            }
        }
        Ok(())
    }

    /// The substrate analogue of [`surface_first_error`]: integrity
    /// failures rank below request errors only because both are sticky —
    /// whichever exists keeps surfacing until shutdown.
    ///
    /// [`surface_first_error`]: Engine::surface_first_error
    pub(crate) fn surface_substrate_error<'a>(
        replies: impl Iterator<Item = (usize, &'a Option<String>)>,
    ) -> Result<(), EngineError> {
        for (shard, first) in replies {
            if let Some(detail) = first {
                return Err(EngineError::Substrate {
                    shard,
                    detail: detail.clone(),
                });
            }
        }
        Ok(())
    }

    pub(crate) fn aggregate(replies: Vec<ShardReply>) -> Result<EngineStats, EngineError> {
        Self::surface_first_error(replies.iter().map(|r| (r.stats.shard, &r.first_error)))?;
        Self::surface_substrate_error(
            replies
                .iter()
                .map(|r| (r.stats.shard, &r.first_substrate_error)),
        )?;
        Ok(EngineStats {
            per_shard: replies.into_iter().map(|r| r.stats).collect(),
        })
    }

    /// Waits until every enqueued request has been served and all deferred
    /// work is complete (each shard runs `Reallocator::quiesce`, draining
    /// e.g. the deamortized structure's in-progress flush), then returns
    /// the aggregated stats. Surfaces the first request-level error, if
    /// any shard saw one. An [auto-rebalance
    /// policy](Engine::set_auto_rebalance) observes the stats produced
    /// here and may start an online session before this returns.
    pub fn quiesce(&mut self) -> Result<EngineStats, EngineError> {
        let stats = self.quiesce_inner()?;
        self.policy_observe(&stats)?;
        Ok(stats)
    }

    /// [`quiesce`](Engine::quiesce) without the policy hook — what internal
    /// machinery (and the policy trigger itself) uses, so an observation
    /// can never recursively trigger another observation.
    fn quiesce_inner(&mut self) -> Result<EngineStats, EngineError> {
        let pins = self.router_pins();
        let replies = self.barrier(|shard, reply| Command::Quiesce {
            reply,
            pins: pins[shard].clone(),
        })?;
        Self::aggregate(replies)
    }

    /// Per-shard lists of the ids the routing table explicitly assigns
    /// (empty everywhere without a WAL — nothing would persist them). Sent
    /// with checkpoint barriers so each shard's checkpoint records which of
    /// its objects sit off the router's rendezvous fallback; recovery can
    /// then rebuild the assignment table from the shard files alone.
    pub(crate) fn router_pins(&self) -> Vec<Vec<ObjectId>> {
        let mut pins = vec![Vec::new(); self.senders.len()];
        if self.wal_dir.is_some() {
            for (id, shard) in self.router.assigned_ids() {
                if shard < pins.len() {
                    pins[shard].push(id);
                }
            }
        }
        pins
    }

    /// Waits until every enqueued request has been served and returns the
    /// aggregated stats, without forcing deferred work. Surfaces the first
    /// request-level error, if any shard saw one. Like
    /// [`quiesce`](Engine::quiesce), feeds the [auto-rebalance
    /// policy](Engine::set_auto_rebalance), if one is set.
    pub fn snapshot(&mut self) -> Result<EngineStats, EngineError> {
        let stats = self.snapshot_inner()?;
        self.policy_observe(&stats)?;
        Ok(stats)
    }

    /// [`snapshot`](Engine::snapshot) without the policy hook.
    fn snapshot_inner(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(|_, reply| Command::Snapshot(reply))?;
        Self::aggregate(replies)
    }

    /// Current placements of all live objects, per shard, sorted by id.
    /// (A barrier, like `snapshot`.) Objects whose delete is deferred
    /// inside a quiescing structure are not listed.
    pub fn extents(&mut self) -> Result<Vec<Vec<(ObjectId, Extent)>>, EngineError> {
        self.barrier(|_, reply| Command::Extents(reply))
    }

    /// Scrapes the cumulative observability surface (a barrier, like
    /// [`snapshot`](Engine::snapshot)): aggregate [`EngineStats`], every
    /// shard's latency/stall/commit histograms and sim-time lanes, and the
    /// retained tail of the structural event journal.
    ///
    /// Unlike the stats barriers, this does **not** surface sticky
    /// request/substrate errors — a metrics scrape must be able to observe
    /// a degraded fleet. `Err` here only ever means a shard is down.
    /// Scraping does not feed the auto-rebalance policy.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, EngineError> {
        let replies = self.barrier(|_, reply| Command::Metrics(reply))?;
        let mut per_shard = Vec::with_capacity(replies.len());
        let mut stats = Vec::with_capacity(replies.len());
        for (reply, mut metrics) in replies {
            if let Some(stall) = self.stalls.get(metrics.shard) {
                metrics.intake_stall_ns = stall.snapshot();
            }
            stats.push(reply.stats);
            per_shard.push(metrics);
        }
        self.scrapes += 1;
        let snapshot = MetricsSnapshot {
            scrape: self.scrapes,
            device: self.config.device.filter(|_| self.config.telemetry),
            stats: EngineStats { per_shard: stats },
            per_shard,
            events: self.events.snapshot(),
            events_dropped: self.events.dropped(),
            steal: StealStats::default(),
        };
        self.last_metrics = Some(snapshot.clone());
        Ok(snapshot)
    }

    /// [`metrics`](Engine::metrics), reported as the change since the
    /// previous scrape: counters, histograms, and sim time subtract; gauges
    /// keep their current values (see [`MetricsSnapshot::delta_since`]).
    /// The first scrape — and any scrape after a
    /// [`resize`](Engine::resize_shards) adds shards — reports full values
    /// for shards with no prior reading.
    pub fn metrics_delta(&mut self) -> Result<MetricsSnapshot, EngineError> {
        let prev = self.last_metrics.take();
        let current = self.metrics()?;
        Ok(match prev {
            Some(prev) => current.delta_since(&prev),
            None => current,
        })
    }

    /// Whether every shard runs a byte-carrying substrate
    /// ([`EngineConfig::substrate`]).
    pub fn substrate_enabled(&self) -> bool {
        self.config.substrate.is_some()
    }

    /// Barrier: every shard runs its full substrate verification scan
    /// *now*, regardless of the configured cadence — extents checked
    /// against the reallocator, every live object's bytes re-checksummed.
    /// Surfaces the first failure as [`EngineError::Substrate`]; with no
    /// substrate configured, returns an empty report list.
    pub fn verify_substrate(&mut self) -> Result<Vec<SubstrateReport>, EngineError> {
        if !self.substrate_enabled() {
            return Ok(Vec::new());
        }
        let reports: Vec<SubstrateReport> = self
            .barrier(|_, reply| Command::VerifySubstrate(reply))?
            .into_iter()
            .flatten()
            .collect();
        Self::surface_substrate_error(reports.iter().map(|r| (r.shard, &r.error)))?;
        Ok(reports)
    }

    /// Barrier: every live object's physical bytes, per shard, sorted by
    /// id, as read from the shard substrates. Empty inner lists without a
    /// substrate. A test/debug aid — it copies `O(V)` bytes across the
    /// channels; byte-level *checking* should go through
    /// [`verify_substrate`](Engine::verify_substrate) instead.
    pub fn substrate_contents(&mut self) -> Result<Vec<crate::ShardBytes>, EngineError> {
        self.barrier(|_, reply| Command::DumpSubstrate(reply))
    }

    /// Fault injection for durability/integrity testing: flip one byte of
    /// the lowest-id live object's substrate cells on `shard` (checksum
    /// left stale, so the next verification scan must fail — and, being
    /// sticky, keep failing). Returns the damaged id, or `None` when the
    /// shard has no substrate or no live objects. Recovery rebuilds the
    /// shard's bytes from scratch, which is how the sticky error is
    /// legitimately cleared.
    pub fn inject_substrate_corruption(
        &mut self,
        shard: usize,
    ) -> Result<Option<ObjectId>, EngineError> {
        self.flush_shard(shard)?;
        let (tx, rx) = mpsc::channel();
        self.send(shard, Command::CorruptSubstrate(tx))?;
        rx.recv().map_err(|_| EngineError::ShardDown { shard })
    }

    /// Fault injection for integrity testing: damage one byte of the next
    /// cross-shard transfer payload *after* its source acks it, so the
    /// receiving shard's checksum verification must refuse the object and
    /// the active migration (barrier or online session) must abort with
    /// routing still matching physical ownership. One-shot: the armed
    /// fault fires on the next migration batch that ships a payload and
    /// disarms. No effect without a substrate (there is no payload to
    /// damage).
    pub fn inject_transfer_corruption(&mut self) {
        self.corrupt_next_transfer = true;
    }

    /// Replays a whole workload: splits it into per-shard streams with
    /// [`workload_gen::shard::split_with`] under the engine's router
    /// (per-object request order is preserved — an object's requests all
    /// route to the same shard, in sequence order) and feeds the streams
    /// round-robin, one batch per shard per round, so every queue stays
    /// busy instead of one shard draining while the rest idle.
    ///
    /// Returns when everything is *enqueued*; follow with
    /// [`quiesce`](Engine::quiesce) or [`snapshot`](Engine::snapshot) to
    /// wait for completion and check for request errors.
    ///
    /// While an [online rebalance](Engine::rebalance_online) is active the
    /// pre-split fast path is unsound (a migration step may re-home an id
    /// after its stream was split), so requests are routed one at a time at
    /// enqueue — which also paces the session: one bounded migration batch
    /// per dispatched serving batch.
    pub fn drive(&mut self, workload: &Workload) -> Result<(), EngineError> {
        if self.session.is_some() {
            for &req in &workload.requests {
                self.enqueue(req)?;
            }
            return Ok(());
        }
        // Order wrt. anything already trickled in via insert/delete.
        self.flush()?;
        let shards = self.senders.len();
        let router = self.router.as_ref();
        let parts = workload_gen::shard::split_with(workload, shards, |id| router.route(id));
        self.drive_streams(parts.into_iter().map(|p| p.requests).collect())
    }

    /// Feeds pre-split per-shard request streams (`streams[s]` belongs to
    /// shard `s`, in order): one full batch per shard per round, each round
    /// dispatched deepest-backlog-first, so the stream with the most work
    /// left hits its queue soonest and no worker idles while another's
    /// stream drains. Shared by [`drive`](Engine::drive) and the
    /// crash-recovery reseed, which splits by journaled ownership instead
    /// of routing.
    ///
    /// # Panics
    /// Panics if there are more streams than shards.
    pub(crate) fn drive_streams(&mut self, streams: Vec<Vec<Request>>) -> Result<(), EngineError> {
        assert!(
            streams.len() <= self.senders.len(),
            "more streams than shards"
        );
        let batch = self.config.batch;
        let mut cursor = vec![0usize; streams.len()];
        let mut order: Vec<usize> = (0..streams.len()).collect();
        loop {
            order.sort_by_key(|&s| std::cmp::Reverse(streams[s].len() - cursor[s]));
            let mut done = true;
            for &shard in &order {
                let reqs = &streams[shard];
                if cursor[shard] < reqs.len() {
                    done = false;
                    let end = (cursor[shard] + batch).min(reqs.len());
                    self.send(shard, Command::Batch(reqs[cursor[shard]..end].to_vec()))?;
                    cursor[shard] = end;
                }
            }
            if done {
                return Ok(());
            }
        }
    }

    /// Cross-shard rebalance: quiesces, measures per-shard live volumes,
    /// plans migrations that equalize them (greedy largest-first from over-
    /// to under-full shards — see [`crate::rebalance`]), executes them as
    /// migrate-out/migrate-in barriers, updates the routing table for every
    /// moved id at the closing barrier, then optionally has each shard run
    /// the Theorem 2.7 defragmenter over its post-migration layout. The
    /// defrag pass *plans and prices*: it computes the cost-oblivious
    /// compaction schedule (the moves a substrate replay would apply),
    /// records those moves in the shard ledger, and reports the
    /// `(1+ε)V + ∆` space bound in [`RebalanceReport::defrag`] — the
    /// serving structure itself stays as Theorem 2.1 maintains it, so
    /// [`EngineStats::footprint`] does not shrink from the pass.
    ///
    /// Requires a router with an assignment table (see
    /// [`Engine::with_router`]); fails with [`EngineError::FixedRouting`]
    /// otherwise. Per-object request order is preserved: the engine is
    /// quiesced throughout, and requests arriving after the rebalance route
    /// to the object's new owner.
    ///
    /// An active [online session](Engine::rebalance_online) is stepped to
    /// completion first (its report stays claimable via
    /// [`take_rebalance_report`](Engine::take_rebalance_report)), so the
    /// barrier plan never fights a half-executed online plan.
    ///
    /// # Panics
    /// Panics if `opts.defrag_eps` is outside the paper's `0 < ε ≤ 1/2`.
    pub fn rebalance(&mut self, opts: RebalanceOptions) -> Result<RebalanceReport, EngineError> {
        Self::validate_defrag_eps(&opts);
        while self.step_session()? {}
        let (before, plan) = self.plan_migrations(true)?;
        self.events
            .begin(None, "rebalance.barrier", plan.len() as u64);
        let outcome = self.migrate(&plan)?;
        // The routing-table update is atomic with respect to serving: the
        // engine is quiesced, so no request can observe a half-applied map.
        // Only completed transfers are pinned, and pinning happens before
        // any error surfaces, so routing always matches physical ownership
        // even if a broken reallocator rejects one transfer mid-plan.
        for &(id, _, to) in &outcome.completed {
            self.router.assign(id, to);
        }
        outcome.surface()?;
        let (migrated_objects, migrated_volume) = outcome.totals();
        let defrag = match opts.defrag_eps {
            Some(eps) => self.barrier(|_, reply| Command::Defrag { eps, reply })?,
            None => Vec::new(),
        };
        let after = self.quiesce_inner()?;
        self.events.end(None, "rebalance.barrier", migrated_volume);
        Ok(RebalanceReport {
            before,
            after,
            migrated_objects,
            migrated_volume,
            defrag,
            mode: RebalanceMode::Barrier,
            batches: 1,
        })
    }

    fn validate_defrag_eps(opts: &RebalanceOptions) {
        if let Some(eps) = opts.defrag_eps {
            assert!(
                eps > 0.0 && eps <= 0.5,
                "the paper requires 0 < ε ≤ 1/2, got {eps}"
            );
        }
    }

    /// The shared front half of both rebalance modes: barrier (quiesce or
    /// snapshot) for the opening stats, scan extents, plan the greedy
    /// largest-first migration set, and refuse a non-empty plan through a
    /// router that cannot pin ids.
    fn plan_migrations(
        &mut self,
        quiesce: bool,
    ) -> Result<(EngineStats, Vec<Migration>), EngineError> {
        let before = if quiesce {
            self.quiesce_inner()?
        } else {
            self.snapshot_inner()?
        };
        let extents = self.extents()?;
        let shards: Vec<Vec<(ObjectId, u64)>> = extents
            .iter()
            .map(|list| list.iter().map(|&(id, e)| (id, e.len)).collect())
            .collect();
        let plan = plan_rebalance(&shards);
        if !plan.is_empty() && !self.router.supports_assignment() {
            return Err(EngineError::FixedRouting {
                router: self.router.name(),
            });
        }
        Ok((before, plan))
    }

    /// Online (incremental) rebalance: plans the same greedy largest-first
    /// migration set as [`rebalance`](Engine::rebalance), but executes it
    /// in bounded batches (at most `opts.batch_objects` objects each)
    /// *interleaved with serving* instead of inside one fleet-wide quiesce.
    /// Each object follows a two-phase protocol:
    ///
    /// 1. **freeze** — a `MigrateOut` joins the source shard's FIFO command
    ///    stream (pending batches are flushed first), so every request
    ///    enqueued before it is served before the object leaves;
    /// 2. **copy** — the source acks the released `(id, size)`, the target
    ///    adopts it via `MigrateIn`;
    /// 3. **flip** — the [`TableRouter`](realloc_common::TableRouter)
    ///    assignment is updated, only for acked transfers;
    /// 4. **resume** — subsequent requests route to the new owner and
    ///    queue behind the `MigrateIn`.
    ///
    /// No id is ever live on two shards, and a mid-session failure leaves
    /// routing consistent with physical ownership (exactly as in barrier
    /// mode: completed transfers are pinned before any error surfaces;
    /// everything else stays home).
    ///
    /// This call only *plans* (two barriers: a stats snapshot and an
    /// extents scan) and returns the [`OnlinePlan`]. The session then
    /// drains as a side effect of serving — every dispatched serving batch
    /// (and every [`drive`](Engine::drive) round) migrates one bounded
    /// batch — or explicitly via [`rebalance_step`](Engine::rebalance_step).
    /// When the last batch lands (plus the optional defrag pass), the
    /// completion [`RebalanceReport`] becomes claimable via
    /// [`take_rebalance_report`](Engine::take_rebalance_report).
    ///
    /// Fails with [`EngineError::RebalanceInProgress`] if a session is
    /// already active, and [`EngineError::FixedRouting`] if the plan is
    /// non-empty but the router cannot pin ids.
    ///
    /// # Panics
    /// Panics if `opts.defrag_eps` is outside the paper's `0 < ε ≤ 1/2`.
    pub fn rebalance_online(&mut self, opts: RebalanceOptions) -> Result<OnlinePlan, EngineError> {
        Self::validate_defrag_eps(&opts);
        if self.session.is_some() {
            return Err(EngineError::RebalanceInProgress);
        }
        let (before, plan) = self.plan_migrations(false)?;
        let batch_objects = opts.batch_objects.max(1);
        let summary = OnlinePlan {
            objects: plan.len() as u64,
            volume: plan.iter().map(|m| m.size).sum(),
            batches: (plan.len() as u64).div_ceil(batch_objects as u64),
        };
        self.session = Some(OnlineSession {
            plan: plan.into(),
            batch_objects,
            defrag_eps: opts.defrag_eps,
            before,
            batches: 0,
            migrated_objects: 0,
            migrated_volume: 0,
        });
        self.events
            .begin(None, "rebalance.session", summary.objects);
        Ok(summary)
    }

    /// Whether an [online rebalance](Engine::rebalance_online) session is
    /// currently draining.
    pub fn rebalance_active(&self) -> bool {
        self.session.is_some()
    }

    /// Advances the active online session by one bounded migration batch.
    /// Returns whether a session is still active afterwards (`false` also
    /// when there was none). Serving traffic steps the session implicitly;
    /// call this directly to drain a session faster than traffic would, or
    /// to finish it during an idle period:
    ///
    /// ```no_run
    /// # fn demo(engine: &mut realloc_engine::Engine) -> Result<(), realloc_engine::EngineError> {
    /// while engine.rebalance_step()? {}
    /// let report = engine.take_rebalance_report().expect("session completed");
    /// # Ok(()) }
    /// ```
    pub fn rebalance_step(&mut self) -> Result<bool, EngineError> {
        self.step_session()
    }

    /// The report of the most recently completed
    /// [online session](Engine::rebalance_online), if one finished since
    /// the last call. (Sessions complete inside serving calls, so the
    /// report is parked here rather than returned from any one of them.)
    pub fn take_rebalance_report(&mut self) -> Option<RebalanceReport> {
        self.finished.take()
    }

    /// Executes one bounded batch of the active session; finishes the
    /// session (defrag pass, closing stats, report parking, policy
    /// back-off) when the plan runs dry. Returns whether a session remains
    /// active. On a migration failure the session is aborted: completed
    /// transfers are already pinned, unexecuted plan entries are dropped
    /// (their objects simply stay home), and the error surfaces.
    fn step_session(&mut self) -> Result<bool, EngineError> {
        let Some(mut session) = self.session.take() else {
            return Ok(false);
        };
        let batch: Vec<Migration> = {
            let take = session.batch_objects.min(session.plan.len());
            session.plan.drain(..take).collect()
        };
        if !batch.is_empty() {
            // FIFO is the freeze: any buffered request for a migrating
            // object must reach its source ahead of the MigrateOut. Only
            // the batch's *source* shards need it — a migrating id still
            // routes to its source until the flip, so no other shard's
            // buffer can hold a request for one — and flushing just those
            // keeps the rest of the fleet's channel batching intact.
            let mut sources: Vec<usize> = batch.iter().map(|m| m.from).collect();
            sources.sort_unstable();
            sources.dedup();
            for shard in sources {
                self.flush_shard(shard)?;
            }
            // One span per freeze → copy → flip → resume round.
            self.events
                .begin(None, "rebalance.batch", batch.len() as u64);
            let outcome = self.migrate(&batch)?;
            for &(id, _, to) in &outcome.completed {
                self.router.assign(id, to);
            }
            session.batches += 1;
            let (objects, volume) = outcome.totals();
            session.migrated_objects += objects;
            session.migrated_volume += volume;
            self.events.end(None, "rebalance.batch", volume);
            if let Err(err) = outcome.surface() {
                // Abort: the session is not restored, so the remaining
                // plan is dropped with routing consistent. Back the policy
                // off so it does not immediately re-fire into a broken
                // fleet. The session span stays unmatched; the abort event
                // carries what was left undone.
                self.events
                    .instant(None, "rebalance.abort", session.plan.len() as u64);
                if let Some((policy, _)) = &mut self.auto {
                    policy.note_rebalanced();
                }
                return Err(err);
            }
        }
        if !session.plan.is_empty() {
            self.session = Some(session);
            return Ok(true);
        }
        let defrag = match session.defrag_eps {
            Some(eps) => self.barrier(|_, reply| Command::Defrag { eps, reply })?,
            None => Vec::new(),
        };
        let after = self.snapshot_inner()?;
        self.events
            .end(None, "rebalance.session", session.migrated_volume);
        self.finished = Some(RebalanceReport {
            before: session.before,
            after,
            migrated_objects: session.migrated_objects,
            migrated_volume: session.migrated_volume,
            defrag,
            mode: RebalanceMode::Online,
            batches: session.batches,
        });
        if let Some((policy, _)) = &mut self.auto {
            policy.note_rebalanced();
        }
        Ok(false)
    }

    /// Installs an auto-rebalance policy: every [`quiesce`](Engine::quiesce)
    /// / [`snapshot`](Engine::snapshot) feeds its imbalance ratio to
    /// `policy`, and when the policy fires the engine starts an
    /// [online session](Engine::rebalance_online) with `opts` by itself.
    /// Observations are skipped while a session is draining, and the
    /// policy's hysteresis starts counting when one completes.
    ///
    /// The policy is only consulted through a router that supports
    /// assignment; behind a frozen hash router it stays silent — there is
    /// nothing a rebalance could move, so firing would only produce
    /// [`EngineError::FixedRouting`] noise at barriers.
    pub fn set_auto_rebalance(&mut self, policy: RebalancePolicy, opts: RebalanceOptions) {
        Self::validate_defrag_eps(&opts);
        self.auto = Some((policy, opts));
    }

    /// Removes the auto-rebalance policy (an active session still drains),
    /// returning it — its streak/cooldown state can be inspected or
    /// re-installed later.
    pub fn clear_auto_rebalance(&mut self) -> Option<RebalancePolicy> {
        self.auto.take().map(|(policy, _)| policy)
    }

    /// The installed auto-rebalance policy, if any.
    pub fn auto_rebalance(&self) -> Option<&RebalancePolicy> {
        self.auto.as_ref().map(|(policy, _)| policy)
    }

    /// Feeds one barrier's stats to the auto-rebalance policy and starts an
    /// online session if it fires.
    fn policy_observe(&mut self, stats: &EngineStats) -> Result<(), EngineError> {
        if self.session.is_some() || !self.router.supports_assignment() {
            return Ok(());
        }
        let Some((policy, opts)) = &mut self.auto else {
            return Ok(());
        };
        if policy.observe(stats.imbalance_ratio()) {
            let opts = *opts;
            self.rebalance_online(opts)?;
        }
        Ok(())
    }

    /// Resizes the live engine to `shards` shards, reusing the rebalance
    /// migration machinery: quiesces, spawns workers for any new shards
    /// (built by `factory`, like at construction), migrates every object
    /// whose route changes under the new shard count (for a
    /// [`TableRouter`](realloc_common::TableRouter) the rendezvous fallback
    /// keeps that near `1/n` of the population on grows), re-targets the
    /// router, and retires drained workers on shrinks — their stats and
    /// ledgers are returned by the eventual [`shutdown`](Engine::shutdown).
    ///
    /// Works with any router (shrinking a hash-routed engine simply migrates
    /// more objects). Per-object request order is preserved: everything
    /// happens inside one quiesce barrier. An active
    /// [online session](Engine::rebalance_online) is stepped to completion
    /// first, so the resize plan sees settled routing.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn resize_shards<F>(
        &mut self,
        shards: usize,
        mut factory: F,
    ) -> Result<ResizeReport, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(shards > 0, "engine needs at least one shard");
        while self.step_session()? {}
        let from = self.config.shards;
        self.quiesce_inner()?;
        if shards == from {
            return Ok(ResizeReport {
                from,
                to: shards,
                migrated_objects: 0,
                migrated_volume: 0,
            });
        }
        self.events.begin(None, "resize", shards as u64);
        let extents = self.extents()?;
        let mut plan = Vec::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, e) in list {
                let to = self.router.route_at(id, shards);
                debug_assert!(to < shards, "router resize preview out of range");
                if to != shard {
                    plan.push(Migration {
                        id,
                        size: e.len,
                        from: shard,
                        to,
                    });
                }
            }
        }
        for shard in from..shards {
            self.spawn_shard(shard, factory(shard), 0)?;
        }
        let outcome = self.migrate(&plan)?;
        if outcome.first_error.is_some() {
            // Partial failure (only possible with a broken reallocator):
            // routing must be made to match physical ownership before the
            // error surfaces, and the fleet cannot shrink — a dying shard
            // may still hold what it refused to release. Adopt the larger
            // of the two counts so every owner stays routable, then pin
            // both the transfers that landed (to their targets) and the
            // objects whose source refused to let go (back to it, since
            // the re-targeted fallback may now point elsewhere). A router
            // without an assignment table cannot be reconciled — the
            // affected ids route wrongly until shutdown; their extents and
            // ledgers remain readable.
            let keep = shards.max(from);
            self.router.set_shards(keep);
            self.config.shards = keep;
            if self.router.supports_assignment() {
                for &(id, _, to) in &outcome.completed {
                    if self.router.route(id) != to {
                        self.router.assign(id, to);
                    }
                }
                for &(id, source) in &outcome.stranded {
                    if self.router.route(id) != source {
                        self.router.assign(id, source);
                    }
                }
            }
            outcome.surface()?;
        }
        self.router.set_shards(shards);
        for &(id, _, to) in &outcome.completed {
            // Pin only where the new fallback disagrees (keeps the table
            // minimal; a fresh TableRouter stays assignment-free).
            if self.router.route(id) != to {
                self.router.assign(id, to);
            }
        }
        let (migrated_objects, migrated_volume) = outcome.totals();
        // Retire drained workers (highest shard first, so indices stay
        // aligned with the vectors we pop from).
        for shard in (shards..from).rev() {
            let (tx, rx) = mpsc::channel();
            // A retired shard is drained, so its closing checkpoint pins
            // nothing and records an empty layout.
            self.send(
                shard,
                Command::Finish {
                    reply: tx,
                    pins: Vec::new(),
                },
            )?;
            let fin = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            debug_assert_eq!(fin.stats.live_count, 0, "retired shard still holds objects");
            self.retired.push(fin);
            self.senders.pop();
            if let Some(worker) = self.workers.pop() {
                let _ = worker.join();
            }
            self.stalls.pop();
            let leftover = self.pending.pop();
            debug_assert!(leftover.is_none_or(|p| p.is_empty()));
        }
        self.config.shards = shards;
        self.events.end(None, "resize", migrated_volume);
        Ok(ResizeReport {
            from,
            to: shards,
            migrated_objects,
            migrated_volume,
        })
    }

    /// Executes a migration plan: all migrate-outs first (each source shard
    /// drains before replying, so no id is ever live on two shards), then
    /// migrate-ins for exactly the objects their sources released — at the
    /// sizes their sources *acked*, not the sizes the planner snapshotted,
    /// so an object resized by serving traffic mid-session transfers
    /// faithfully. Both halves are barriers with per-object acks, so one
    /// broken reallocator cannot desync the fleet: unreleased objects stay
    /// home (reported as `stranded`, so callers that changed the routing
    /// basis can re-pin them), and everything else completes. The first
    /// rejection is remembered in the outcome — the caller surfaces it only
    /// *after* making the routing table match physical ownership.
    fn migrate(&mut self, plan: &[Migration]) -> Result<MigrationOutcome, EngineError> {
        let mut outcome = MigrationOutcome::default();
        if plan.is_empty() {
            return Ok(outcome);
        }
        let n = self.senders.len();
        let mut outs: Vec<Vec<(ObjectId, u64)>> = vec![Vec::new(); n];
        for m in plan {
            // One globally unique sequence number per planned transfer,
            // journaled by both halves — recovery pairs them across logs.
            let xfer = self.xfer_seq;
            self.xfer_seq += 1;
            outs[m.from].push((m.id, xfer));
        }
        let mut waiting = Vec::new();
        for (shard, ids) in outs.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.send(shard, Command::MigrateOut { ids, reply: tx })?;
            waiting.push((shard, rx));
        }
        let mut released: HashMap<ObjectId, Transfer> = HashMap::new();
        for (shard, rx) in waiting {
            let (reply, acks) = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            outcome.note_error(shard, reply.first_error);
            released.extend(acks.into_iter().map(|t| (t.id, t)));
        }
        let released_sizes: HashMap<ObjectId, u64> =
            released.values().map(|t| (t.id, t.size)).collect();

        // Armed fault injection: damage one byte of one in-flight payload
        // (lowest id, for determinism) after its source acked it — the
        // receiving shard's checksum verification must refuse the object.
        if self.corrupt_next_transfer {
            if let Some(transfer) = released
                .values_mut()
                .filter(|t| t.payload.as_ref().is_some_and(|p| !p.bytes.is_empty()))
                .min_by_key(|t| t.id)
            {
                let payload = transfer.payload.as_mut().expect("filtered above");
                payload.bytes[0] ^= 0x01;
                self.corrupt_next_transfer = false;
            }
        }

        let mut ins: Vec<Vec<Transfer>> = vec![Vec::new(); n];
        for m in plan {
            if let Some(transfer) = released.remove(&m.id) {
                ins[m.to].push(transfer);
            }
        }
        let mut waiting = Vec::new();
        for (shard, objects) in ins.into_iter().enumerate() {
            if objects.is_empty() {
                continue;
            }
            let (tx, rx) = mpsc::channel();
            self.send(shard, Command::MigrateIn { objects, reply: tx })?;
            waiting.push((shard, rx));
        }
        let mut adopted = HashSet::new();
        for (shard, rx) in waiting {
            let (reply, ids) = rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            outcome.note_error(shard, reply.first_error);
            adopted.extend(ids);
        }

        for m in plan {
            if adopted.contains(&m.id) {
                outcome.completed.push((m.id, released_sizes[&m.id], m.to));
            } else if !released_sizes.contains_key(&m.id) {
                outcome.stranded.push((m.id, m.from));
            }
        }
        Ok(outcome)
    }

    /// Final barrier: serves everything still queued, stops all workers,
    /// joins their threads, and returns each shard's stats *and full
    /// ledger* — the per-shard move logs that post-hoc cost pricing needs.
    /// Shards retired by a shrinking [`resize_shards`](Engine::resize_shards)
    /// follow the live shards, so no history is lost. Surfaces the first
    /// request-level error instead, if any shard saw one. An active
    /// [online session](Engine::rebalance_online) is stepped to completion
    /// first — a shutdown must not strand half a migration plan.
    pub fn shutdown(mut self) -> Result<Vec<ShardFinal>, EngineError> {
        while self.step_session()? {}
        let pins = self.router_pins();
        let mut finals = self.barrier(|shard, reply| Command::Finish {
            reply,
            pins: pins[shard].clone(),
        })?;
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        finals.append(&mut self.retired);
        Self::surface_first_error(finals.iter().map(|f| (f.stats.shard, &f.first_error)))?;
        Self::surface_substrate_error(
            finals
                .iter()
                .map(|f| (f.stats.shard, &f.first_substrate_error)),
        )?;
        Ok(finals)
    }

    /// Simulated `kill -9` (testing): tears the fleet down with **no**
    /// final barrier — no quiesce, no checkpoint, no truncation. Commands
    /// already queued on the channels still drain (each worker loops until
    /// its channel disconnects), so the crash point is deterministic: state
    /// the WAL group-committed survives, everything after it is lost. Pair
    /// with [`Engine::recover`] on the same directory to rebuild.
    pub fn crash(mut self) {
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the channels so workers fall out of their loops, then
        // join to avoid leaking threads past the engine's lifetime.
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_common::{Outcome, Reallocator, TableRouter};
    use std::collections::HashMap;

    /// A minimal in-test reallocator: bump allocation, never moves, never
    /// reuses space. Enough to exercise every engine path deterministically.
    #[derive(Default)]
    struct Bump {
        extents: HashMap<ObjectId, Extent>,
        end: u64,
        volume: u64,
        delta: u64,
    }

    impl Reallocator for Bump {
        fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
            if size == 0 {
                return Err(ReallocError::ZeroSize);
            }
            if self.extents.contains_key(&id) {
                return Err(ReallocError::DuplicateId(id));
            }
            self.extents.insert(id, Extent::new(self.end, size));
            self.end += size;
            self.volume += size;
            self.delta = self.delta.max(size);
            Ok(Outcome::empty())
        }
        fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
            let e = self
                .extents
                .remove(&id)
                .ok_or(ReallocError::UnknownId(id))?;
            self.volume -= e.len;
            Ok(Outcome::empty())
        }
        fn extent_of(&self, id: ObjectId) -> Option<Extent> {
            self.extents.get(&id).copied()
        }
        fn live_volume(&self) -> u64 {
            self.volume
        }
        fn structure_size(&self) -> u64 {
            self.end
        }
        fn footprint(&self) -> u64 {
            self.end
        }
        fn max_object_size(&self) -> u64 {
            self.delta
        }
        fn name(&self) -> &'static str {
            "bump"
        }
        fn live_count(&self) -> usize {
            self.extents.len()
        }
    }

    fn bump_engine(shards: usize) -> Engine {
        Engine::new(EngineConfig::with_shards(shards), |_| {
            Box::new(Bump::default())
        })
    }

    fn table_engine(shards: usize) -> Engine {
        Engine::with_router(
            EngineConfig::with_shards(shards),
            Box::new(TableRouter::new(shards)),
            |_| Box::new(Bump::default()),
        )
    }

    #[test]
    fn serves_and_aggregates() {
        let mut e = bump_engine(3);
        for i in 0..100u64 {
            e.insert(ObjectId(i), 1 + i % 7).unwrap();
        }
        for i in 0..50u64 {
            e.delete(ObjectId(i)).unwrap();
        }
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.shards(), 3);
        assert_eq!(stats.requests(), 150);
        assert_eq!(stats.live_count(), 50);
        let expect: u64 = (50..100).map(|i| 1 + i % 7).sum();
        assert_eq!(stats.live_volume(), expect);
        assert_eq!(stats.errors(), 0);
        // Every request landed on the shard its id hashes to.
        let per_shard_requests: u64 = stats.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(per_shard_requests, 150);
    }

    #[test]
    fn small_batches_flush_at_barriers() {
        // 5 requests with batch=256 stay pending until the barrier.
        let mut e = bump_engine(2);
        for i in 0..5u64 {
            e.insert(ObjectId(i), 8).unwrap();
        }
        let stats = e.snapshot().unwrap();
        assert_eq!(stats.requests(), 5);
        assert_eq!(stats.live_volume(), 40);
    }

    #[test]
    fn request_errors_surface_at_barriers_and_do_not_kill_shards() {
        let mut e = bump_engine(2);
        e.insert(ObjectId(1), 8).unwrap();
        e.insert(ObjectId(1), 8).unwrap(); // duplicate — same shard by hash
        e.insert(ObjectId(2), 4).unwrap();
        let err = e.snapshot().unwrap_err();
        match err {
            EngineError::Request {
                error: ReallocError::DuplicateId(id),
                ..
            } => {
                assert_eq!(id, ObjectId(1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The shard kept serving past the bad request.
        let shard1 = e.shard_of(ObjectId(1));
        let finals = e.shutdown().unwrap_err();
        assert!(matches!(finals, EngineError::Request { shard, .. } if shard == shard1));
    }

    #[test]
    fn extents_match_routing() {
        let mut e = bump_engine(4);
        for i in 0..40u64 {
            e.insert(ObjectId(i), 4).unwrap();
        }
        let extents = e.extents().unwrap();
        assert_eq!(extents.len(), 4);
        let mut seen = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, extent) in list {
                assert_eq!(e.shard_of(id), shard, "{id} listed on wrong shard");
                assert_eq!(extent.len, 4);
                seen += 1;
            }
            // Sorted by id within the shard.
            assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(seen, 40, "every live object listed exactly once");
    }

    #[test]
    fn shutdown_returns_per_shard_ledgers() {
        let mut e = bump_engine(2);
        for i in 0..20u64 {
            e.insert(ObjectId(i), 2).unwrap();
        }
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 2);
        let total: usize = finals.iter().map(|f| f.ledger.len()).sum();
        assert_eq!(total, 20, "every request ledgered on exactly one shard");
        for f in &finals {
            assert_eq!(f.ledger.len() as u64, f.stats.requests);
        }
    }

    #[test]
    fn ledgerless_engine_keeps_stats_but_not_history() {
        let drive = |config: EngineConfig| {
            let mut e = Engine::new(config, |_| Box::new(Bump::default()) as _);
            for i in 0..60u64 {
                e.insert(ObjectId(i), 1 + i % 5).unwrap();
            }
            for i in 0..30u64 {
                e.delete(ObjectId(i)).unwrap();
            }
            e.shutdown().unwrap()
        };
        let with = drive(EngineConfig::with_shards(2));
        let without = drive(EngineConfig::with_shards(2).ledgerless());
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(
                a.stats, b.stats,
                "stats must not depend on ledger recording"
            );
            assert_eq!(a.ledger.len() as u64, a.stats.requests);
            assert!(b.ledger.is_empty(), "ledgerless shard kept history");
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.shards > 0 && c.batch > 0 && c.queue_depth > 0);
        assert_eq!(EngineConfig::with_shards(7).shards, 7);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::with_shards(0);
    }

    #[test]
    fn error_display() {
        let e = EngineError::Request {
            shard: 2,
            index: 7,
            error: ReallocError::UnknownId(ObjectId(9)),
        };
        assert_eq!(
            e.to_string(),
            "shard 2 rejected its request #7: obj#9 is not active"
        );
        assert_eq!(
            EngineError::ShardDown { shard: 1 }.to_string(),
            "shard 1 worker is gone"
        );
        assert_eq!(
            EngineError::FixedRouting { router: "hash" }.to_string(),
            "router \"hash\" cannot pin ids to shards; rebalancing needs a table router"
        );
        assert_eq!(
            EngineError::RebalanceInProgress.to_string(),
            "an online rebalance session is already in progress"
        );
    }

    /// Loads shard 0 of a table-routed engine far above the others by
    /// deleting everything routed elsewhere.
    fn skew_toward_shard_zero(e: &mut Engine, ids: u64) {
        for i in 0..ids {
            e.insert(ObjectId(i), 8).unwrap();
        }
        let doomed: Vec<ObjectId> = (0..ids)
            .map(ObjectId)
            .filter(|&id| e.shard_of(id) != 0)
            .collect();
        for id in doomed {
            e.delete(id).unwrap();
        }
    }

    #[test]
    fn rebalance_equalizes_table_routed_volumes() {
        let mut e = table_engine(4);
        skew_toward_shard_zero(&mut e, 400);
        let before = e.quiesce().unwrap();
        assert!(
            before.imbalance_ratio() > 2.0,
            "skew failed: {}",
            before.imbalance_ratio()
        );
        let live_before = before.live_count();

        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert!(report.migrated_objects > 0);
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "imbalance after rebalance: {}",
            report.after.imbalance_ratio()
        );
        assert_eq!(report.after.live_count(), live_before, "objects conserved");
        assert_eq!(report.after.live_volume(), before.live_volume());
        assert_eq!(report.after.migrations(), report.migrated_objects);

        // Routing follows the moved objects: deleting everything must
        // succeed, which requires every id to route to its current owner.
        let extents = e.extents().unwrap();
        for list in &extents {
            for &(id, _) in list {
                e.delete(id).unwrap();
            }
        }
        let empty = e.quiesce().unwrap();
        assert_eq!(empty.live_count(), 0);
        assert_eq!(empty.errors(), 0, "a migrated id routed to a stale shard");
    }

    #[test]
    fn rebalance_on_hash_router_is_rejected() {
        let mut e = bump_engine(3);
        skew_toward_shard_zero(&mut e, 300);
        match e.rebalance(RebalanceOptions::default()) {
            Err(EngineError::FixedRouting { router: "hash" }) => {}
            other => panic!("expected FixedRouting, got {other:?}"),
        }
        // The engine stays serviceable after the refusal.
        e.insert(ObjectId(10_000), 4).unwrap();
        assert_eq!(e.quiesce().unwrap().errors(), 0);
    }

    #[test]
    fn balanced_engine_rebalance_is_a_no_op_even_on_hash() {
        // No migrations planned ⇒ no assignment support needed.
        let mut e = bump_engine(1);
        e.insert(ObjectId(1), 8).unwrap();
        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert_eq!(report.migrated_objects, 0);
    }

    #[test]
    fn resize_grow_and_shrink_conserve_objects() {
        let mut e = table_engine(2);
        for i in 0..200u64 {
            e.insert(ObjectId(i), 1 + i % 9).unwrap();
        }
        let before = e.quiesce().unwrap();

        let grow = e.resize_shards(5, |_| Box::new(Bump::default())).unwrap();
        assert_eq!((grow.from, grow.to), (2, 5));
        assert_eq!(e.shards(), 5);
        let grown = e.quiesce().unwrap();
        assert_eq!(grown.shards(), 5);
        assert_eq!(grown.live_count(), before.live_count());
        assert_eq!(grown.live_volume(), before.live_volume());
        // The rendezvous fallback keeps a grow from reshuffling everything.
        assert!(
            grow.migrated_objects < 200,
            "grow re-homed {} of 200",
            grow.migrated_objects
        );

        let shrink = e.resize_shards(3, |_| Box::new(Bump::default())).unwrap();
        assert_eq!((shrink.from, shrink.to), (5, 3));
        let shrunk = e.quiesce().unwrap();
        assert_eq!(shrunk.shards(), 3);
        assert_eq!(shrunk.live_count(), before.live_count());
        assert_eq!(shrunk.live_volume(), before.live_volume());

        // Every id routes to a live shard that actually owns it.
        let extents = e.extents().unwrap();
        let mut seen = 0usize;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard);
                seen += 1;
            }
        }
        assert_eq!(seen, before.live_count());

        // Retired shards' ledgers survive to shutdown.
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 3 + 2, "3 live + 2 retired shards");
        let requests: u64 = finals.iter().map(|f| f.stats.requests).sum();
        assert_eq!(requests, 200, "client requests served exactly once");
    }

    #[test]
    fn resize_same_count_is_a_no_op() {
        let mut e = bump_engine(3);
        e.insert(ObjectId(7), 4).unwrap();
        let report = e.resize_shards(3, |_| Box::new(Bump::default())).unwrap();
        assert_eq!(report.migrated_objects, 0);
        assert_eq!(e.shards(), 3);
    }

    #[test]
    fn resize_hash_router_engine_works_by_mass_migration() {
        let mut e = bump_engine(2);
        for i in 0..100u64 {
            e.insert(ObjectId(i), 4).unwrap();
        }
        e.resize_shards(4, |_| Box::new(Bump::default())).unwrap();
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.shards(), 4);
        assert_eq!(stats.live_count(), 100);
        // Hash routing after the resize is simply shard_of at 4 shards.
        let extents = e.extents().unwrap();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(realloc_common::router::shard_of(id, 4), shard);
            }
        }
    }

    #[test]
    fn migrations_are_ledgered_as_migrations() {
        use realloc_common::OpKind;
        let mut e = table_engine(2);
        skew_toward_shard_zero(&mut e, 60);
        e.rebalance(RebalanceOptions::default()).unwrap();
        let finals = e.shutdown().unwrap();
        let (mut ins, mut outs) = (0u64, 0u64);
        for f in &finals {
            for r in f.ledger.records() {
                match r.kind {
                    OpKind::MigrateIn => {
                        ins += 1;
                        assert_eq!(r.allocated, None, "a transfer is not an allocation");
                        assert_eq!(r.moved_sizes.first(), Some(&r.request_size));
                    }
                    OpKind::MigrateOut => outs += 1,
                    _ => {}
                }
            }
            assert_eq!(f.stats.migrations_in, {
                f.ledger
                    .records()
                    .iter()
                    .filter(|r| r.kind == OpKind::MigrateIn)
                    .count() as u64
            });
        }
        assert!(ins > 0, "rebalance must have migrated something");
        assert_eq!(ins, outs, "every transfer has both halves");
    }

    /// A Bump whose inserts can be switched off — stands in for a
    /// broken reallocator rejecting migrate-ins mid-rebalance.
    struct FlakyBump {
        inner: Bump,
        fail_inserts: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }
    impl Reallocator for FlakyBump {
        fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
            if self.fail_inserts.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(ReallocError::ZeroSize);
            }
            self.inner.insert(id, size)
        }
        fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
            self.inner.delete(id)
        }
        fn extent_of(&self, id: ObjectId) -> Option<Extent> {
            self.inner.extent_of(id)
        }
        fn live_volume(&self) -> u64 {
            self.inner.live_volume()
        }
        fn structure_size(&self) -> u64 {
            self.inner.structure_size()
        }
        fn footprint(&self) -> u64 {
            self.inner.footprint()
        }
        fn max_object_size(&self) -> u64 {
            self.inner.max_object_size()
        }
        fn name(&self) -> &'static str {
            "flaky-bump"
        }
        fn live_count(&self) -> usize {
            self.inner.live_count()
        }
    }

    /// A two-shard table-routed engine whose shard 1 rejects inserts
    /// whenever the returned switch is flipped on.
    fn flaky_engine() -> (Engine, std::sync::Arc<std::sync::atomic::AtomicBool>) {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let fail = Arc::new(AtomicBool::new(false));
        let fail_factory = Arc::clone(&fail);
        let engine = Engine::with_router(
            EngineConfig::with_shards(2),
            Box::new(TableRouter::new(2)),
            move |shard| {
                if shard == 1 {
                    Box::new(FlakyBump {
                        inner: Bump::default(),
                        fail_inserts: Arc::clone(&fail_factory),
                    })
                } else {
                    Box::new(Bump::default())
                }
            },
        );
        (engine, fail)
    }

    #[test]
    fn partial_migration_failure_keeps_routing_consistent() {
        use std::sync::atomic::Ordering;

        let (mut e, fail) = flaky_engine();
        // Skew all volume onto shard 0, so the rebalance plan targets the
        // (soon to be broken) shard 1.
        skew_toward_shard_zero(&mut e, 60);
        let before = e.quiesce().unwrap();
        assert!(before.imbalance_ratio() > 1.5);

        fail.store(true, Ordering::Relaxed);
        let err = e.rebalance(RebalanceOptions::default()).unwrap_err();
        assert!(
            matches!(err, EngineError::Request { shard: 1, .. }),
            "expected shard 1's rejection, got {err:?}"
        );

        // The objects shard 1 rejected are lost (their sources released
        // them), but nothing is desynced: every surviving object routes to
        // the shard that actually owns it, and no id is on two shards.
        let extents = e.extents().unwrap();
        let mut survivors = 0;
        let mut seen = std::collections::HashSet::new();
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard, "{id} routed to a stale shard");
                assert!(seen.insert(id), "{id} live on two shards");
                survivors += 1;
            }
        }
        assert!(survivors < before.live_count(), "rejections lose objects");
        assert!(survivors > 0, "unaffected objects survive");
        // The sticky shard error keeps surfacing at barriers, as for any
        // rejected request.
        assert!(matches!(
            e.quiesce().unwrap_err(),
            EngineError::Request { shard: 1, .. }
        ));
    }

    #[test]
    fn online_partial_failure_aborts_session_with_consistent_routing() {
        use std::sync::atomic::Ordering;

        let (mut e, fail) = flaky_engine();
        skew_toward_shard_zero(&mut e, 60);
        let before = e.quiesce().unwrap();
        let plan = e
            .rebalance_online(RebalanceOptions::default().batched(2))
            .unwrap();
        assert!(plan.batches > 1);

        // First step succeeds, then shard 1 starts rejecting adoptions.
        assert!(e.rebalance_step().unwrap());
        fail.store(true, Ordering::Relaxed);
        let err = loop {
            match e.rebalance_step() {
                Ok(true) => {}
                Ok(false) => panic!("session completed through a broken shard"),
                Err(err) => break err,
            }
        };
        assert!(matches!(err, EngineError::Request { shard: 1, .. }));
        assert!(!e.rebalance_active(), "failed session must abort");
        assert!(e.take_rebalance_report().is_none(), "no completion report");

        // The batch that hit the broken shard is lost (its source released
        // it), but routing matches physical ownership everywhere: every
        // survivor routes to the shard that holds it, unexecuted plan
        // entries simply stayed home.
        let extents = e.extents().unwrap();
        let mut survivors = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard, "{id} routed to a stale shard");
                survivors += 1;
            }
        }
        assert!(survivors > 0 && survivors < before.live_count());
    }

    #[test]
    fn online_rebalance_equalizes_while_serving() {
        let mut e = table_engine(4);
        skew_toward_shard_zero(&mut e, 400);
        let before = e.quiesce().unwrap();
        assert!(before.imbalance_ratio() > 2.0);

        let plan = e
            .rebalance_online(RebalanceOptions::default().batched(8))
            .unwrap();
        assert!(plan.objects > 0);
        assert_eq!(plan.batches, plan.objects.div_ceil(8));
        assert!(e.rebalance_active());

        // Serve fresh traffic while the session drains; every dispatched
        // batch steps the migration (batch size is 256, so trickle plenty).
        let mut extra = 0u64;
        while e.rebalance_active() {
            for i in 0..600u64 {
                e.insert(ObjectId(1_000_000 + extra * 1_000 + i), 2)
                    .unwrap();
            }
            extra += 1;
            assert!(extra < 100, "session never drained");
        }
        let report = e.take_rebalance_report().expect("completed session");
        assert_eq!(report.mode, RebalanceMode::Online);
        assert!(report.batches > 1, "one big batch is not incremental");
        assert_eq!(report.migrated_objects, plan.objects);
        assert!(
            report.after.imbalance_ratio() < 1.25,
            "imbalance {} after online rebalance",
            report.after.imbalance_ratio()
        );

        // Mid-serving migration lost nothing: every id routes to its owner.
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.errors(), 0);
        let extents = e.extents().unwrap();
        let mut seen = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard);
                seen += 1;
            }
        }
        assert_eq!(seen, stats.live_count());
    }

    #[test]
    fn online_rebalance_steps_explicitly_and_reports_once() {
        let mut e = table_engine(3);
        skew_toward_shard_zero(&mut e, 300);
        e.rebalance_online(RebalanceOptions::default().batched(16))
            .unwrap();
        // A second plan while draining is refused.
        assert!(matches!(
            e.rebalance_online(RebalanceOptions::default()),
            Err(EngineError::RebalanceInProgress)
        ));
        let mut steps = 0;
        while e.rebalance_step().unwrap() {
            steps += 1;
            assert!(steps < 1_000, "stuck session");
        }
        let report = e.take_rebalance_report().unwrap();
        assert!(report.after.imbalance_ratio() < 1.25);
        assert!(e.take_rebalance_report().is_none(), "report claimed twice");
        // Stepping an idle engine is a no-op.
        assert!(!e.rebalance_step().unwrap());
    }

    #[test]
    fn online_rebalance_on_hash_router_is_rejected() {
        let mut e = bump_engine(3);
        skew_toward_shard_zero(&mut e, 300);
        assert!(matches!(
            e.rebalance_online(RebalanceOptions::default()),
            Err(EngineError::FixedRouting { router: "hash" })
        ));
        assert!(!e.rebalance_active());
    }

    #[test]
    fn balanced_online_rebalance_completes_with_empty_plan() {
        let mut e = table_engine(1);
        e.insert(ObjectId(1), 8).unwrap();
        let plan = e.rebalance_online(RebalanceOptions::default()).unwrap();
        assert_eq!(plan.objects, 0);
        assert!(!e.rebalance_step().unwrap());
        let report = e.take_rebalance_report().unwrap();
        assert_eq!(report.migrated_objects, 0);
        assert_eq!(report.batches, 0);
    }

    #[test]
    fn online_rebalance_survives_planned_objects_being_deleted() {
        let mut e = table_engine(4);
        skew_toward_shard_zero(&mut e, 400);
        let plan = e
            .rebalance_online(RebalanceOptions::default().batched(4))
            .unwrap();
        assert!(plan.objects > 4);
        // Delete *everything* the plan could touch before it executes:
        // every planned migrate-out must skip silently, not error.
        let extents = e.extents().unwrap();
        for list in &extents {
            for &(id, _) in list {
                e.delete(id).unwrap();
            }
        }
        while e.rebalance_step().unwrap() {}
        let report = e.take_rebalance_report().unwrap();
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.errors(), 0, "deleted plan entries must not error");
        assert_eq!(stats.live_count(), 0);
        assert!(report.migrated_objects <= plan.objects);
    }

    #[test]
    fn online_rebalance_transfers_resized_reinserts_faithfully() {
        // Between planning and execution, delete a planned object and
        // re-insert the id at a different size: the transfer must carry
        // the *current* size (the source's ack), not the planner's.
        let mut e = table_engine(2);
        skew_toward_shard_zero(&mut e, 60);
        let plan = e
            .rebalance_online(RebalanceOptions::default().batched(1))
            .unwrap();
        assert!(plan.objects > 0);
        let survivors: Vec<ObjectId> = e
            .extents()
            .unwrap()
            .iter()
            .flatten()
            .map(|&(id, _)| id)
            .collect();
        let total_before: u64 = e.quiesce().unwrap().live_volume();
        let victim = survivors[0];
        e.delete(victim).unwrap();
        e.insert(victim, 123).unwrap();
        while e.rebalance_step().unwrap() {}
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.errors(), 0);
        // 8 cells (skew inserts) swapped for 123: volume moved with it.
        assert_eq!(stats.live_volume(), total_before - 8 + 123);
        let extents = e.extents().unwrap();
        let found: Vec<u64> = extents
            .iter()
            .flatten()
            .filter(|&&(id, _)| id == victim)
            .map(|&(_, ext)| ext.len)
            .collect();
        assert_eq!(found, vec![123], "resized object lost or duplicated");
    }

    #[test]
    fn auto_rebalance_policy_fires_at_barriers_and_drains_via_serving() {
        let mut e = table_engine(4);
        e.set_auto_rebalance(
            RebalancePolicy::new(1.5, 2, 1),
            RebalanceOptions::default().batched(32),
        );
        skew_toward_shard_zero(&mut e, 400);

        // First breach observation: no trigger yet (k = 2).
        let s1 = e.quiesce().unwrap();
        assert!(s1.imbalance_ratio() > 1.5);
        assert!(!e.rebalance_active());
        // Second consecutive breach: the engine starts a session itself.
        e.quiesce().unwrap();
        assert!(e.rebalance_active(), "policy should have fired");

        // Serving drains it.
        let mut round = 0u64;
        while e.rebalance_active() {
            for i in 0..600u64 {
                e.insert(ObjectId(2_000_000 + round * 1_000 + i), 1)
                    .unwrap();
            }
            round += 1;
            assert!(round < 100, "session never drained");
        }
        let report = e.take_rebalance_report().expect("auto session report");
        assert_eq!(report.mode, RebalanceMode::Online);
        assert!(report.after.imbalance_ratio() < 1.5);
        assert_eq!(e.auto_rebalance().unwrap().cooldown(), 1, "hysteresis");

        // The cooldown observation is swallowed even if skew returns.
        e.quiesce().unwrap();
        assert!(!e.rebalance_active());
        let policy = e.clear_auto_rebalance().unwrap();
        assert_eq!(policy.cooldown(), 0);
        e.quiesce().unwrap();
        assert!(!e.rebalance_active(), "cleared policy must not fire");
    }

    #[test]
    fn auto_rebalance_stays_silent_behind_a_hash_router() {
        let mut e = bump_engine(2);
        e.set_auto_rebalance(RebalancePolicy::new(1.1, 1, 0), RebalanceOptions::default());
        skew_toward_shard_zero(&mut e, 200);
        let stats = e.quiesce().unwrap();
        assert!(stats.imbalance_ratio() > 1.1);
        assert!(!e.rebalance_active(), "nothing to move behind a hash map");
    }

    #[test]
    fn barrier_ops_complete_an_active_session_first() {
        let mut e = table_engine(4);
        skew_toward_shard_zero(&mut e, 400);
        e.rebalance_online(RebalanceOptions::default().batched(4))
            .unwrap();
        assert!(e.rebalance_active());
        // A barrier rebalance finishes the online plan, then re-plans.
        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert!(!e.rebalance_active());
        assert_eq!(report.mode, RebalanceMode::Barrier);
        let online = e.take_rebalance_report().expect("online report parked");
        assert_eq!(online.mode, RebalanceMode::Online);
        assert!(online.migrated_objects > 0);
        assert!(report.after.imbalance_ratio() < 1.25);

        // Same for resize and shutdown (fresh skew on fresh ids).
        for list in &e.extents().unwrap() {
            for &(id, _) in list {
                e.delete(id).unwrap();
            }
        }
        for i in 0..800u64 {
            e.insert(ObjectId(10_000 + i), 8).unwrap();
        }
        let doomed: Vec<ObjectId> = (0..800u64)
            .map(|i| ObjectId(10_000 + i))
            .filter(|&id| e.shard_of(id) != 0)
            .collect();
        for id in doomed {
            e.delete(id).unwrap();
        }
        e.rebalance_online(RebalanceOptions::default().batched(4))
            .unwrap();
        e.resize_shards(5, |_| Box::new(Bump::default())).unwrap();
        assert!(!e.rebalance_active());
        assert!(e.take_rebalance_report().is_some());
        e.rebalance_online(RebalanceOptions::default().batched(4))
            .unwrap();
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 5);
    }

    /// A substrate-backed table-routed engine over the real §2 reallocator
    /// (the substrate replays physical ops, so the toy `Bump` — which
    /// reports no ops — cannot back one).
    fn substrate_engine(shards: usize, substrate: crate::SubstrateConfig) -> Engine {
        Engine::with_router(
            EngineConfig::with_shards(shards).with_substrate(substrate),
            Box::new(TableRouter::new(shards)),
            |_| Box::new(realloc_core::CostObliviousReallocator::new(0.25)),
        )
    }

    #[test]
    fn substrate_backed_engine_serves_verifies_and_counts_bytes() {
        let mut e = substrate_engine(3, crate::SubstrateConfig::default());
        assert!(e.substrate_enabled());
        for i in 0..200u64 {
            e.insert(ObjectId(i), 1 + i % 16).unwrap();
        }
        for i in 0..100u64 {
            e.delete(ObjectId(i)).unwrap();
        }
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.errors(), 0);
        // Every allocation physically wrote its cells (flush copies add
        // more on top).
        let inserted: u64 = (0..200).map(|i| 1 + i % 16).sum();
        assert!(
            stats.bytes_written() >= inserted,
            "{} cells written < {} inserted",
            stats.bytes_written(),
            inserted
        );
        // The quiesce cadence ran one scan per shard at the barrier.
        assert!(stats.substrate_verifications() >= 3);

        let reports = e.verify_substrate().unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(r.error.is_none());
            // Disjoint windows, in shard order.
            assert_eq!(r.window.base, r.shard as u64 * r.window.span);
        }
        assert_eq!(
            reports.iter().map(|r| r.bytes).sum::<u64>(),
            stats.live_volume()
        );

        // The dump exposes each live object's pattern bytes.
        let contents = e.substrate_contents().unwrap();
        let mut seen = 0;
        for list in &contents {
            for (id, bytes) in list {
                assert_eq!(
                    bytes,
                    &storage_sim::pattern_for(*id, bytes.len() as u64),
                    "{id} holds foreign bytes"
                );
                seen += 1;
            }
        }
        assert_eq!(seen, stats.live_count());
        e.shutdown().unwrap();
    }

    #[test]
    fn substrate_rebalance_ships_real_bytes_across_windows() {
        let mut e = substrate_engine(4, crate::SubstrateConfig::default());
        skew_toward_shard_zero(&mut e, 400);
        let report = e.rebalance(RebalanceOptions::default()).unwrap();
        assert!(report.migrated_objects > 0);
        let stats = e.quiesce().unwrap();
        // Physical bytes copied across address spaces == ledgered migrate
        // volume, on both ends of the transfer.
        assert_eq!(stats.bytes_migrated_out(), report.migrated_volume);
        assert_eq!(stats.bytes_migrated_in(), report.migrated_volume);
        // Migrated objects' bytes survived the hop (quiesce verification
        // already checksummed them; the dump double-checks the pattern).
        for list in &e.substrate_contents().unwrap() {
            for (id, bytes) in list {
                assert_eq!(bytes, &storage_sim::pattern_for(*id, bytes.len() as u64));
            }
        }
        e.shutdown().unwrap();
    }

    #[test]
    fn corrupted_transfer_fails_ack_and_aborts_with_routing_consistent() {
        let mut e = substrate_engine(2, crate::SubstrateConfig::default());
        skew_toward_shard_zero(&mut e, 80);
        let before = e.quiesce().unwrap();

        e.inject_transfer_corruption();
        let err = e.rebalance(RebalanceOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::Request {
                    error: ReallocError::CorruptTransfer(_),
                    ..
                }
            ),
            "expected a refused transfer, got {err:?}"
        );

        // Exactly the damaged object is lost; every survivor routes to the
        // shard that physically owns it, and its bytes still verify.
        let extents = e.extents().unwrap();
        let mut survivors = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, _) in list {
                assert_eq!(e.shard_of(id), shard, "{id} routed to a stale shard");
                survivors += 1;
            }
        }
        assert_eq!(survivors, before.live_count() - 1);
        for r in e.verify_substrate().unwrap() {
            assert!(r.error.is_none(), "substrate damaged: {:?}", r.error);
        }
        // The sticky request error keeps surfacing, like any rejection.
        assert!(matches!(
            e.quiesce().unwrap_err(),
            EngineError::Request {
                error: ReallocError::CorruptTransfer(_),
                ..
            }
        ));
    }

    #[test]
    fn substrate_defrag_pass_performs_the_schedule_on_real_bytes() {
        let mut e = substrate_engine(2, crate::SubstrateConfig::default());
        skew_toward_shard_zero(&mut e, 80);
        let report = e.rebalance(RebalanceOptions::with_defrag(0.5)).unwrap();
        assert_eq!(report.defrag.len(), 2);
        for d in &report.defrag {
            assert!(d.error.is_none());
            assert_eq!(
                d.substrate_ok,
                Some(true),
                "shard {}: schedule replay failed",
                d.shard
            );
        }
        e.shutdown().unwrap();
    }

    #[test]
    fn rebalance_defrag_pass_reports_space_bounds() {
        let mut e = table_engine(2);
        skew_toward_shard_zero(&mut e, 80);
        let report = e.rebalance(RebalanceOptions::with_defrag(0.5)).unwrap();
        assert_eq!(report.defrag.len(), 2);
        for d in &report.defrag {
            assert!(d.error.is_none(), "shard {}: {:?}", d.shard, d.error);
            assert!(d.within_budget, "shard {} blew (1+ε)V + ∆", d.shard);
        }
        assert!(report.after.defrag_moves() > 0);
    }
}
