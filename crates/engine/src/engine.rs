//! The engine front-end: routing, batching, barriers, aggregation.

use std::sync::mpsc::{self, SyncSender};
use std::thread::JoinHandle;

use realloc_common::{Extent, ObjectId, ReallocError, Reallocator};
use workload_gen::{Request, Workload};

use crate::route::shard_of;
use crate::shard::{Command, ShardError, ShardFinal, ShardReply, ShardWorker};
use crate::stats::EngineStats;

/// Sizing knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shards (worker threads). Each owns an independent
    /// reallocator, so the aggregate footprint bound is `(1+ε)·Σ V_i`.
    pub shards: usize,
    /// Requests per channel message. Larger batches amortize channel
    /// overhead; smaller ones reduce barrier latency. One channel round
    /// trip per `batch` requests is the same amortization play the paper's
    /// buffer segments make for moves.
    pub batch: usize,
    /// Bounded channel depth, in batches. A full queue blocks the
    /// enqueueing caller — backpressure, not unbounded buffering.
    pub queue_depth: usize,
    /// Keep a full per-request [`Ledger`](realloc_common::Ledger) on every
    /// shard (the post-hoc cost-pricing record). On by default; a
    /// throughput-critical deployment can turn it off — the ledger grows
    /// without bound and its append is the worker's largest per-request
    /// fixed cost. Aggregate stats (including the settled-space ratio) are
    /// maintained incrementally either way.
    pub record_ledger: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch: 256,
            queue_depth: 4,
            record_ledger: true,
        }
    }
}

impl EngineConfig {
    /// The default configuration with `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// This configuration with per-request ledgers disabled (stats only).
    pub fn ledgerless(mut self) -> Self {
        self.record_ledger = false;
        self
    }
}

/// Errors surfaced by the engine's handle API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// A shard's reallocator rejected a request. Reported at the first
    /// barrier after it happened; `index` counts the shard's own stream.
    Request {
        /// Shard that rejected the request.
        shard: usize,
        /// Index in that shard's request stream (0-based).
        index: u64,
        /// The underlying rejection.
        error: ReallocError,
    },
    /// A shard's worker thread is gone (its channel disconnected).
    ShardDown {
        /// The dead shard.
        shard: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Request {
                shard,
                index,
                error,
            } => {
                write!(f, "shard {shard} rejected its request #{index}: {error}")
            }
            EngineError::ShardDown { shard } => write!(f, "shard {shard} worker is gone"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A sharded, multi-threaded reallocation service.
///
/// See the [crate docs](crate) for the architecture. Construct with
/// [`Engine::new`], feed with [`insert`](Engine::insert) /
/// [`delete`](Engine::delete) (or [`drive`](Engine::drive) for a whole
/// workload), observe with [`snapshot`](Engine::snapshot) /
/// [`quiesce`](Engine::quiesce), and finish with
/// [`shutdown`](Engine::shutdown) to collect per-shard ledgers. Dropping
/// an engine without `shutdown` joins its workers and discards results.
pub struct Engine {
    config: EngineConfig,
    senders: Vec<SyncSender<Command>>,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard batch under construction (not yet sent).
    pending: Vec<Vec<Request>>,
}

impl Engine {
    /// Spawns `config.shards` worker threads; `factory(shard)` builds each
    /// shard's reallocator (any `Reallocator + Send` — paper variants,
    /// baselines, or a mix).
    ///
    /// # Panics
    /// Panics if `config.shards` or `config.batch` is zero.
    pub fn new<F>(config: EngineConfig, mut factory: F) -> Engine
    where
        F: FnMut(usize) -> Box<dyn Reallocator + Send>,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.batch > 0, "batch size must be positive");
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
            let worker = ShardWorker::new(shard, factory(shard), config.record_ledger);
            let handle = std::thread::Builder::new()
                .name(format!("realloc-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        Engine {
            pending: vec![Vec::with_capacity(config.batch); config.shards],
            config,
            senders,
            workers,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The shard that owns `id` (stable across runs; see
    /// [`shard_of`](crate::route::shard_of)).
    pub fn shard_of(&self, id: ObjectId) -> usize {
        shard_of(id, self.config.shards)
    }

    /// Enqueues `〈INSERTOBJECT, id, size〉` on the owning shard.
    ///
    /// `Ok` means *accepted for serving*, not *served*: a rejection by the
    /// shard's reallocator (e.g. a duplicate id) surfaces at the next
    /// barrier. `Err` here only ever means the shard is down.
    pub fn insert(&mut self, id: ObjectId, size: u64) -> Result<(), EngineError> {
        self.enqueue(Request::Insert { id, size })
    }

    /// Enqueues `〈DELETEOBJECT, id〉` on the owning shard. Same contract as
    /// [`insert`](Engine::insert).
    pub fn delete(&mut self, id: ObjectId) -> Result<(), EngineError> {
        self.enqueue(Request::Delete { id })
    }

    fn enqueue(&mut self, req: Request) -> Result<(), EngineError> {
        let shard = self.shard_of(req.id());
        self.pending[shard].push(req);
        if self.pending[shard].len() >= self.config.batch {
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Vec::with_capacity(self.config.batch),
            );
            self.send(shard, Command::Batch(batch))?;
        }
        Ok(())
    }

    fn send(&self, shard: usize, cmd: Command) -> Result<(), EngineError> {
        self.senders[shard]
            .send(cmd)
            .map_err(|_| EngineError::ShardDown { shard })
    }

    /// Pushes every partially filled batch to its shard. Called implicitly
    /// by all barriers; only needed directly to cap latency when trickling
    /// requests below the batch size.
    pub fn flush(&mut self) -> Result<(), EngineError> {
        for shard in 0..self.config.shards {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, Command::Batch(batch))?;
            }
        }
        Ok(())
    }

    /// Barrier: flush, send one command per shard, await all replies.
    fn barrier<T>(
        &mut self,
        make: impl Fn(mpsc::Sender<T>) -> Command,
    ) -> Result<Vec<T>, EngineError> {
        self.flush()?;
        let mut replies = Vec::with_capacity(self.config.shards);
        for shard in 0..self.config.shards {
            let (tx, rx) = mpsc::channel();
            self.send(shard, make(tx))?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| rx.recv().map_err(|_| EngineError::ShardDown { shard }))
            .collect()
    }

    /// The error-surfacing rule every barrier shares: the first rejected
    /// request of the lowest-numbered shard that saw one wins.
    fn surface_first_error<'a>(
        replies: impl Iterator<Item = (usize, &'a Option<ShardError>)>,
    ) -> Result<(), EngineError> {
        for (shard, first_error) in replies {
            if let Some(err) = first_error {
                return Err(EngineError::Request {
                    shard,
                    index: err.index,
                    error: err.error,
                });
            }
        }
        Ok(())
    }

    fn aggregate(replies: Vec<ShardReply>) -> Result<EngineStats, EngineError> {
        Self::surface_first_error(replies.iter().map(|r| (r.stats.shard, &r.first_error)))?;
        Ok(EngineStats {
            per_shard: replies.into_iter().map(|r| r.stats).collect(),
        })
    }

    /// Waits until every enqueued request has been served and all deferred
    /// work is complete (each shard runs `Reallocator::quiesce`, draining
    /// e.g. the deamortized structure's in-progress flush), then returns
    /// the aggregated stats. Surfaces the first request-level error, if
    /// any shard saw one.
    pub fn quiesce(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(Command::Quiesce)?;
        Self::aggregate(replies)
    }

    /// Waits until every enqueued request has been served and returns the
    /// aggregated stats, without forcing deferred work. Surfaces the first
    /// request-level error, if any shard saw one.
    pub fn snapshot(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(Command::Snapshot)?;
        Self::aggregate(replies)
    }

    /// Current placements of all live objects, per shard, sorted by id.
    /// (A barrier, like `snapshot`.) Objects whose delete is deferred
    /// inside a quiescing structure are not listed.
    pub fn extents(&mut self) -> Result<Vec<Vec<(ObjectId, Extent)>>, EngineError> {
        self.barrier(Command::Extents)
    }

    /// Replays a whole workload: splits it into per-shard streams with
    /// [`workload_gen::shard::split_with`] (per-object request order is
    /// preserved — an object's requests all hash to the same shard, in
    /// sequence order) and feeds the streams round-robin, one batch per
    /// shard per round, so every queue stays busy instead of one shard
    /// draining while the rest idle.
    ///
    /// Returns when everything is *enqueued*; follow with
    /// [`quiesce`](Engine::quiesce) or [`snapshot`](Engine::snapshot) to
    /// wait for completion and check for request errors.
    pub fn drive(&mut self, workload: &Workload) -> Result<(), EngineError> {
        // Order wrt. anything already trickled in via insert/delete.
        self.flush()?;
        let shards = self.config.shards;
        let parts = workload_gen::shard::split_with(workload, shards, |id| shard_of(id, shards));
        let batch = self.config.batch;
        let mut cursor = vec![0usize; shards];
        loop {
            let mut done = true;
            for (shard, part) in parts.iter().enumerate() {
                let reqs = &part.requests;
                if cursor[shard] < reqs.len() {
                    done = false;
                    let end = (cursor[shard] + batch).min(reqs.len());
                    self.send(shard, Command::Batch(reqs[cursor[shard]..end].to_vec()))?;
                    cursor[shard] = end;
                }
            }
            if done {
                return Ok(());
            }
        }
    }

    /// Final barrier: serves everything still queued, stops all workers,
    /// joins their threads, and returns each shard's stats *and full
    /// ledger* — the per-shard move logs that post-hoc cost pricing needs.
    /// Surfaces the first request-level error instead, if any shard saw
    /// one.
    pub fn shutdown(mut self) -> Result<Vec<ShardFinal>, EngineError> {
        let finals = self.barrier(Command::Finish)?;
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        Self::surface_first_error(finals.iter().map(|f| (f.stats.shard, &f.first_error)))?;
        Ok(finals)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Disconnect the channels so workers fall out of their loops, then
        // join to avoid leaking threads past the engine's lifetime.
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use realloc_common::Outcome;
    use std::collections::HashMap;

    /// A minimal in-test reallocator: bump allocation, never moves, never
    /// reuses space. Enough to exercise every engine path deterministically.
    #[derive(Default)]
    struct Bump {
        extents: HashMap<ObjectId, Extent>,
        end: u64,
        volume: u64,
        delta: u64,
    }

    impl Reallocator for Bump {
        fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
            if size == 0 {
                return Err(ReallocError::ZeroSize);
            }
            if self.extents.contains_key(&id) {
                return Err(ReallocError::DuplicateId(id));
            }
            self.extents.insert(id, Extent::new(self.end, size));
            self.end += size;
            self.volume += size;
            self.delta = self.delta.max(size);
            Ok(Outcome::empty())
        }
        fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
            let e = self
                .extents
                .remove(&id)
                .ok_or(ReallocError::UnknownId(id))?;
            self.volume -= e.len;
            Ok(Outcome::empty())
        }
        fn extent_of(&self, id: ObjectId) -> Option<Extent> {
            self.extents.get(&id).copied()
        }
        fn live_volume(&self) -> u64 {
            self.volume
        }
        fn structure_size(&self) -> u64 {
            self.end
        }
        fn footprint(&self) -> u64 {
            self.end
        }
        fn max_object_size(&self) -> u64 {
            self.delta
        }
        fn name(&self) -> &'static str {
            "bump"
        }
        fn live_count(&self) -> usize {
            self.extents.len()
        }
    }

    fn bump_engine(shards: usize) -> Engine {
        Engine::new(EngineConfig::with_shards(shards), |_| {
            Box::new(Bump::default())
        })
    }

    #[test]
    fn serves_and_aggregates() {
        let mut e = bump_engine(3);
        for i in 0..100u64 {
            e.insert(ObjectId(i), 1 + i % 7).unwrap();
        }
        for i in 0..50u64 {
            e.delete(ObjectId(i)).unwrap();
        }
        let stats = e.quiesce().unwrap();
        assert_eq!(stats.shards(), 3);
        assert_eq!(stats.requests(), 150);
        assert_eq!(stats.live_count(), 50);
        let expect: u64 = (50..100).map(|i| 1 + i % 7).sum();
        assert_eq!(stats.live_volume(), expect);
        assert_eq!(stats.errors(), 0);
        // Every request landed on the shard its id hashes to.
        let per_shard_requests: u64 = stats.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(per_shard_requests, 150);
    }

    #[test]
    fn small_batches_flush_at_barriers() {
        // 5 requests with batch=256 stay pending until the barrier.
        let mut e = bump_engine(2);
        for i in 0..5u64 {
            e.insert(ObjectId(i), 8).unwrap();
        }
        let stats = e.snapshot().unwrap();
        assert_eq!(stats.requests(), 5);
        assert_eq!(stats.live_volume(), 40);
    }

    #[test]
    fn request_errors_surface_at_barriers_and_do_not_kill_shards() {
        let mut e = bump_engine(2);
        e.insert(ObjectId(1), 8).unwrap();
        e.insert(ObjectId(1), 8).unwrap(); // duplicate — same shard by hash
        e.insert(ObjectId(2), 4).unwrap();
        let err = e.snapshot().unwrap_err();
        match err {
            EngineError::Request {
                error: ReallocError::DuplicateId(id),
                ..
            } => {
                assert_eq!(id, ObjectId(1));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The shard kept serving past the bad request.
        let shard1 = e.shard_of(ObjectId(1));
        let finals = e.shutdown().unwrap_err();
        assert!(matches!(finals, EngineError::Request { shard, .. } if shard == shard1));
    }

    #[test]
    fn extents_match_routing() {
        let mut e = bump_engine(4);
        for i in 0..40u64 {
            e.insert(ObjectId(i), 4).unwrap();
        }
        let extents = e.extents().unwrap();
        assert_eq!(extents.len(), 4);
        let mut seen = 0;
        for (shard, list) in extents.iter().enumerate() {
            for &(id, extent) in list {
                assert_eq!(e.shard_of(id), shard, "{id} listed on wrong shard");
                assert_eq!(extent.len, 4);
                seen += 1;
            }
            // Sorted by id within the shard.
            assert!(list.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(seen, 40, "every live object listed exactly once");
    }

    #[test]
    fn shutdown_returns_per_shard_ledgers() {
        let mut e = bump_engine(2);
        for i in 0..20u64 {
            e.insert(ObjectId(i), 2).unwrap();
        }
        let finals = e.shutdown().unwrap();
        assert_eq!(finals.len(), 2);
        let total: usize = finals.iter().map(|f| f.ledger.len()).sum();
        assert_eq!(total, 20, "every request ledgered on exactly one shard");
        for f in &finals {
            assert_eq!(f.ledger.len() as u64, f.stats.requests);
        }
    }

    #[test]
    fn ledgerless_engine_keeps_stats_but_not_history() {
        let drive = |config: EngineConfig| {
            let mut e = Engine::new(config, |_| Box::new(Bump::default()) as _);
            for i in 0..60u64 {
                e.insert(ObjectId(i), 1 + i % 5).unwrap();
            }
            for i in 0..30u64 {
                e.delete(ObjectId(i)).unwrap();
            }
            e.shutdown().unwrap()
        };
        let with = drive(EngineConfig::with_shards(2));
        let without = drive(EngineConfig::with_shards(2).ledgerless());
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(
                a.stats, b.stats,
                "stats must not depend on ledger recording"
            );
            assert_eq!(a.ledger.len() as u64, a.stats.requests);
            assert!(b.ledger.is_empty(), "ledgerless shard kept history");
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.shards > 0 && c.batch > 0 && c.queue_depth > 0);
        assert_eq!(EngineConfig::with_shards(7).shards, 7);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        EngineConfig::with_shards(0);
    }

    #[test]
    fn error_display() {
        let e = EngineError::Request {
            shard: 2,
            index: 7,
            error: ReallocError::UnknownId(ObjectId(9)),
        };
        assert_eq!(
            e.to_string(),
            "shard 2 rejected its request #7: obj#9 is not active"
        );
        assert_eq!(
            EngineError::ShardDown { shard: 1 }.to_string(),
            "shard 1 worker is gone"
        );
    }
}
