//! The engine's observability surface: device profiles, per-shard
//! telemetry, and the [`MetricsSnapshot`] scrape.
//!
//! # The determinism contract
//!
//! The engine guarantees that two runs of the same workload over the same
//! shard count produce identical [`EngineStats`] — the equivalence suites
//! compare them with `==`. Telemetry adds two kinds of quantity, and the
//! contract splits exactly between them:
//!
//! * **Deterministic**: request/byte counters and *simulated* device time.
//!   Sim time is a pure function of each shard's op stream (the
//!   [`DeviceModel`] prices ops in a fixed per-shard order), so it joins
//!   the equality surface — including the three `*_sim_time` fields on
//!   [`ShardStats`].
//! * **Wall-clock observations**: batch service latency, commit latency,
//!   intake stalls, and event timestamps. These differ between identical
//!   runs by scheduler noise, so they are *excluded* from every `==`:
//!   [`ShardMetrics`] and [`MetricsSnapshot`] implement [`PartialEq`] by
//!   hand over the deterministic projection only.
//!
//! Scrape with [`Engine::metrics`](crate::Engine::metrics) (cumulative) or
//! [`Engine::metrics_delta`](crate::Engine::metrics_delta)
//! (since-last-scrape); export with [`MetricsSnapshot::to_json`].

use realloc_telemetry::{Histogram, HistogramSnapshot, Json, TraceEvent};
use storage_sim::DeviceModel;

use crate::stats::{EngineStats, ShardStats};

/// A named, parameterless device model the engine can price op streams
/// against. Parameterless on purpose: [`EngineConfig`](crate::EngineConfig)
/// derives `Copy + Eq`, so profiles are canonical presets rather than
/// free-floating floats (time unit: microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceProfile {
    /// Counts operations: every allocate/move costs 1 µs, commits sync in
    /// 1 µs. The profile to use when "how many" matters more than "how
    /// long".
    Unit,
    /// Seek-dominated rotating disk: 4 ms seek + 50 ns/cell transfer,
    /// 5 ms sync latency.
    Disk,
    /// Erase-block flash: 64-cell blocks at 300 µs/erase + 1 µs/cell
    /// program, 50 µs sync latency.
    Ssd,
}

impl DeviceProfile {
    /// Every built-in profile.
    pub const ALL: [DeviceProfile; 3] =
        [DeviceProfile::Unit, DeviceProfile::Disk, DeviceProfile::Ssd];

    /// Stable lowercase name (CLI flag value and JSON field).
    pub fn name(self) -> &'static str {
        match self {
            DeviceProfile::Unit => "unit",
            DeviceProfile::Disk => "disk",
            DeviceProfile::Ssd => "ssd",
        }
    }

    /// Parses a [`name`](Self::name) back into a profile.
    pub fn parse(text: &str) -> Option<DeviceProfile> {
        DeviceProfile::ALL.into_iter().find(|p| p.name() == text)
    }

    /// Builds the priced model. Called inside each worker thread —
    /// [`DeviceModel`] boxes a cost function and is neither `Clone` nor
    /// `Send`, so the profile (which is both) is what crosses the spawn.
    pub fn build(self) -> DeviceModel {
        match self {
            DeviceProfile::Unit => DeviceModel::new(Box::new(cost_model::Unit), 1.0),
            DeviceProfile::Disk => {
                DeviceModel::new(Box::new(cost_model::Affine::disk(4000.0, 0.05)), 5000.0)
            }
            DeviceProfile::Ssd => {
                DeviceModel::new(Box::new(cost_model::SsdErase::new(64, 300.0, 1.0)), 50.0)
            }
        }
    }
}

/// Which accumulator an op stream's simulated time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimLane {
    /// Ordinary request serving (inserts, deletes, quiesce drains).
    Serve,
    /// Cross-shard migration work (departures, arrivals, their drains).
    Migrate,
}

/// The worker-side telemetry state: histograms the shard records into and
/// the optional device model that prices its op stream. Owned by the
/// worker thread, snapshotted at barriers.
pub(crate) struct ShardTelemetry {
    pub device: Option<DeviceModel>,
    /// Wall nanoseconds per `Command::Batch` (serve + verify + commit).
    pub batch_service_ns: Histogram,
    /// Simulated microseconds of op time per `Command::Batch` (empty
    /// without a device profile).
    pub batch_sim_us: Histogram,
    /// Wall nanoseconds per non-empty WAL group commit.
    pub commit_latency_ns: Histogram,
    /// Records per non-empty WAL group commit (the coalescing factor).
    pub commit_records: Histogram,
    /// Raw requests per `Command::Batch`, before batch planning.
    pub batch_raw_requests: Histogram,
    /// Requests actually applied per `Command::Batch` after the planner
    /// folded the batch (equal to the raw count with coalescing off).
    pub batch_planned_requests: Histogram,
    pub serve_sim_us: f64,
    pub migrate_sim_us: f64,
    pub wal_commit_sim_us: f64,
    /// Sim time accrued by serve-lane ops since the current batch began.
    pub batch_sim_accum: f64,
}

impl ShardTelemetry {
    pub(crate) fn new(device: Option<DeviceProfile>) -> ShardTelemetry {
        ShardTelemetry {
            device: device.map(DeviceProfile::build),
            batch_service_ns: Histogram::new(),
            batch_sim_us: Histogram::new(),
            commit_latency_ns: Histogram::new(),
            commit_records: Histogram::new(),
            batch_raw_requests: Histogram::new(),
            batch_planned_requests: Histogram::new(),
            serve_sim_us: 0.0,
            migrate_sim_us: 0.0,
            wal_commit_sim_us: 0.0,
            batch_sim_accum: 0.0,
        }
    }

    /// Prices `ops` into `lane` (no-op without a device model).
    pub(crate) fn price_ops(&mut self, ops: &[realloc_common::StorageOp], lane: SimLane) {
        let Some(device) = self.device.as_ref() else {
            return;
        };
        let us = device.time_of_stream(ops);
        match lane {
            SimLane::Serve => {
                self.serve_sim_us += us;
                self.batch_sim_accum += us;
            }
            SimLane::Migrate => self.migrate_sim_us += us,
        }
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardMetrics {
        ShardMetrics {
            shard,
            serve_sim_us: self.serve_sim_us,
            migrate_sim_us: self.migrate_sim_us,
            wal_commit_sim_us: self.wal_commit_sim_us,
            batch_sim_us: self.batch_sim_us.snapshot(),
            commit_records: self.commit_records.snapshot(),
            batch_raw_requests: self.batch_raw_requests.snapshot(),
            batch_planned_requests: self.batch_planned_requests.snapshot(),
            batch_service_ns: self.batch_service_ns.snapshot(),
            commit_latency_ns: self.commit_latency_ns.snapshot(),
            intake_stall_ns: HistogramSnapshot::empty(),
        }
    }
}

/// One shard's telemetry at a scrape.
///
/// Equality covers the deterministic projection only — see the
/// [module docs](crate::metrics) for the contract. The wall-clock fields
/// ([`batch_service_ns`](Self::batch_service_ns),
/// [`commit_latency_ns`](Self::commit_latency_ns),
/// [`intake_stall_ns`](Self::intake_stall_ns)) never participate in `==`.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Simulated µs of device time serving requests (allocates, moves, and
    /// checkpoint barriers from inserts/deletes/quiesce drains). 0 without
    /// a [`DeviceProfile`].
    pub serve_sim_us: f64,
    /// Simulated µs of device time on cross-shard migration work
    /// (departures, arrivals, and their drains). 0 without a profile.
    pub migrate_sim_us: f64,
    /// Simulated µs of device time syncing WAL group commits
    /// ([`DeviceModel::time_of_commit`] over each frame's bytes). 0
    /// without a profile or without a WAL.
    pub wal_commit_sim_us: f64,
    /// Per-batch simulated service time, in µs (deterministic; empty
    /// without a profile).
    pub batch_sim_us: HistogramSnapshot,
    /// Records per non-empty WAL group commit (deterministic; the
    /// group-commit coalescing factor is its mean).
    pub commit_records: HistogramSnapshot,
    /// Raw requests per served batch, before planning (deterministic).
    pub batch_raw_requests: HistogramSnapshot,
    /// Requests applied per served batch after the coalescing planner
    /// folded it (deterministic; the planned-vs-raw gap is the batch
    /// pipeline's win — equal to [`batch_raw_requests`] with coalescing
    /// off).
    ///
    /// [`batch_raw_requests`]: Self::batch_raw_requests
    pub batch_planned_requests: HistogramSnapshot,
    /// Wall-clock nanoseconds per served batch (observation).
    pub batch_service_ns: HistogramSnapshot,
    /// Wall-clock nanoseconds per non-empty WAL group commit
    /// (observation).
    pub commit_latency_ns: HistogramSnapshot,
    /// Wall-clock nanoseconds the engine spent blocked pushing a batch
    /// into this shard's full channel — one observation per send that
    /// found the queue full (observation; recorded engine-side).
    pub intake_stall_ns: HistogramSnapshot,
}

impl PartialEq for ShardMetrics {
    /// Deterministic projection only: wall-clock histograms are
    /// observations and differ between identical runs by scheduler noise.
    fn eq(&self, other: &Self) -> bool {
        self.shard == other.shard
            && self.serve_sim_us == other.serve_sim_us
            && self.migrate_sim_us == other.migrate_sim_us
            && self.wal_commit_sim_us == other.wal_commit_sim_us
            && self.batch_sim_us == other.batch_sim_us
            && self.commit_records == other.commit_records
            && self.batch_raw_requests == other.batch_raw_requests
            && self.batch_planned_requests == other.batch_planned_requests
    }
}

impl ShardMetrics {
    /// An all-zero scrape for a shard running with telemetry disabled
    /// ([`EngineConfig::without_telemetry`](crate::EngineConfig)).
    pub fn empty(shard: usize) -> ShardMetrics {
        ShardMetrics {
            shard,
            serve_sim_us: 0.0,
            migrate_sim_us: 0.0,
            wal_commit_sim_us: 0.0,
            batch_sim_us: HistogramSnapshot::empty(),
            commit_records: HistogramSnapshot::empty(),
            batch_raw_requests: HistogramSnapshot::empty(),
            batch_planned_requests: HistogramSnapshot::empty(),
            batch_service_ns: HistogramSnapshot::empty(),
            commit_latency_ns: HistogramSnapshot::empty(),
            intake_stall_ns: HistogramSnapshot::empty(),
        }
    }

    /// Total simulated device time, µs.
    pub fn sim_time_us(&self) -> f64 {
        self.serve_sim_us + self.migrate_sim_us + self.wal_commit_sim_us
    }

    /// This scrape minus `prev` (histograms and sim-time accumulators
    /// subtract; see [`HistogramSnapshot::delta_since`] for the min/max
    /// caveat).
    pub fn delta_since(&self, prev: &ShardMetrics) -> ShardMetrics {
        ShardMetrics {
            shard: self.shard,
            serve_sim_us: (self.serve_sim_us - prev.serve_sim_us).max(0.0),
            migrate_sim_us: (self.migrate_sim_us - prev.migrate_sim_us).max(0.0),
            wal_commit_sim_us: (self.wal_commit_sim_us - prev.wal_commit_sim_us).max(0.0),
            batch_sim_us: self.batch_sim_us.delta_since(&prev.batch_sim_us),
            commit_records: self.commit_records.delta_since(&prev.commit_records),
            batch_raw_requests: self
                .batch_raw_requests
                .delta_since(&prev.batch_raw_requests),
            batch_planned_requests: self
                .batch_planned_requests
                .delta_since(&prev.batch_planned_requests),
            batch_service_ns: self.batch_service_ns.delta_since(&prev.batch_service_ns),
            commit_latency_ns: self.commit_latency_ns.delta_since(&prev.commit_latency_ns),
            intake_stall_ns: self.intake_stall_ns.delta_since(&prev.intake_stall_ns),
        }
    }
}

/// Fleet work-stealing observations: how many queued batches idle
/// workers executed on behalf of a backlogged home worker, how many
/// steal attempts lost the race (both conflict edges — core lock held,
/// or an earlier batch of the same core still in flight), and how long
/// stolen batches had waited in their queue before a thief picked them
/// up.
///
/// All three are scheduling-dependent (a steal only happens when a
/// worker *happens* to be idle), so like the wall-clock histograms they
/// are excluded from [`MetricsSnapshot`]'s deterministic `==`. A sync
/// [`Engine`](crate::Engine) — which has no thieves — always reports
/// zeros here.
#[derive(Debug, Clone, Default)]
pub struct StealStats {
    /// Queued batches executed by a non-home worker.
    pub batches_stolen: u64,
    /// Steal attempts that hit either conflict edge. With the
    /// peek-before-take protocol the batch never leaves its owner's
    /// queue on a conflict — the thief walks away and the home worker
    /// runs it in order.
    pub steal_conflicts: u64,
    /// Nanoseconds a stolen batch spent queued before the thief applied
    /// it (observation; one entry per successful steal).
    pub steal_wait_ns: HistogramSnapshot,
}

impl StealStats {
    /// This scrape minus `prev` (counters and the histogram subtract).
    pub fn delta_since(&self, prev: &StealStats) -> StealStats {
        StealStats {
            batches_stolen: self.batches_stolen.saturating_sub(prev.batches_stolen),
            steal_conflicts: self.steal_conflicts.saturating_sub(prev.steal_conflicts),
            steal_wait_ns: self.steal_wait_ns.delta_since(&prev.steal_wait_ns),
        }
    }

    /// Folds another tenant's observations into this one — what a fleet
    /// roll-up does to check that per-tenant scrapes sum to the totals.
    pub fn absorb(&mut self, other: &StealStats) {
        self.batches_stolen += other.batches_stolen;
        self.steal_conflicts += other.steal_conflicts;
        self.steal_wait_ns.merge(&other.steal_wait_ns);
    }
}

/// Everything [`Engine::metrics`](crate::Engine::metrics) scrapes:
/// aggregate stats, per-shard telemetry, the engine-side intake-stall
/// observations, and the recent event journal.
///
/// Equality covers the deterministic projection only (stats, counters,
/// sim time, deterministic histograms); wall-clock observations, the
/// steal counters, and the event journal (whose timestamps are
/// wall-clock) are excluded.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// 1-based scrape ordinal (how many times `metrics()` has run).
    pub scrape: u64,
    /// The device profile pricing sim time, if any.
    pub device: Option<DeviceProfile>,
    /// The same aggregate stats a [`snapshot`](crate::Engine::snapshot)
    /// barrier returns (deterministic).
    pub stats: EngineStats,
    /// Per-shard telemetry, in shard order.
    pub per_shard: Vec<ShardMetrics>,
    /// The retained tail of the engine's structural event journal
    /// (rebalance batches, recovery stages). Timestamps are wall-clock.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the bounded journal before this scrape.
    pub events_dropped: u64,
    /// Work-stealing observations (always zero for a sync
    /// [`Engine`](crate::Engine); populated by the async facade's
    /// per-tenant scrape). Excluded from `==` — steals are
    /// scheduling-dependent.
    pub steal: StealStats,
}

impl PartialEq for MetricsSnapshot {
    /// Deterministic projection only: events carry wall-clock timestamps
    /// and are excluded along with the wall-clock histograms (via
    /// [`ShardMetrics`]'s own equality).
    fn eq(&self, other: &Self) -> bool {
        self.scrape == other.scrape
            && self.device == other.device
            && self.stats == other.stats
            && self.per_shard == other.per_shard
    }
}

impl MetricsSnapshot {
    /// Total simulated device time across shards, µs.
    pub fn sim_time_us(&self) -> f64 {
        self.per_shard.iter().map(ShardMetrics::sim_time_us).sum()
    }

    /// All shards' intake-stall observations merged.
    pub fn intake_stall_ns(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for shard in &self.per_shard {
            merged.merge(&shard.intake_stall_ns);
        }
        merged
    }

    /// This scrape minus `prev`: counters, histograms, and sim time
    /// subtract; gauges (live volume, footprint, ratios) keep their
    /// current values; events keep this scrape's tail. Shards `prev` did
    /// not have (a grow-resize between scrapes) keep their full values.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            scrape: self.scrape,
            device: self.device,
            stats: EngineStats {
                per_shard: self
                    .stats
                    .per_shard
                    .iter()
                    .map(
                        |s| match prev.stats.per_shard.iter().find(|p| p.shard == s.shard) {
                            Some(p) => s.delta_since(p),
                            None => s.clone(),
                        },
                    )
                    .collect(),
            },
            per_shard: self
                .per_shard
                .iter()
                .map(
                    |m| match prev.per_shard.iter().find(|p| p.shard == m.shard) {
                        Some(p) => m.delta_since(p),
                        None => m.clone(),
                    },
                )
                .collect(),
            events: self.events.clone(),
            events_dropped: self.events_dropped,
            steal: self.steal.delta_since(&prev.steal),
        }
    }

    /// The machine export behind `realloc-sim engine --metrics-json`.
    ///
    /// Schema (`"schema": 3`): `counters` are fleet-wide sums,
    /// `gauges` current values, `sim_time_us` the device-priced totals,
    /// `per_shard` one object per shard with its histograms (each with
    /// `count`/`sum`/`min`/`max`, `p50`–`p999`, and raw log₂ `buckets`
    /// trimmed of trailing zeros), `steal` the work-stealing block
    /// (`batches_stolen` / `steal_conflicts` counters and the
    /// `steal_wait_ns` histogram), `events` the journal tail.
    ///
    /// Schema history: 3 added the work-stealing surface (the `steal`
    /// block); 2 added the batch-pipeline surface — the
    /// `batch_requests_coalesced` / `batch_requests_cancelled` counters and
    /// the per-shard `batch_raw_requests` / `batch_planned_requests`
    /// histograms; 1 was the original export.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set("schema", 3u64);
        root.set(
            "device",
            match self.device {
                Some(p) => Json::from(p.name()),
                None => Json::Null,
            },
        );
        root.set("scrape", self.scrape);
        root.set("shards", self.stats.shards());

        let mut counters = Json::obj();
        counters.set("requests", self.stats.requests());
        counters.set("batches", self.stats.batches());
        counters.set("batch_requests_coalesced", self.stats.requests_coalesced());
        counters.set("batch_requests_cancelled", self.stats.requests_cancelled());
        counters.set("errors", self.stats.errors());
        counters.set("total_moves", self.stats.total_moves());
        counters.set("total_moved_volume", self.stats.total_moved_volume());
        counters.set("migrations_in", self.stats.migrations());
        counters.set("migrations_out", self.stats.migrations_out());
        counters.set("defrag_moves", self.stats.defrag_moves());
        counters.set("substrate_bytes_written", self.stats.bytes_written());
        counters.set("wal_records", self.stats.wal_records());
        counters.set("wal_bytes", self.stats.wal_bytes());
        counters.set("group_commits", self.stats.group_commits());
        counters.set("recoveries", self.stats.recoveries());
        counters.set("events_dropped", self.events_dropped);
        root.set("counters", counters);

        let mut gauges = Json::obj();
        gauges.set("live_count", self.stats.live_count());
        gauges.set("live_volume", self.stats.live_volume());
        gauges.set("footprint", self.stats.footprint());
        gauges.set("structure_size", self.stats.structure_size());
        gauges.set("max_object_size", self.stats.max_object_size());
        gauges.set("imbalance_ratio", self.stats.imbalance_ratio());
        gauges.set("settled_ratio", self.stats.settled_ratio());
        root.set("gauges", gauges);

        let mut sim = Json::obj();
        sim.set(
            "serve",
            self.per_shard.iter().map(|s| s.serve_sim_us).sum::<f64>(),
        );
        sim.set(
            "migrate",
            self.per_shard.iter().map(|s| s.migrate_sim_us).sum::<f64>(),
        );
        sim.set(
            "wal_commit",
            self.per_shard
                .iter()
                .map(|s| s.wal_commit_sim_us)
                .sum::<f64>(),
        );
        sim.set("total", self.sim_time_us());
        root.set("sim_time_us", sim);

        let mut steal = Json::obj();
        steal.set("batches_stolen", self.steal.batches_stolen);
        steal.set("steal_conflicts", self.steal.steal_conflicts);
        steal.set("steal_wait_ns", histogram_json(&self.steal.steal_wait_ns));
        root.set("steal", steal);

        let shards = self
            .per_shard
            .iter()
            .zip(&self.stats.per_shard)
            .map(|(m, s)| {
                let mut shard = Json::obj();
                shard.set("shard", m.shard);
                shard.set("algorithm", s.algorithm);
                shard.set("requests", s.requests);
                shard.set("live_volume", s.live_volume);
                shard.set("serve_sim_us", m.serve_sim_us);
                shard.set("migrate_sim_us", m.migrate_sim_us);
                shard.set("wal_commit_sim_us", m.wal_commit_sim_us);
                shard.set("batch_sim_us", histogram_json(&m.batch_sim_us));
                shard.set("commit_records", histogram_json(&m.commit_records));
                shard.set("batch_raw_requests", histogram_json(&m.batch_raw_requests));
                shard.set(
                    "batch_planned_requests",
                    histogram_json(&m.batch_planned_requests),
                );
                shard.set("batch_service_ns", histogram_json(&m.batch_service_ns));
                shard.set("commit_latency_ns", histogram_json(&m.commit_latency_ns));
                shard.set("intake_stall_ns", histogram_json(&m.intake_stall_ns));
                shard
            })
            .collect::<Vec<_>>();
        root.set("per_shard", shards);

        let events = self
            .events
            .iter()
            .map(|e| {
                let mut event = Json::obj();
                event.set("seq", e.seq);
                event.set("at_us", e.at_us);
                event.set(
                    "shard",
                    match e.shard {
                        Some(s) => Json::from(s),
                        None => Json::Null,
                    },
                );
                event.set("label", e.label);
                event.set("phase", e.phase.name());
                event.set("payload", e.payload);
                event
            })
            .collect::<Vec<_>>();
        root.set("events", events);
        root
    }
}

/// Serializes one histogram snapshot, trimming trailing zero buckets.
fn histogram_json(h: &HistogramSnapshot) -> Json {
    let mut out = Json::obj();
    out.set("count", h.count);
    out.set("sum", h.sum);
    out.set("min", h.min);
    out.set("max", h.max);
    out.set("p50", h.p50());
    out.set("p90", h.p90());
    out.set("p99", h.p99());
    out.set("p999", h.p999());
    let keep = h.buckets.iter().rposition(|&n| n != 0).map_or(0, |i| i + 1);
    out.set(
        "buckets",
        h.buckets[..keep]
            .iter()
            .map(|&n| Json::from(n))
            .collect::<Vec<_>>(),
    );
    out
}

impl ShardStats {
    /// This snapshot minus `prev` (same shard, earlier scrape): monotonic
    /// counters subtract; gauges — live count/volume, footprint, structure
    /// size, `∆`, recoveries, and the settled-ratio high-water mark — keep
    /// their current values, because "change since last scrape" is not a
    /// meaningful reading of a level.
    pub fn delta_since(&self, prev: &ShardStats) -> ShardStats {
        ShardStats {
            shard: self.shard,
            algorithm: self.algorithm,
            requests: self.requests.saturating_sub(prev.requests),
            batches: self.batches.saturating_sub(prev.batches),
            requests_coalesced: self
                .requests_coalesced
                .saturating_sub(prev.requests_coalesced),
            requests_cancelled: self
                .requests_cancelled
                .saturating_sub(prev.requests_cancelled),
            errors: self.errors.saturating_sub(prev.errors),
            live_count: self.live_count,
            live_volume: self.live_volume,
            footprint: self.footprint,
            structure_size: self.structure_size,
            max_object_size: self.max_object_size,
            total_moves: self.total_moves.saturating_sub(prev.total_moves),
            total_moved_volume: self
                .total_moved_volume
                .saturating_sub(prev.total_moved_volume),
            migrations_in: self.migrations_in.saturating_sub(prev.migrations_in),
            migrations_out: self.migrations_out.saturating_sub(prev.migrations_out),
            migrated_volume_in: self
                .migrated_volume_in
                .saturating_sub(prev.migrated_volume_in),
            migrated_volume_out: self
                .migrated_volume_out
                .saturating_sub(prev.migrated_volume_out),
            defrag_runs: self.defrag_runs.saturating_sub(prev.defrag_runs),
            defrag_moves: self.defrag_moves.saturating_sub(prev.defrag_moves),
            substrate_bytes_written: self
                .substrate_bytes_written
                .saturating_sub(prev.substrate_bytes_written),
            substrate_bytes_in: self
                .substrate_bytes_in
                .saturating_sub(prev.substrate_bytes_in),
            substrate_bytes_out: self
                .substrate_bytes_out
                .saturating_sub(prev.substrate_bytes_out),
            substrate_verifications: self
                .substrate_verifications
                .saturating_sub(prev.substrate_verifications),
            wal_records: self.wal_records.saturating_sub(prev.wal_records),
            wal_bytes: self.wal_bytes.saturating_sub(prev.wal_bytes),
            group_commits: self.group_commits.saturating_sub(prev.group_commits),
            recoveries: self.recoveries,
            max_settled_ratio: self.max_settled_ratio,
            serve_sim_time: (self.serve_sim_time - prev.serve_sim_time).max(0.0),
            migrate_sim_time: (self.migrate_sim_time - prev.migrate_sim_time).max(0.0),
            wal_commit_sim_time: (self.wal_commit_sim_time - prev.wal_commit_sim_time).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_roundtrip_names_and_build() {
        for profile in DeviceProfile::ALL {
            assert_eq!(DeviceProfile::parse(profile.name()), Some(profile));
            // Every profile prices a 1-cell allocate at a positive time.
            let model = profile.build();
            let op = realloc_common::StorageOp::Allocate {
                id: realloc_common::ObjectId(1),
                to: realloc_common::Extent::new(0, 1),
            };
            assert!(model.time_of(&op) > 0.0, "{}", profile.name());
            assert!(model.time_of_commit(64) > 0.0, "{}", profile.name());
        }
        assert_eq!(DeviceProfile::parse("floppy"), None);
    }

    #[test]
    fn wall_clock_fields_do_not_affect_equality() {
        let telemetry = ShardTelemetry::new(Some(DeviceProfile::Unit));
        let mut a = telemetry.snapshot(0);
        let mut b = a.clone();
        // Perturb only wall-clock observations: still equal.
        b.batch_service_ns.count = 99;
        b.commit_latency_ns.max = 123;
        b.intake_stall_ns.sum = 7;
        assert_eq!(a, b);
        // Perturb a deterministic quantity: no longer equal.
        a.serve_sim_us = 1.0;
        assert_ne!(a, b);
    }
}
