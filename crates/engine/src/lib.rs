#![warn(missing_docs)]
//! # realloc-engine — a sharded, multi-threaded reallocation service
//!
//! The algorithm crates serve one request at a time on the caller's thread.
//! This crate turns any of them into a *service*: an [`Engine`] routes
//! requests through a pluggable [`Router`] across `N` *shards*, each a
//! dedicated worker thread owning one boxed
//! [`Reallocator`](realloc_common::Reallocator) and its own
//! [`Ledger`](realloc_common::Ledger), fed through a bounded channel in
//! *batches* (amortizing channel overhead the way buffer flushes amortize
//! moves).
//!
//! ## The routing layer
//!
//! Routing is a first-class layer, not a hard-wired hash:
//!
//! * [`HashRouter`] (default, [`Engine::new`]) — the stateless SplitMix64
//!   hash [`shard_of`]. Byte-identical behavior to the pre-router engine.
//! * [`TableRouter`] ([`Engine::with_router`]) — an explicit id → shard
//!   assignment table over a rendezvous-hash fallback. This is what makes
//!   objects *re-homeable*: [`Engine::rebalance`] migrates objects between
//!   shards (delete-on-source / insert-on-target at a quiesce barrier,
//!   routing table updated atomically once all transfers land) to equalize
//!   per-shard volumes `V_i`, optionally followed by the per-shard
//!   Theorem 2.7 defrag pass; [`Engine::resize_shards`] reuses the same
//!   migration machinery to split or merge live shards (the rendezvous
//!   fallback keeps a grow from re-homing more than `~1/n` of the ids).
//!
//! ## Rebalancing: barrier or online
//!
//! The same greedy largest-first migration plan executes two ways:
//!
//! * [`Engine::rebalance`] — **barrier**: quiesce the fleet, execute the
//!   whole plan, return. Simple and immediately converged, but the caller
//!   stalls for the entire migration.
//! * [`Engine::rebalance_online`] — **online**: plan once, then migrate in
//!   bounded batches *interleaved with serving* (each object: freeze →
//!   copy → flip route → resume, so no id is ever live on two shards).
//!   Serving traffic paces the session — one batch per dispatched serving
//!   batch — or [`Engine::rebalance_step`] drains it explicitly; the
//!   completion [`RebalanceReport`] is claimed with
//!   [`Engine::take_rebalance_report`].
//!
//! Watch the [`EngineStats::imbalance_ratio`] observable
//! (`max V_i / mean V_i`) to decide when to rebalance — or install a
//! [`RebalancePolicy`] with [`Engine::set_auto_rebalance`] and let the
//! engine trigger online sessions itself when the ratio has exceeded `τ`
//! for `k` consecutive barrier observations (with hysteresis after each
//! run). Migrations are ledgered as first-class ops
//! (`MigrateIn` / `MigrateOut`) and priced as reallocations, so
//! rebalancing is as cost-accountable as serving.
//!
//! ## Why sharding preserves the paper's guarantees
//!
//! Theorem 2.1's bounds are *per instance*: each shard keeps its footprint
//! within `(1+ε)·V_i` and its reallocation cost within
//! `O((1/ε) log(1/ε))` of its allocation cost. Requests for one object
//! always hash to the same shard, so shards never interact, and the
//! aggregate footprint obeys `Σ footprint_i ≤ (1+ε)·Σ V_i` — the same
//! competitive ratio as one instance. (The memory-reallocation follow-up
//! line of work treats instances in isolation for exactly this reason.)
//! Sharding also helps *throughput* twice over: shards serve in parallel,
//! and each flush rebuilds a suffix of a structure `N×` smaller.
//!
//! ## Shape of the API
//!
//! ```
//! use realloc_engine::{Engine, EngineConfig};
//! use realloc_common::ObjectId;
//! # use realloc_common::{Extent, Outcome, ReallocError, Reallocator};
//! # #[derive(Default)] struct Toy(std::collections::HashMap<ObjectId, u64>, u64);
//! # impl Reallocator for Toy {
//! #     fn insert(&mut self, id: ObjectId, size: u64) -> Result<Outcome, ReallocError> {
//! #         self.0.insert(id, size); self.1 += size; Ok(Outcome::empty())
//! #     }
//! #     fn delete(&mut self, id: ObjectId) -> Result<Outcome, ReallocError> {
//! #         self.1 -= self.0.remove(&id).unwrap_or(0); Ok(Outcome::empty())
//! #     }
//! #     fn extent_of(&self, _: ObjectId) -> Option<Extent> { None }
//! #     fn live_volume(&self) -> u64 { self.1 }
//! #     fn structure_size(&self) -> u64 { self.1 }
//! #     fn footprint(&self) -> u64 { self.1 }
//! #     fn max_object_size(&self) -> u64 { 0 }
//! #     fn name(&self) -> &'static str { "toy" }
//! #     fn live_count(&self) -> usize { self.0.len() }
//! # }
//!
//! let mut engine = Engine::new(EngineConfig::with_shards(2), |_shard| {
//!     Box::new(Toy::default())
//! });
//! engine.insert(ObjectId(1), 64).unwrap();
//! engine.insert(ObjectId(2), 32).unwrap();
//! engine.delete(ObjectId(1)).unwrap();
//! let stats = engine.quiesce().unwrap();
//! assert_eq!(stats.live_volume(), 32);
//! assert_eq!(stats.live_count(), 1);
//! ```
//!
//! ## The async front-end
//!
//! [`AsyncEngine`] is the future-returning counterpart of the sync
//! handle: `insert`/`delete`/`flush`/`quiesce` return lightweight
//! completion futures (hand-rolled one-shot slots from
//! `realloc-common` — no tokio anywhere), and tenants are hosted by a
//! [`Fleet`] — a small worker pool multiplexing thousands of
//! lightweight engines, optionally stealing whole queued batches from
//! backlogged peers (see the [`fleet`] module docs for the steal
//! protocol and its order guarantees). The sync facade stays the
//! default and is untouched by any of it.
//!
//! [`Engine::drive`] replays a whole [`Workload`](workload_gen::Workload)
//! by splitting it into per-shard streams (preserving per-object request
//! order) and feeding all shards round-robin so every queue stays busy.
//!
//! Request-level errors ([`ReallocError`](realloc_common::ReallocError))
//! surface at the next barrier ([`Engine::quiesce`], [`Engine::snapshot`],
//! [`Engine::shutdown`]) rather than at the enqueueing call — the price of
//! pipelining. Worker threads never panic on bad requests; they count the
//! error and keep serving.

pub mod async_facade;
pub mod engine;
pub mod fleet;
pub mod metrics;
pub mod plan;
pub mod rebalance;
pub mod recover;
pub mod shard;
pub mod stats;
pub mod substrate;

pub use async_facade::{Ack, AsyncEngine, QuiesceFuture};
pub use engine::{Engine, EngineConfig, EngineError};
pub use fleet::{Fleet, FleetConfig};
pub use metrics::{DeviceProfile, MetricsSnapshot, ShardMetrics, StealStats};
pub use realloc_common::router::{self, shard_of, HashRouter, Router, TableRouter};
pub use realloc_telemetry::{
    EventJournal, Histogram, HistogramSnapshot, Json, SpanPhase, TraceEvent,
};
pub use rebalance::{
    DefragSummary, OnlinePlan, RebalanceMode, RebalanceOptions, RebalancePolicy, RebalanceReport,
    ResizeReport,
};
pub use recover::RecoveryReport;
pub use shard::ShardFinal;
pub use stats::{EngineStats, ShardStats};
pub use storage_sim::{AddressWindow, Mode as SubstrateRules};
pub use substrate::{ShardBytes, SubstrateConfig, SubstrateReport, VerifyCadence};
