//! The async tenant handle: [`AsyncEngine`], the future-returning
//! counterpart of the sync [`Engine`].
//!
//! [`insert`](AsyncEngine::insert) / [`delete`](AsyncEngine::delete) /
//! [`flush`](AsyncEngine::flush) return an [`Ack`] and
//! [`quiesce`](AsyncEngine::quiesce) a [`QuiesceFuture`] — lightweight
//! futures backed by [`realloc_common::oneshot`] completion slots that a
//! fleet worker fulfils when the *batch* carrying the request finishes.
//! No executor is assumed: await them in any runtime, drive them with
//! [`realloc_common::block_on`], or drop them (a dropped future turns
//! its fulfilment into a no-op; the request is still served).
//!
//! ## Observational equivalence with the sync engine
//!
//! The facade replicates the sync engine's client-side batching *law*
//! exactly — same full-batch fast path, same planned-flush watermark and
//! fullest-buffer choice, same [`planned_take`](crate::Engine) split —
//! so a given call sequence produces byte-identical per-core command
//! streams, and the per-core apply sequence (see
//! [`fleet`](crate::fleet)) serves them in the same order a dedicated
//! shard thread would. Extents, substrate bytes, stats (including batch
//! counts), ledgers, and the deterministic metrics projection therefore
//! match the sync engine exactly; `tests/async_facade.rs` pins this
//! property for all four registry variants. What does *not* match is
//! scheduling: wall-clock histograms, intake stalls, and the
//! [`StealStats`](crate::metrics::StealStats) block are excluded from
//! metric equality for exactly that reason.

use std::future::Future;
use std::path::{Path, PathBuf};
use std::pin::Pin;
use std::sync::{mpsc, Arc};
use std::task::{Context, Poll};
use std::time::Instant;

use realloc_common::oneshot;
use realloc_common::{block_on, BoxedReallocator, Extent, ObjectId, Router};
use realloc_telemetry::Histogram;
use workload_gen::Request;

use crate::engine::{Engine, EngineConfig, EngineError};
use crate::fleet::{CoreCell, FleetShared, StealTelemetry, Task, TaskCmd};
use crate::metrics::MetricsSnapshot;
use crate::shard::{Command, ShardFinal, ShardReply, ShardWorker};
use crate::stats::EngineStats;
use crate::substrate::{ShardBytes, SubstrateReport};

/// A batch-completion future: resolves once every request it covers has
/// been applied by its core (and, on a WAL'd tenant, group-committed).
///
/// Dropping an `Ack` is always safe — the work still happens, only the
/// notification is discarded. If the fleet is torn down while tasks are
/// still queued, orphaned acks resolve instead of hanging.
pub struct Ack {
    slots: Vec<Option<oneshot::Receiver<()>>>,
}

impl Ack {
    fn one(rx: oneshot::Receiver<()>) -> Ack {
        Ack {
            slots: vec![Some(rx)],
        }
    }

    fn many(rxs: Vec<oneshot::Receiver<()>>) -> Ack {
        Ack {
            slots: rxs.into_iter().map(Some).collect(),
        }
    }

    /// Blocks the current thread until the ack resolves (a
    /// [`block_on`] convenience).
    pub fn wait(self) {
        block_on(self)
    }
}

impl Future for Ack {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut done = true;
        for slot in &mut self.slots {
            if let Some(rx) = slot {
                match Pin::new(rx).poll(cx) {
                    // `Err(Dropped)` means the fleet died with the task
                    // still queued — resolve rather than hang forever.
                    Poll::Ready(_) => *slot = None,
                    Poll::Pending => done = false,
                }
            }
        }
        if done {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// The future returned by [`AsyncEngine::quiesce`]: resolves to the same
/// aggregated [`EngineStats`] (with the same error surfacing) the sync
/// [`Engine::quiesce`](crate::Engine) barrier returns.
pub struct QuiesceFuture {
    acks: Ack,
    replies: Option<Vec<mpsc::Receiver<ShardReply>>>,
}

impl QuiesceFuture {
    /// Blocks the current thread until the quiesce completes.
    pub fn wait(self) -> Result<EngineStats, EngineError> {
        block_on(self)
    }
}

impl Future for QuiesceFuture {
    type Output = Result<EngineStats, EngineError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.acks).poll(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(()) => {
                // Each core sends its reply inside `handle` before its
                // completion slot fires, so the replies are already here.
                let replies = self
                    .replies
                    .take()
                    .expect("quiesce future polled after completion");
                let mut out = Vec::with_capacity(replies.len());
                for (shard, rx) in replies.into_iter().enumerate() {
                    match rx.try_recv() {
                        Ok(reply) => out.push(reply),
                        Err(_) => return Poll::Ready(Err(EngineError::ShardDown { shard })),
                    }
                }
                Poll::Ready(Engine::aggregate(out))
            }
        }
    }
}

/// A held core lock (testing): while alive, no worker — home or thief —
/// can apply this core's tasks, so a steal attempt deterministically
/// takes the lock-conflict edge.
#[doc(hidden)]
pub struct CoreHold<'a> {
    _guard: std::sync::MutexGuard<'a, crate::fleet::CoreState>,
}

/// One tenant's handle onto a [`Fleet`](crate::Fleet): the async
/// counterpart of the sync [`Engine`], sharing its shard
/// state machine, batching law, WAL format, and barrier semantics.
/// Build one with [`Fleet::register`](crate::Fleet) (or the WAL'd /
/// pinned variants).
pub struct AsyncEngine {
    shared: Arc<FleetShared>,
    tenant: usize,
    config: EngineConfig,
    router: Box<dyn Router>,
    cores: Vec<Arc<CoreCell>>,
    /// Next apply-sequence number per core (one enqueuing handle per
    /// tenant, so a plain counter is the whole ordering story).
    next_seq: Vec<u64>,
    /// Per-shard batch under construction, plus the completion slots of
    /// the requests in it (index-aligned).
    pending: Vec<Vec<Request>>,
    pending_slots: Vec<Vec<oneshot::Sender<()>>>,
    /// Client-side intake-stall observations (empty without telemetry),
    /// mirroring the sync engine's blocked-send accounting.
    stalls: Vec<Histogram>,
    steal: Arc<StealTelemetry>,
    wal_dir: Option<PathBuf>,
    scrapes: u64,
    last_metrics: Option<MetricsSnapshot>,
}

impl AsyncEngine {
    pub(crate) fn build<F>(
        shared: Arc<FleetShared>,
        tenant: usize,
        config: EngineConfig,
        router: Box<dyn Router>,
        mut factory: F,
        wal_dir: Option<PathBuf>,
        homes: &[usize],
    ) -> Result<AsyncEngine, EngineError>
    where
        F: FnMut(usize) -> BoxedReallocator,
    {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.batch > 0, "batch size must be positive");
        assert_eq!(
            router.shards(),
            config.shards,
            "router and config disagree on the shard count"
        );
        assert_eq!(homes.len(), config.shards, "one home worker per shard core");
        let steal = Arc::new(StealTelemetry::new());
        let mut cores = Vec::with_capacity(config.shards);
        let mut stalls = Vec::new();
        for (shard, &home) in homes.iter().enumerate() {
            let worker = ShardWorker::build(&config, shard, factory(shard), wal_dir.as_deref(), 0)?;
            cores.push(Arc::new(CoreCell::new(
                worker,
                home,
                config.queue_depth.max(1),
                Arc::clone(&steal),
            )));
            if config.telemetry {
                stalls.push(Histogram::new());
            }
        }
        Ok(AsyncEngine {
            shared,
            tenant,
            config,
            router,
            next_seq: vec![0; cores.len()],
            pending: (0..cores.len())
                .map(|_| Vec::with_capacity(config.batch))
                .collect(),
            pending_slots: (0..cores.len()).map(|_| Vec::new()).collect(),
            cores,
            stalls,
            steal,
            wal_dir,
            scrapes: 0,
            last_metrics: None,
        })
    }

    /// The fleet-assigned tenant ordinal (registration order).
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Number of shards (cores).
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The tenant's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The routing layer, for inspection.
    pub fn router(&self) -> &dyn Router {
        self.router.as_ref()
    }

    /// The shard that owns `id` right now.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        self.router.route(id)
    }

    /// The write-ahead-log directory, when durability is on.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal_dir.as_deref()
    }

    /// Enqueues `〈INSERTOBJECT, id, size〉` on the owning core. The
    /// returned [`Ack`] resolves when the batch carrying the request has
    /// been applied — which means a request still sitting in a *partial*
    /// client-side buffer resolves only once a full batch, a
    /// [`flush`](AsyncEngine::flush), or a barrier ships it; awaiting an
    /// `Ack` without a flush point in between can therefore block
    /// forever, exactly as a sync caller blocking on an unflushed
    /// buffer would. Like the sync engine, a rejection by the
    /// reallocator (e.g. a duplicate id) surfaces at the next barrier,
    /// not here.
    pub fn insert(&mut self, id: ObjectId, size: u64) -> Ack {
        self.enqueue(Request::Insert { id, size })
    }

    /// Enqueues `〈DELETEOBJECT, id〉` on the owning core. Same contract
    /// as [`insert`](AsyncEngine::insert).
    pub fn delete(&mut self, id: ObjectId) -> Ack {
        self.enqueue(Request::Delete { id })
    }

    /// The sync engine's batching law, replicated exactly: a full buffer
    /// ships whole; otherwise the planned-flush watermark decides.
    fn enqueue(&mut self, req: Request) -> Ack {
        let shard = self.router.route(req.id());
        let (tx, rx) = oneshot::channel();
        self.pending[shard].push(req);
        self.pending_slots[shard].push(tx);
        if self.pending[shard].len() >= self.config.batch {
            let batch = std::mem::replace(
                &mut self.pending[shard],
                Vec::with_capacity(self.config.batch),
            );
            let slots = std::mem::take(&mut self.pending_slots[shard]);
            self.ship(shard, TaskCmd::Apply(Command::Batch(batch)), slots);
            return Ack::one(rx);
        }
        self.plan_flush();
        Ack::one(rx)
    }

    /// Mirror of the sync `plan_flush` (same watermark, same
    /// fullest-buffer tie-break, same [`planned_take`](crate::Engine)
    /// split), with the shipped requests' completion slots riding along.
    fn plan_flush(&mut self) {
        let watermark = (self.cores.len() * self.config.batch / 2).max(1);
        let total: usize = self.pending.iter().map(Vec::len).sum();
        if total < watermark {
            return;
        }
        let Some(shard) = (0..self.pending.len()).max_by_key(|&s| self.pending[s].len()) else {
            return;
        };
        let Some(take) = Engine::planned_take(self.pending[shard].len(), self.config.batch) else {
            return;
        };
        let batch: Vec<Request> = self.pending[shard].drain(..take).collect();
        let slots: Vec<_> = self.pending_slots[shard].drain(..take).collect();
        self.ship(shard, TaskCmd::Apply(Command::Batch(batch)), slots);
    }

    /// Admits one task onto a core (blocking at the same `queue_depth`
    /// bound as the sync engine's channel, with the same stall
    /// accounting) and enqueues it on the core's home queue.
    fn ship(&mut self, shard: usize, cmd: TaskCmd, slots: Vec<oneshot::Sender<()>>) {
        if self
            .shared
            .shutdown
            .load(std::sync::atomic::Ordering::Acquire)
        {
            // Fleet already torn down: drop the slots so acks resolve
            // instead of hanging. (Tenants should be shut down first.)
            return;
        }
        let core = &self.cores[shard];
        core.admit(self.stalls.get(shard));
        let seq = self.next_seq[shard];
        self.next_seq[shard] += 1;
        let task = Task {
            core: Arc::clone(core),
            seq,
            cmd,
            enqueued: Instant::now(),
            slots,
        };
        let queue = &self.shared.queues[core.home];
        queue
            .tasks
            .lock()
            .expect("fleet queue poisoned")
            .push_back(task);
        queue.ready.notify_one();
    }

    /// Ships every partially filled batch (the sync `flush`'s dispatch
    /// half, minus the barrier).
    fn flush_batches(&mut self) {
        for shard in 0..self.cores.len() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                let slots = std::mem::take(&mut self.pending_slots[shard]);
                self.ship(shard, TaskCmd::Apply(Command::Batch(batch)), slots);
            }
        }
    }

    /// One fence per core: the returned [`Ack`] resolves when everything
    /// enqueued before it has been applied.
    fn fence_all(&mut self) -> Ack {
        let mut rxs = Vec::with_capacity(self.cores.len());
        for shard in 0..self.cores.len() {
            let (tx, rx) = oneshot::channel();
            self.ship(shard, TaskCmd::Fence, vec![tx]);
            rxs.push(rx);
        }
        Ack::many(rxs)
    }

    /// Ships every partially filled batch and returns an [`Ack`] that
    /// resolves once *everything* enqueued so far — on every core — has
    /// been applied.
    pub fn flush(&mut self) -> Ack {
        self.flush_batches();
        self.fence_all()
    }

    /// Per-core router pins for checkpoint barriers — identical to the
    /// sync engine's rule (empty without a WAL).
    fn router_pins(&self) -> Vec<Vec<ObjectId>> {
        let mut pins = vec![Vec::new(); self.cores.len()];
        if self.wal_dir.is_some() {
            for (id, shard) in self.router.assigned_ids() {
                if shard < pins.len() {
                    pins[shard].push(id);
                }
            }
        }
        pins
    }

    /// Drains every core (each runs `Reallocator::quiesce`; a WAL'd core
    /// checkpoints and truncates its log) and resolves to the aggregated
    /// stats — the async form of the sync quiesce barrier, with the same
    /// error surfacing.
    pub fn quiesce(&mut self) -> QuiesceFuture {
        self.flush_batches();
        let pins = self.router_pins();
        let mut rxs = Vec::with_capacity(self.cores.len());
        let mut replies = Vec::with_capacity(self.cores.len());
        for (shard, pins) in pins.into_iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::channel();
            let (tx, rx) = oneshot::channel();
            self.ship(
                shard,
                TaskCmd::Apply(Command::Quiesce {
                    reply: reply_tx,
                    pins,
                }),
                vec![tx],
            );
            rxs.push(rx);
            replies.push(reply_rx);
        }
        QuiesceFuture {
            acks: Ack::many(rxs),
            replies: Some(replies),
        }
    }

    /// Blocking barrier plumbing shared by the synchronous conveniences:
    /// flush, one command per core, await the acks, collect the replies.
    fn barrier<T: Send>(
        &mut self,
        make: impl Fn(usize, mpsc::Sender<T>) -> Command,
    ) -> Result<Vec<T>, EngineError> {
        self.flush_batches();
        let mut rxs = Vec::with_capacity(self.cores.len());
        let mut replies = Vec::with_capacity(self.cores.len());
        for shard in 0..self.cores.len() {
            let (reply_tx, reply_rx) = mpsc::channel();
            let (tx, rx) = oneshot::channel();
            self.ship(shard, TaskCmd::Apply(make(shard, reply_tx)), vec![tx]);
            rxs.push(rx);
            replies.push(reply_rx);
        }
        block_on(Ack::many(rxs));
        replies
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| rx.try_recv().map_err(|_| EngineError::ShardDown { shard }))
            .collect()
    }

    /// Blocking stats barrier without forcing deferred work — the sync
    /// [`Engine::snapshot`](crate::Engine) equivalent.
    pub fn snapshot(&mut self) -> Result<EngineStats, EngineError> {
        let replies = self.barrier(|_, reply| Command::Snapshot(reply))?;
        Engine::aggregate(replies)
    }

    /// Current placements of all live objects, per shard, sorted by id
    /// (blocking barrier).
    pub fn extents(&mut self) -> Result<Vec<Vec<(ObjectId, Extent)>>, EngineError> {
        self.barrier(|_, reply| Command::Extents(reply))
    }

    /// Runs the full substrate verification scan on every core now
    /// (blocking barrier); `None` per shard without a substrate.
    pub fn verify_substrate(&mut self) -> Result<Vec<Option<SubstrateReport>>, EngineError> {
        self.barrier(|_, reply| Command::VerifySubstrate(reply))
    }

    /// Every live object's physical bytes from each core's substrate,
    /// sorted by id (blocking debugging barrier; empty lists without a
    /// substrate).
    pub fn substrate_contents(&mut self) -> Result<Vec<ShardBytes>, EngineError> {
        self.barrier(|_, reply| Command::DumpSubstrate(reply))
    }

    /// Scrapes the tenant's observability surface (blocking barrier):
    /// the same deterministic projection as the sync engine's scrape,
    /// plus this tenant's [`StealStats`](crate::metrics::StealStats).
    /// Like the sync scrape, sticky errors do not surface here.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, EngineError> {
        let replies = self.barrier(|_, reply| Command::Metrics(reply))?;
        let mut per_shard = Vec::with_capacity(replies.len());
        let mut stats = Vec::with_capacity(replies.len());
        for (reply, mut metrics) in replies {
            if let Some(stall) = self.stalls.get(metrics.shard) {
                metrics.intake_stall_ns = stall.snapshot();
            }
            stats.push(reply.stats);
            per_shard.push(metrics);
        }
        self.scrapes += 1;
        let snapshot = MetricsSnapshot {
            scrape: self.scrapes,
            device: self.config.device.filter(|_| self.config.telemetry),
            stats: EngineStats { per_shard: stats },
            per_shard,
            events: Vec::new(),
            events_dropped: 0,
            steal: self.steal.snapshot(),
        };
        self.last_metrics = Some(snapshot.clone());
        Ok(snapshot)
    }

    /// [`metrics`](AsyncEngine::metrics) as the change since the
    /// previous scrape (full values on the first).
    pub fn metrics_delta(&mut self) -> Result<MetricsSnapshot, EngineError> {
        let prev = self.last_metrics.take();
        let current = self.metrics()?;
        Ok(match prev {
            Some(prev) => current.delta_since(&prev),
            None => current,
        })
    }

    /// Final barrier: serves everything still queued, retires every core
    /// (a WAL'd core checkpoints first), and returns each core's stats
    /// and full ledger — the same contract, error surfacing included, as
    /// the sync [`Engine::shutdown`](crate::Engine).
    pub fn shutdown(mut self) -> Result<Vec<ShardFinal>, EngineError> {
        let pins = self.router_pins();
        let finals = self.barrier(|shard, reply| Command::Finish {
            reply,
            pins: pins[shard].clone(),
        })?;
        Engine::surface_first_error(finals.iter().map(|f| (f.stats.shard, &f.first_error)))?;
        Engine::surface_substrate_error(
            finals
                .iter()
                .map(|f| (f.stats.shard, &f.first_substrate_error)),
        )?;
        Ok(finals)
    }

    /// Simulated `kill -9` (testing): drops the partially filled batches
    /// unsent (as the sync crash drops its channels), but waits for
    /// everything already queued to be applied — the sync crash joins
    /// its workers for the same determinism — so the WAL'd crash point
    /// is exact. No quiesce, no checkpoint, no truncation; pair with
    /// [`Engine::recover`](crate::Engine) on the tenant's directory.
    pub fn crash(mut self) {
        for shard in 0..self.cores.len() {
            self.pending[shard].clear();
            self.pending_slots[shard].clear();
        }
        block_on(self.fence_all());
    }

    /// Testing hook: locks core `shard` until the returned guard drops,
    /// forcing any steal attempt on it down the lock-conflict edge.
    #[doc(hidden)]
    pub fn hold_core(&self, shard: usize) -> CoreHold<'_> {
        CoreHold {
            _guard: self.cores[shard].state.lock().expect("core state poisoned"),
        }
    }
}
